//! When counter-hunting biases the audit (§4.6 / Fig. 12) — served
//! through the unified planner over *Gaussian* instances.
//!
//! If the data's error model is centered on the current values, Theorem
//! 3.9 says minimizing uncertainty (MinVar) and maximizing the chance of
//! countering (MaxPr) pick the *same* values to clean — the fact-checker
//! can pursue either goal without bias. But when the current values
//! deviate from the distribution centers, the two objectives diverge:
//! MaxPr starts cherry-picking values likely to move the claim downward
//! and eventually refuses to clean at all.
//!
//! Run with: `cargo run --release --example audit_bias`

use fc_core::planner::Problem;
use fc_core::{Budget, SolverRegistry};
use fc_datasets::workloads::competing_objectives;

fn main() {
    let tau = 25.0;
    let registry = SolverRegistry::with_defaults();

    // --- Part 1: centered errors ⇒ objectives align (Theorem 3.9) ---
    let w = competing_objectives(1).unwrap();
    let centered = fc_core::GaussianInstance::centered_independent(
        w.instance.current().to_vec(),
        &(0..w.instance.len())
            .map(|i| w.instance.sd(i))
            .collect::<Vec<_>>(),
        w.instance.costs().to_vec(),
    )
    .unwrap();
    let budget = Budget::fraction(centered.total_cost(), 0.3);
    let minvar = registry
        .solve(
            "auto",
            &Problem::gaussian_min_var(centered.clone(), w.weights.clone()).unwrap(),
            budget,
        )
        .unwrap();
    let maxpr = registry
        .solve(
            "auto",
            &Problem::gaussian_max_pr(centered, w.weights.clone(), tau).unwrap(),
            budget,
        )
        .unwrap();
    println!("centered errors (Theorem 3.9 setting):");
    println!(
        "  MinVar cleans {:?}   [{}]",
        minvar.selection.objects(),
        minvar.strategy
    );
    println!(
        "  MaxPr  cleans {:?}   [{}]",
        maxpr.selection.objects(),
        maxpr.strategy
    );
    println!(
        "  same set: {}\n",
        if minvar.selection == maxpr.selection {
            "yes — objectives align"
        } else {
            "no"
        }
    );

    // --- Part 2: redrawn current values ⇒ objectives diverge ---
    // One Problem per goal, one budget sweep each: the planner shares
    // engine state across the sweep points.
    let minvar_problem = Problem::gaussian_min_var(w.instance.clone(), w.weights.clone()).unwrap();
    let maxpr_problem =
        Problem::gaussian_max_pr(w.instance.clone(), w.weights.clone(), tau).unwrap();
    let pcts = [10u32, 20, 30, 50, 70, 90];
    let budgets: Vec<Budget> = pcts
        .iter()
        .map(|&p| Budget::fraction(w.instance.total_cost(), f64::from(p) / 100.0))
        .collect();
    let minvar_plans = registry.sweep("auto", &minvar_problem, &budgets).unwrap();
    let maxpr_plans = registry.sweep("auto", &maxpr_problem, &budgets).unwrap();

    println!("redrawn current values (Fig. 12 setting):");
    println!(
        "{:>8} {:>16} {:>16} {:>14} {:>14}",
        "budget%", "EV(MinVar set)", "EV(MaxPr set)", "Pr(MinVar)", "Pr(MaxPr)"
    );
    let minvar_cache = fc_core::EngineCache::new();
    let maxpr_cache = fc_core::EngineCache::new();
    for (i, &pct) in pcts.iter().enumerate() {
        // Cross-evaluate each plan under the *other* goal's objective.
        let ev_of_maxpr_set = minvar_problem
            .objective_value(&minvar_cache, maxpr_plans[i].selection.objects())
            .unwrap();
        let pr_of_minvar_set = maxpr_problem
            .objective_value(&maxpr_cache, minvar_plans[i].selection.objects())
            .unwrap();
        println!(
            "{:>7}% {:>16.1} {:>16.1} {:>14.4} {:>14.4}",
            pct, minvar_plans[i].after, ev_of_maxpr_set, pr_of_minvar_set, maxpr_plans[i].after,
        );
    }
    println!(
        "\nEach algorithm wins its own column — and MaxPr's cleaning choices tell you \
         more about the checker's desire to counter than about the data. \
         Theorem 3.9's centered setting is the safe harbor."
    );
}
