//! When counter-hunting biases the audit (§4.6 / Fig. 12).
//!
//! If the data's error model is centered on the current values, Theorem
//! 3.9 says minimizing uncertainty (MinVar) and maximizing the chance of
//! countering (MaxPr) pick the *same* values to clean — the fact-checker
//! can pursue either goal without bias. But when the current values
//! deviate from the distribution centers, the two objectives diverge:
//! MaxPr starts cherry-picking values likely to move the claim downward
//! and eventually refuses to clean at all.
//!
//! Run with: `cargo run --release --example audit_bias`

use fc_core::algo::{greedy_max_pr, knapsack_optimum_min_var_gaussian};
use fc_core::ev::{ev_gaussian_linear, gaussian::MvnSemantics};
use fc_core::maxpr::surprise_prob_gaussian;
use fc_core::Budget;
use fc_datasets::workloads::competing_objectives;

fn main() {
    let tau = 25.0;

    // --- Part 1: centered errors ⇒ objectives align (Theorem 3.9) ---
    let w = competing_objectives(1).unwrap();
    let centered = fc_core::GaussianInstance::centered_independent(
        w.instance.current().to_vec(),
        &(0..w.instance.len())
            .map(|i| w.instance.sd(i))
            .collect::<Vec<_>>(),
        w.instance.costs().to_vec(),
    )
    .unwrap();
    let budget = Budget::fraction(centered.total_cost(), 0.3);
    let minvar = knapsack_optimum_min_var_gaussian(&centered, &w.weights, budget);
    let maxpr = greedy_max_pr(&centered, &w.weights, budget, tau, MvnSemantics::Marginal);
    println!("centered errors (Theorem 3.9 setting):");
    println!("  MinVar cleans {:?}", minvar.objects());
    println!("  MaxPr  cleans {:?}", maxpr.objects());
    println!(
        "  same set: {}\n",
        if minvar == maxpr { "yes — objectives align" } else { "no" }
    );

    // --- Part 2: redrawn current values ⇒ objectives diverge ---
    println!("redrawn current values (Fig. 12 setting):");
    println!(
        "{:>8} {:>16} {:>16} {:>14} {:>14}",
        "budget%", "EV(MinVar set)", "EV(MaxPr set)", "Pr(MinVar)", "Pr(MaxPr)"
    );
    for pct in [10, 20, 30, 50, 70, 90] {
        let budget = Budget::fraction(w.instance.total_cost(), pct as f64 / 100.0);
        let minvar = knapsack_optimum_min_var_gaussian(&w.instance, &w.weights, budget);
        let maxpr = greedy_max_pr(&w.instance, &w.weights, budget, tau, MvnSemantics::Marginal);
        let ev_of = |sel: &fc_core::Selection| {
            ev_gaussian_linear(&w.instance, &w.weights, sel.objects(), MvnSemantics::Marginal)
                .unwrap()
        };
        let pr_of = |sel: &fc_core::Selection| {
            surprise_prob_gaussian(
                &w.instance,
                &w.weights,
                sel.objects(),
                tau,
                MvnSemantics::Marginal,
            )
            .unwrap()
        };
        println!(
            "{:>7}% {:>16.1} {:>16.1} {:>14.4} {:>14.4}",
            pct,
            ev_of(&minvar),
            ev_of(&maxpr),
            pr_of(&minvar),
            pr_of(&maxpr),
        );
    }
    println!(
        "\nEach algorithm wins its own column — and MaxPr's cleaning choices tell you \
         more about the checker's desire to counter than about the data. \
         Theorem 3.9's centered setting is the safe harbor."
    );
}
