//! Hunting a counterargument under budget (§4.3 "finding counters").
//!
//! The claim: "in the past four years we had only N firearm injuries —
//! the lowest in recent history." On the *noisy* current data no other
//! 4-year window beats the bragged one; the hidden truth says otherwise.
//! A fact-checker must decide which historical values to re-verify.
//!
//! We compare GreedyMaxPr (probability-driven) against GreedyNaive
//! (variance-driven) by the budget each needs before the revealed values
//! expose a counterargument, and also run the adaptive (§6) policy that
//! reacts to each revealed value.
//!
//! Run with: `cargo run --release --example crime_counter`

use fc_core::algo::{adaptive_max_pr_simulate, greedy_max_pr_discrete, greedy_naive};
use fc_core::{Budget, Selection};
use fc_datasets::workloads::{counters_firearms, CountersWorkload};

/// Reveal the truth for a selection and report the strongest counter
/// (for a "lowest in history" claim: another window strictly lower).
fn reveal(w: &CountersWorkload, sel: &Selection) -> Option<(usize, f64)> {
    let mut values = w.instance.current().to_vec();
    for &i in sel.objects() {
        values[i] = w.truth[i];
    }
    let theta = w.claims.original_value(w.instance.current());
    w.claims.strongest_duplicate(&values, theta)
}

fn main() {
    // Scan seeds for the paper's scenario: no counter visible on current
    // data, but one exists under the hidden truth.
    let mut workload = None;
    for seed in 0..200 {
        let w = counters_firearms(seed).unwrap();
        let theta = w.claims.original_value(w.instance.current());
        let visible = w
            .claims
            .strongest_duplicate(w.instance.current(), theta)
            .is_some();
        let hidden = w.claims.strongest_duplicate(&w.truth, theta).is_some();
        if !visible && hidden {
            println!("scenario seed: {seed}");
            workload = Some(w);
            break;
        }
    }
    let w = workload.expect("a qualifying scenario exists in the seed range");
    let total = w.instance.total_cost();
    let tau = w.tau;

    println!(
        "claim window value (current data): {:.0}",
        w.claims.original_value(w.instance.current())
    );
    println!("counter exists under hidden truth: yes\n");

    let report = |name: &str, select: &dyn Fn(Budget) -> Selection| {
        for pct in 1..=100u64 {
            let budget = Budget::fraction(total, pct as f64 / 100.0);
            let sel = select(budget);
            if reveal(&w, &sel).is_some() {
                println!(
                    "{name:<14} finds the counter at {pct:>3}% of the total budget \
                     (cleaned {} values)",
                    sel.len()
                );
                return;
            }
        }
        println!("{name:<14} never finds the counter");
    };

    report("GreedyMaxPr", &|b| {
        greedy_max_pr_discrete(&w.instance, &w.query, b, tau, None).unwrap()
    });
    report("GreedyNaive", &|b| greedy_naive(&w.instance, &w.query, b));

    // Adaptive policy (§6 extension): reacts to each revealed value.
    let out = adaptive_max_pr_simulate(
        &w.instance,
        &w.query,
        Budget::fraction(total, 1.0),
        tau,
        &w.truth,
    )
    .unwrap();
    let spent: u64 = out.selection.cost();
    println!(
        "Adaptive       stops after {} cleanings ({}% of budget), surprised: {}",
        out.order.len(),
        100 * spent / total,
        out.surprised
    );
}
