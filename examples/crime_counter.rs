//! Hunting a counterargument under budget (§4.3 "finding counters").
//!
//! The claim: "in the past four years we had only N firearm injuries —
//! the lowest in recent history." On the *noisy* current data no other
//! 4-year window beats the bragged one; the hidden truth says otherwise.
//! A fact-checker must decide which historical values to re-verify.
//!
//! We compare GreedyMaxPr (probability-driven) against GreedyNaive
//! (variance-driven) by the budget each needs before the revealed values
//! expose a counterargument — both served through the session/registry
//! path (`SessionBuilder` → `recommend` with a `find_counter` /
//! strategy-override spec) — and also replay the adaptive (§6) policy
//! against the hidden truth.
//!
//! Run with: `cargo run --release --example crime_counter`

use fact_clean::prelude::*;
use fc_core::algo::adaptive_max_pr_simulate;
use fc_datasets::workloads::{counters_firearms, CountersWorkload};

/// Reveal the truth for a selection and report the strongest counter
/// (for a "lowest in history" claim: another window strictly lower).
fn reveal(w: &CountersWorkload, sel: &Selection) -> Option<(usize, f64)> {
    let mut values = w.instance.current().to_vec();
    for &i in sel.objects() {
        values[i] = w.truth[i];
    }
    let theta = w.claims.original_value(w.instance.current());
    w.claims.strongest_duplicate(&values, theta)
}

fn main() {
    // Scan seeds for the paper's scenario: no counter visible on current
    // data, but one exists under the hidden truth.
    let mut workload = None;
    for seed in 0..200 {
        let w = counters_firearms(seed).unwrap();
        let theta = w.claims.original_value(w.instance.current());
        let visible = w
            .claims
            .strongest_duplicate(w.instance.current(), theta)
            .is_some();
        let hidden = w.claims.strongest_duplicate(&w.truth, theta).is_some();
        if !visible && hidden {
            println!("scenario seed: {seed}");
            workload = Some(w);
            break;
        }
    }
    let w = workload.expect("a qualifying scenario exists in the seed range");
    let total = w.instance.total_cost();
    let tau = w.tau;
    let theta = w.claims.original_value(w.instance.current());

    // The session mirrors the workload's bias query: the claim family
    // flipped to HigherIsStronger (a counter *lowers* the bias) with θ
    // anchored at the bragged window's value on the current data. The
    // budget scan below issues up to 100 recommends per strategy over
    // the same data, so a cache store keeps the engine prefix work to
    // one build per measure instead of one per call.
    let session = SessionBuilder::new()
        .discrete(w.instance.clone())
        .claims(w.claims.with_direction(Direction::HigherIsStronger))
        .theta(theta)
        .cache_store(std::sync::Arc::new(CacheStore::new(8)))
        .build()
        .unwrap();

    println!("claim window value (current data): {theta:.0}");
    println!("counter exists under hidden truth: yes\n");

    let report = |name: &str, spec: &ObjectiveSpec| {
        for pct in 1..=100u64 {
            let budget = Budget::fraction(total, pct as f64 / 100.0);
            let plan = session.recommend(spec.clone(), budget).unwrap();
            if reveal(&w, &plan.selection).is_some() {
                println!(
                    "{name:<14} finds the counter at {pct:>3}% of the total budget \
                     (cleaned {} values)   [{}]",
                    plan.selection.len(),
                    plan.strategy,
                );
                return;
            }
        }
        println!("{name:<14} never finds the counter");
    };

    // MaxPr via the paper's routing; MinVar-naive via a strategy
    // override on the same session.
    report("GreedyMaxPr", &ObjectiveSpec::find_counter(tau));
    report(
        "GreedyNaive",
        &ObjectiveSpec::ascertain(Measure::Bias).with_strategy("greedy-naive"),
    );

    // Adaptive policy (§6 extension): the registry's "adaptive"
    // strategy plans against the expectation; here we replay the
    // *hidden truth* instead, which is the one thing a planner cannot
    // know — hence the direct simulation entry point.
    let out = adaptive_max_pr_simulate(
        &w.instance,
        &w.query,
        Budget::fraction(total, 1.0),
        tau,
        &w.truth,
    )
    .unwrap();
    let spent: u64 = out.selection.cost();
    println!(
        "Adaptive       stops after {} cleanings ({}% of budget), surprised: {}",
        out.order.len(),
        100 * spent / total,
        out.surprised
    );
}
