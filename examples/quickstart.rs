//! Quickstart: fact-checking a crime-statistics claim (paper Example 2)
//! through the unified planner API.
//!
//! "Crimes (in 2018) have gone up by more than 300 cases from last
//! year." The underlying counts are uncertain; we have budget to clean
//! only a few of the five years. What should we clean — and does the
//! answer change if we only want to *counter* the claim?
//!
//! Run with: `cargo run --example quickstart`

use fact_clean::prelude::*;

fn main() {
    // Reported yearly crime counts, 2014–2018 (Example 2).
    let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0];
    // Error model: each count may be off; coding errors of ±~40 cases.
    let dists: Vec<DiscreteDist> = current
        .iter()
        .map(|&u| DiscreteDist::uniform_over(&[u - 40.0, u, u + 40.0]).unwrap())
        .collect();
    // Older records are cheaper to re-verify than fresh ones.
    let costs = vec![1, 1, 2, 3, 3];
    let instance = Instance::new(dists, current, costs).unwrap();

    // The claim compares 2018 against 2017; perturbations shift the
    // comparison through earlier year pairs.
    let claims = ClaimSet::new(
        LinearClaim::window_comparison(3, 4, 1).unwrap(),
        vec![
            LinearClaim::window_comparison(2, 3, 1).unwrap(),
            LinearClaim::window_comparison(1, 2, 1).unwrap(),
            LinearClaim::window_comparison(0, 1, 1).unwrap(),
        ],
        vec![1.0; 3],
        Direction::HigherIsStronger,
    )
    .unwrap();

    let session = SessionBuilder::new()
        .discrete(instance)
        .claims(claims)
        .build()
        .unwrap();
    println!(
        "claim value on current data: +{} cases",
        session.original_value()
    );
    let (bias, dup, frag) = session.current_quality();
    println!("quality on current data: bias = {bias:.1}, dup = {dup}, frag = {frag:.1}\n");

    // One batched request: ascertain every quality measure AND hunt a
    // counterargument, all through the same solver registry.
    let budget = Budget::absolute(4);
    let specs = [
        ObjectiveSpec::ascertain(Measure::Bias),
        ObjectiveSpec::ascertain(Measure::Dup),
        ObjectiveSpec::ascertain(Measure::Frag),
        ObjectiveSpec::find_counter(10.0),
    ];
    let plans = session.recommend_many(&specs, budget).unwrap();
    for (spec, plan) in specs.iter().zip(&plans) {
        println!(
            "{:?} / {}\n  clean years {:?} (cost {}/{})\n  objective: {:.4} -> {:.4}   [{}]\n",
            spec.measure,
            spec.goal,
            plan.selection
                .objects()
                .iter()
                .map(|&i| 2014 + i as u16)
                .collect::<Vec<_>>(),
            plan.selection.cost(),
            budget.get(),
            plan.before,
            plan.after,
            plan.strategy,
        );
    }

    // Budget sweeps share the engine prefix work across all points.
    let budgets: Vec<Budget> = (0..=10).map(Budget::absolute).collect();
    let sweep = session
        .recommend_sweep(&ObjectiveSpec::ascertain(Measure::Dup), &budgets)
        .unwrap();
    println!("uniqueness EV by budget:");
    for (b, plan) in budgets.iter().zip(&sweep) {
        println!("  C = {:>2}: EV = {:.4}", b.get(), plan.after);
    }
    println!();

    // Simulate the recommended counter-hunt: cleaning reveals the upper
    // support value (the optimistic outcome GreedyMaxPr was betting on).
    let plan = &plans[3];
    let revealed: Vec<f64> = plan
        .selection
        .objects()
        .iter()
        .map(|&i| session.instance().dist(i).max_value())
        .collect();
    let after = session.after_cleaning(&plan.selection, &revealed).unwrap();
    let (bias_before, _, _) = session.current_quality();
    let (bias_after, _, _) = after.current_quality();
    println!("after cleaning: bias {bias_before:.1} -> {bias_after:.1}");
    if bias_after < bias_before - 10.0 {
        println!(
            "surprise achieved: the year-over-year record now reads less \
             exceptional than the claim implied."
        );
    }
}
