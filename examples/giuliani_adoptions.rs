//! Fairness of a window-aggregate comparison claim (paper Example 4 and
//! Fig. 1a): Giuliani's "adoptions went up 65 to 70 percent" claim,
//! modeled as the comparison of 1993–1996 against 1989–1992 over the NYC
//! adoptions series, with 18 window-shifted perturbations.
//!
//! We sweep the cleaning budget and show how much uncertainty about the
//! claim's *fairness* each algorithm removes per dollar.
//!
//! Run with: `cargo run --release --example giuliani_adoptions`

use fc_claims::BiasQuery;
use fc_core::algo::{
    greedy_naive, greedy_naive_cost_blind, knapsack_optimum_min_var, random_select,
};
use fc_core::ev::modular::{ev_modular, modular_benefits};
use fc_core::Budget;
use fc_datasets::workloads::giuliani_fairness;
use fc_uncertain::rng_from_seed;

fn main() {
    let seed = 42;
    let w = giuliani_fairness(seed).unwrap();
    // The experiments run on the discretized instance (6-point normals).
    let instance = w.instance.discretize(6).unwrap();
    let query = BiasQuery::relative_to_original(w.claims.clone());
    let benefits = modular_benefits(&instance, &query).unwrap();
    let total = instance.total_cost();

    println!("Giuliani adoptions claim — variance in fairness remaining after cleaning");
    println!(
        "{:>8} {:>12} {:>14} {:>12} {:>12} {:>12}",
        "budget%", "Random", "NaiveCostBlind", "GreedyNaive", "GreedyMinVar", "Optimum"
    );
    let mut rng = rng_from_seed(7);
    for pct in [0, 5, 10, 20, 30, 50, 75, 100] {
        let budget = Budget::fraction(total, pct as f64 / 100.0);
        let rand_ev: f64 = (0..50)
            .map(|_| {
                let sel = random_select(&instance, budget, &mut rng);
                ev_modular(&benefits, sel.objects())
            })
            .sum::<f64>()
            / 50.0;
        let cb = greedy_naive_cost_blind(&instance, &query, budget);
        let naive = greedy_naive(&instance, &query, budget);
        let gmv = fc_core::algo::greedy_min_var(&instance, &query, budget);
        let opt = knapsack_optimum_min_var(&instance, &query, budget).unwrap();
        println!(
            "{:>7}% {:>12.1} {:>14.1} {:>12.1} {:>12.1} {:>12.1}",
            pct,
            rand_ev,
            ev_modular(&benefits, cb.objects()),
            ev_modular(&benefits, naive.objects()),
            ev_modular(&benefits, gmv.objects()),
            ev_modular(&benefits, opt.objects()),
        );
    }
    println!(
        "\nInitial variance in fairness: {:.1}",
        benefits.iter().sum::<f64>()
    );
    println!("GreedyMinVar tracks Optimum; both dominate the naive baselines.");
}
