//! Fairness of a window-aggregate comparison claim (paper Example 4 and
//! Fig. 1a): Giuliani's "adoptions went up 65 to 70 percent" claim,
//! modeled as the comparison of 1993–1996 against 1989–1992 over the NYC
//! adoptions series, with 18 window-shifted perturbations.
//!
//! We sweep the cleaning budget and show how much uncertainty about the
//! claim's *fairness* each algorithm removes per dollar — served
//! through the unified planner: one Gaussian MinVar [`Problem`] and one
//! batch of strategy × budget jobs over it, so every algorithm shares
//! a single engine build and comes back as a [`Plan`] with its
//! predicted effect. The `Random` column is the registry's seeded
//! random solver — a single reproducible draw, not an average over
//! draws, so it can get lucky at individual budgets.
//!
//! Run with: `cargo run --release --example giuliani_adoptions`

use fc_core::planner::Problem;
use fc_core::{BatchJob, Budget, ExecOptions, SolverRegistry};
use fc_datasets::workloads::giuliani_fairness;

const STRATEGIES: [(&str, &str); 5] = [
    ("Random", "random"),
    ("NaiveCostBlind", "greedy-naive-cost-blind"),
    ("GreedyNaive", "greedy-naive"),
    ("GreedyMinVar", "greedy"),
    ("Optimum", "optimum-knapsack"),
];
const PCTS: [u64; 8] = [0, 5, 10, 20, 30, 50, 75, 100];

fn main() {
    let seed = 42;
    let w = giuliani_fairness(seed).unwrap();
    // The affine bias query's weights come with the workload (§3.4
    // weight form); the Gaussian error model keeps the closed forms.
    let problem = Problem::gaussian_min_var(w.instance.clone(), w.weights.clone()).unwrap();
    let registry = SolverRegistry::with_defaults();
    let total = w.instance.total_cost();

    let problem = &problem;
    let budgets: Vec<Budget> = PCTS
        .iter()
        .map(|&pct| Budget::fraction(total, pct as f64 / 100.0))
        .collect();
    let jobs: Vec<BatchJob<'_>> = STRATEGIES
        .iter()
        .flat_map(|&(_, strategy)| {
            budgets.iter().map(move |&budget| BatchJob {
                strategy,
                problem,
                budget,
                key: None,
            })
        })
        .collect();
    let plans = registry
        .solve_batch(&jobs, &ExecOptions::default())
        .expect("Gaussian MinVar supports every listed strategy");

    println!("Giuliani adoptions claim — variance in fairness remaining after cleaning");
    print!("{:>8}", "budget%");
    for (label, _) in STRATEGIES {
        print!(" {label:>14}");
    }
    println!();
    for (row, &pct) in PCTS.iter().enumerate() {
        print!("{pct:>7}%");
        for col in 0..STRATEGIES.len() {
            print!(" {:>14.1}", plans[col * PCTS.len() + row].after);
        }
        println!();
    }
    println!("\nInitial variance in fairness: {:.1}", plans[0].before);
    println!(
        "GreedyMinVar tracks Optimum at every budget; the naive heuristics trail \
         them (Random is a single draw and merely gets lucky or unlucky)."
    );
}
