//! A long-lived claim stream: submit → clean → resubmit, staying warm.
//!
//! The paper's fact-checking loop is interactive — claims stream in
//! against a dataset whose values keep getting cleaned. This example
//! runs that loop through the serving layer: a [`PlannerService`]
//! (shared registry + cache store + worker pool) serving a
//! [`ClaimStream`] that holds the crime-counts dataset open, with the
//! cleaning step invalidating exactly the stale cache entries.
//!
//! Run with: `cargo run --release --example serve_stream`

use std::sync::Arc;

use fact_clean::prelude::*;
use fc_core::SolverRegistry;

fn main() {
    // The Example-2 crime-counts data: five yearly counts, each
    // possibly off by ±40 coding errors.
    let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0];
    let dists: Vec<DiscreteDist> = current
        .iter()
        .map(|&u| DiscreteDist::uniform_over(&[u - 40.0, u, u + 40.0]).unwrap())
        .collect();
    let instance = Instance::new(dists, current, vec![1, 1, 2, 3, 3]).unwrap();
    let claims = ClaimSet::new(
        LinearClaim::window_comparison(3, 4, 1).unwrap(),
        vec![
            LinearClaim::window_comparison(2, 3, 1).unwrap(),
            LinearClaim::window_comparison(1, 2, 1).unwrap(),
            LinearClaim::window_comparison(0, 1, 1).unwrap(),
        ],
        vec![1.0; 3],
        Direction::HigherIsStronger,
    )
    .unwrap();

    // One service per process: registry + fingerprint-keyed store +
    // worker pool. `inline_threshold 0` forces even this tiny demo
    // through the queue so the handles are real.
    let service = PlannerService::new(
        Arc::new(SolverRegistry::with_defaults()),
        ServiceOptions::new().with_inline_threshold(0),
    );
    let store = Arc::clone(service.store());
    let mut stream = SessionBuilder::new()
        .discrete(instance)
        .claims(claims)
        .build()
        .unwrap()
        .into_stream(service);

    let budget = Budget::absolute(2);
    let spec = ObjectiveSpec::ascertain(Measure::Dup);

    // --- 1. submit: the handle is a hand-rolled future -------------
    let handle = stream.submit(spec.clone(), budget).unwrap();
    println!(
        "submitted uniqueness claim (lane {:?}, est. {} engine evals)",
        handle.lane(),
        handle.estimate()
    );
    let cold = handle.wait().unwrap();
    println!(
        "cold plan:   clean {:?}, EV {:.3} -> {:.3}   [{} | store misses {}]",
        cold.selection.objects(),
        cold.before,
        cold.after,
        cold.strategy,
        cold.diagnostics.store_misses,
    );

    // Resubmitting the same claim is served from the warm store — the
    // plan itself reports it.
    let warm = stream.submit(spec.clone(), budget).unwrap().wait().unwrap();
    println!(
        "warm plan:   identical: {}   [store hits {}]",
        warm.divergence(&cold).is_none(),
        warm.diagnostics.store_hits,
    );

    // --- 2. clean: reveal the recommended values -------------------
    // A budget sweep is still in flight when the cleaning lands — its
    // plans would answer yesterday's question, so cancel it instead of
    // letting it burn worker time (dropping the handle would do the
    // same implicitly).
    let budgets: Vec<Budget> = (1..=5).map(Budget::absolute).collect();
    let stale_sweep = stream.submit_sweep(&spec, &budgets).unwrap();
    let objects = cold.selection.objects().to_vec();
    let revealed: Vec<f64> = objects
        .iter()
        .map(|&i| stream.session().instance().dist(i).max_value())
        .collect();
    let invalidated = stream.mark_cleaned(&objects, &revealed).unwrap();
    let landed = stale_sweep.cancel();
    println!(
        "superseded sweep cancelled: {} (outcome: {})",
        landed,
        match stale_sweep.try_wait() {
            WaitOutcome::Cancelled => "Cancelled — no stale plans will surface",
            WaitOutcome::Ready(_) | WaitOutcome::Taken =>
                "completed before the cancel (its plans are pre-cleaning answers)",
            WaitOutcome::TimedOut => "still draining",
        }
    );
    println!(
        "\ncleaned {:?} -> revealed {:?} ({} stale store entr{} invalidated, {} resident)",
        objects,
        revealed,
        invalidated,
        if invalidated == 1 { "y" } else { "ies" },
        store.stats().entries,
    );

    // --- 3. resubmit: fresh fingerprint, fresh answer --------------
    let after = stream.submit(spec, budget).unwrap().wait().unwrap();
    println!(
        "post-clean:  clean {:?}, EV {:.3} -> {:.3}   [store misses {}]",
        after.selection.objects(),
        after.before,
        after.after,
        after.diagnostics.store_misses,
    );
    println!(
        "\nservice stats: {:?}\nstore stats:   {:?}",
        stream.service().stats(),
        store.stats()
    );
}
