//! Partial cleaning (§6 future work, implemented as an extension): when
//! re-verifying a value only *shrinks* its uncertainty instead of
//! resolving it, the best cleaning plan changes — a noisy source that
//! barely improves under verification loses to a moderately noisy source
//! that verifies well — and budgets can be spent across *rounds*.
//!
//! Scenario: the Example 2 crime counts again, but now each year's count
//! is re-verified against secondary sources of varying quality: recent
//! years verify well (ρ = 0.2), old paper records barely improve
//! (ρ = 0.9).
//!
//! Run with: `cargo run --release --example partial_cleaning`

use fc_claims::{BiasQuery, ClaimSet, Direction, LinearClaim};
use fc_core::algo::{
    optimum_min_var_partial, partial_modular_benefits, shrink_cleaned, ResidualModel,
};
use fc_core::ev::{ev_modular, modular_benefits};
use fc_core::{Budget, Instance};
use fc_uncertain::DiscreteDist;

fn main() {
    let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0];
    let dists: Vec<DiscreteDist> = current
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            // Older years are noisier.
            let spread = 60.0 - 10.0 * i as f64;
            DiscreteDist::uniform_over(&[u - spread, u, u + spread]).unwrap()
        })
        .collect();
    let instance = Instance::new(dists, current, vec![1; 5]).unwrap();
    let claims = ClaimSet::new(
        LinearClaim::window_comparison(3, 4, 1).unwrap(),
        vec![
            LinearClaim::window_comparison(2, 3, 1).unwrap(),
            LinearClaim::window_comparison(1, 2, 1).unwrap(),
            LinearClaim::window_comparison(0, 1, 1).unwrap(),
        ],
        vec![1.0; 3],
        Direction::HigherIsStronger,
    )
    .unwrap();
    let theta = claims.original_value(instance.current());
    let query = BiasQuery::new(claims, theta);

    // Verification quality: old records barely improve, recent ones do.
    let residual = ResidualModel::new(vec![0.9, 0.8, 0.5, 0.3, 0.2]).unwrap();
    let budget = Budget::absolute(2);

    let full = ResidualModel::full_cleaning(5);
    let plan_full = optimum_min_var_partial(&instance, &query, &full, budget).unwrap();
    let plan_partial = optimum_min_var_partial(&instance, &query, &residual, budget).unwrap();
    println!(
        "assuming perfect cleaning, clean years {:?}",
        years(&plan_full)
    );
    println!(
        "with realistic verification, clean years {:?}",
        years(&plan_partial)
    );

    // Execute two rounds of partial cleaning with the realistic model.
    let w0 = modular_benefits(&instance, &query).unwrap();
    println!("\nEV before any cleaning: {:.1}", ev_modular(&w0, &[]));
    let mut db = instance;
    for round in 1..=2 {
        let plan = optimum_min_var_partial(&db, &query, &residual, budget).unwrap();
        db = shrink_cleaned(&db, &plan, &residual).unwrap();
        let w = partial_modular_benefits(&db, &query, &full).unwrap();
        println!(
            "round {round}: cleaned years {:?}, EV now {:.1}",
            years(&plan),
            w.iter().sum::<f64>()
        );
    }
    println!("\npartial cleaning composes: every round shrinks the remaining variance.");
}

fn years(sel: &fc_core::Selection) -> Vec<u16> {
    sel.objects().iter().map(|&i| 2014 + i as u16).collect()
}
