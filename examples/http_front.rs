//! The network front, end to end: boot the HTTP server over the
//! crime-counts stream, then run the `serve_stream` loop — submit →
//! clean → resubmit — through the typed [`ApiClient`] instead of
//! library calls.
//!
//! The typed layer (`fact_clean::net::api`) owns the wire field names;
//! requests are built as structs and responses come back decoded. The
//! final exchange drops to the raw `client::post` helper to show what
//! actually crosses the socket — and what a malformed body gets back.
//!
//! Run with: `cargo run --release --example http_front`

use std::sync::Arc;

use fact_clean::net::api::{BudgetSpec, CleanRequest, RecommendRequest, SweepRequest};
use fact_clean::net::client::{self, ApiClient};
use fact_clean::prelude::*;
use fc_core::SolverRegistry;

fn main() {
    // The Example-2 crime-counts data, exactly as in `serve_stream`.
    let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0];
    let dists: Vec<DiscreteDist> = current
        .iter()
        .map(|&u| DiscreteDist::uniform_over(&[u - 40.0, u, u + 40.0]).unwrap())
        .collect();
    let instance = Instance::new(dists, current.clone(), vec![1, 1, 2, 3, 3]).unwrap();
    let claims = ClaimSet::new(
        LinearClaim::window_comparison(3, 4, 1).unwrap(),
        vec![
            LinearClaim::window_comparison(2, 3, 1).unwrap(),
            LinearClaim::window_comparison(1, 2, 1).unwrap(),
            LinearClaim::window_comparison(0, 1, 1).unwrap(),
        ],
        vec![1.0; 3],
        Direction::HigherIsStronger,
    )
    .unwrap();

    let service = PlannerService::new(
        Arc::new(SolverRegistry::with_defaults()),
        ServiceOptions::new().with_inline_threshold(0),
    );
    let stream = SessionBuilder::new()
        .discrete(instance)
        .claims(claims)
        .build()
        .unwrap()
        .into_stream(service.clone());
    let server = PlannerServer::new(service)
        .with_stream("crime", stream)
        .serve("127.0.0.1:0")
        .expect("bind an ephemeral port");
    println!("planner server listening on http://{}\n", server.addr());

    let api = ApiClient::connect(server.addr()).expect("connect");

    // 1. Ascertain the uniqueness claim under a budget of 2.
    let ask = RecommendRequest {
        stream: "crime".to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup),
        budget: BudgetSpec::Absolute(2),
    };
    println!("> POST /v1/recommend {}", ask.encode());
    let cold = api.recommend(&ask, Some("demo")).expect("plan");
    println!(
        "< clean {:?} (cost {}, {} engine evals)\n",
        cold.objects, cold.cost, cold.diagnostics.engine_evals
    );

    // 2. Clean the recommended objects at their revealed values (here:
    //    the distributions' max), invalidating exactly the stale cache
    //    entries server-side.
    let clean = CleanRequest {
        objects: cold.objects.clone(),
        revealed: cold.objects.iter().map(|&i| current[i] + 40.0).collect(),
    };
    println!("> POST /v1/streams/crime/clean {}", clean.encode());
    let applied = api.clean("crime", &clean, Some("demo")).expect("clean");
    println!(
        "< cleaned {} objects, invalidated {} cached plans\n",
        applied.objects, applied.invalidated
    );

    // 3. Resubmit: fresh fingerprint, fresh answer — plus a budget
    //    sweep to show the grid endpoint.
    let warm = api.recommend(&ask, Some("demo")).expect("plan");
    println!(
        "< after cleaning: clean {:?} (cost {})\n",
        warm.objects, warm.cost
    );
    let sweep = SweepRequest {
        stream: "crime".to_string(),
        spec: ObjectiveSpec::find_counter(5.0),
        budgets: [1, 2, 3].iter().map(|&k| BudgetSpec::Absolute(k)).collect(),
    };
    println!("> POST /v1/sweep {}", sweep.encode());
    for plan in api.sweep(&sweep, Some("demo")).expect("sweep") {
        println!("< budget sweep: {} for {}", plan.goal, plan.identity_json());
    }

    // 4. Counters over the wire, typed.
    let stats = api.stats().expect("stats");
    println!(
        "\nstats: {} submitted, {} completed, {} store hits\n",
        stats.service.submitted, stats.service.completed, stats.store.hits
    );

    // 5. The raw wire, for contrast: `client::post` speaks HTTP/1.1
    //    directly, which is also how a malformed body is rejected.
    let (status, body) = client::post(
        server.addr(),
        "/v1/recommend",
        r#"{"stream":"crime","measure":"dup"}"#,
        &[],
    )
    .expect("raw exchange");
    println!("raw POST without a budget -> HTTP {status} {body}");

    server.shutdown();
    println!("server drained and shut down");
}
