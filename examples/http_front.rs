//! The network front, end to end: boot the HTTP server over the
//! crime-counts stream, then run the `serve_stream` loop — submit →
//! clean → resubmit — as a wire protocol instead of library calls.
//!
//! The client below is a plain `TcpStream` speaking HTTP/1.1 (the
//! transcript mirrors what `curl` would send; see the README's
//! "Network front" section for the curl version).
//!
//! Run with: `cargo run --release --example http_front`

use std::net::TcpStream;
use std::sync::Arc;

use fact_clean::net::client;
use fact_clean::prelude::*;
use fc_core::SolverRegistry;

/// One keep-alive exchange via `fc::net::client`, printed transcript-
/// style; returns the response body.
fn request(sock: &mut TcpStream, method: &str, path: &str, json: &str) -> String {
    client::write_request(sock, method, path, &[("x-tenant", "demo")], json).expect("send request");
    let (status, body) = client::read_response(sock).expect("response");
    println!("< HTTP/1.1 {status}\n< {body}\n");
    body
}

fn post(sock: &mut TcpStream, path: &str, json: &str) -> String {
    println!("> POST {path}\n> {json}");
    request(sock, "POST", path, json)
}

fn get(sock: &mut TcpStream, path: &str) -> String {
    println!("> GET {path}");
    request(sock, "GET", path, "")
}

fn main() {
    // The Example-2 crime-counts data, exactly as in `serve_stream`.
    let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0];
    let dists: Vec<DiscreteDist> = current
        .iter()
        .map(|&u| DiscreteDist::uniform_over(&[u - 40.0, u, u + 40.0]).unwrap())
        .collect();
    let instance = Instance::new(dists, current.clone(), vec![1, 1, 2, 3, 3]).unwrap();
    let claims = ClaimSet::new(
        LinearClaim::window_comparison(3, 4, 1).unwrap(),
        vec![
            LinearClaim::window_comparison(2, 3, 1).unwrap(),
            LinearClaim::window_comparison(1, 2, 1).unwrap(),
            LinearClaim::window_comparison(0, 1, 1).unwrap(),
        ],
        vec![1.0; 3],
        Direction::HigherIsStronger,
    )
    .unwrap();

    let service = PlannerService::new(
        Arc::new(SolverRegistry::with_defaults()),
        ServiceOptions::new().with_inline_threshold(0),
    );
    let stream = SessionBuilder::new()
        .discrete(instance)
        .claims(claims)
        .build()
        .unwrap()
        .into_stream(service.clone());
    let server = PlannerServer::new(service)
        .with_stream("crime", stream)
        .serve("127.0.0.1:0")
        .expect("bind an ephemeral port");
    println!("planner server listening on http://{}\n", server.addr());

    let mut sock = TcpStream::connect(server.addr()).expect("connect");

    // 1. Ascertain the uniqueness claim under a budget of 2.
    let cold = post(
        &mut sock,
        "/v1/recommend",
        r#"{"stream":"crime","measure":"dup","budget":2}"#,
    );

    // 2. Clean the recommended objects at their revealed values (here:
    //    the distributions' max), invalidating exactly the stale cache
    //    entries server-side.
    let objects: Vec<usize> = fact_clean::net::json::Json::parse(&cold)
        .expect("plan JSON")
        .get("objects")
        .and_then(fact_clean::net::json::Json::as_array)
        .expect("objects")
        .iter()
        .filter_map(fact_clean::net::json::Json::as_usize)
        .collect();
    let revealed: Vec<String> = objects
        .iter()
        .map(|&i| format!("{}", current[i] + 40.0))
        .collect();
    post(
        &mut sock,
        "/v1/streams/crime/clean",
        &format!(
            r#"{{"objects":[{}],"revealed":[{}]}}"#,
            objects
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(","),
            revealed.join(",")
        ),
    );

    // 3. Resubmit: fresh fingerprint, fresh answer — plus a budget
    //    sweep to show the grid endpoint.
    post(
        &mut sock,
        "/v1/recommend",
        r#"{"stream":"crime","measure":"dup","budget":2}"#,
    );
    post(
        &mut sock,
        "/v1/sweep",
        r#"{"stream":"crime","measure":"bias","goal":{"maxpr":5},"budgets":[1,2,3]}"#,
    );

    // 4. Counters over the wire.
    get(&mut sock, "/v1/stats");

    drop(sock);
    server.shutdown();
    println!("server drained and shut down");
}
