//! High-level fact-checker workflow over the unified planner.
//!
//! [`CleaningSession`] pairs uncertain data — discrete **or** Gaussian
//! ([`DataModel`]) — with the [`ClaimSet`] under scrutiny and answers
//! the practitioner's question directly: *given my budget and goal,
//! which values should I clean?* Objectives are requested as
//! [`ObjectiveSpec`]s (measure × goal × strategy) and solved through a
//! pluggable [`SolverRegistry`]; results come back as [`Plan`]s carrying
//! the selection, the objective before/after, the resolved strategy
//! name, and evaluation diagnostics.
//!
//! Serving entry points:
//!
//! * [`CleaningSession::recommend`] — one objective, one budget;
//! * [`CleaningSession::recommend_many`] — a batch of objectives at one
//!   budget (one request per measure the checker cares about);
//! * [`CleaningSession::recommend_sweep`] — one objective across a
//!   budget sweep, sharing the engine prefix work across all points
//!   (the hot path of every figure binary).
//!
//! Batches and sweeps run through the planner's sharded executor:
//! independent lowered problems (and sweep budget points) are dealt to
//! a worker pool sized by the builder's
//! [`parallelism`](crate::builder::SessionBuilder::parallelism) knob,
//! and the plans come back in input order, byte-identical to the
//! sequential ones. With a
//! [`cache_store`](crate::builder::SessionBuilder::cache_store)
//! installed, the expensive scoped-EV prefix work is additionally keyed
//! on (instance fingerprint, measure identity) and survives the
//! session — repeat sessions over the same dataset rebuild nothing.

use std::sync::Arc;

use fc_claims::{BiasQuery, ClaimSet, DupQuery, FragQuery, QueryFunction};
use fc_core::planner::{EngineCache, Fnv1a, SharedQuery};
use fc_core::{
    BatchJob, Budget, CacheKey, CacheStore, CoreError, ExecOptions, GaussianInstance, Instance,
    Parallelism, Plan, Problem, Result, Selection, SolverRegistry,
};

use crate::builder::SessionBuilder;
use crate::planner::{Goal, Measure, ObjectiveSpec};

/// The uncertain data underlying a session: the paper's discrete
/// marginals, or a (multivariate) normal error model.
#[derive(Debug, Clone, PartialEq)]
pub enum DataModel {
    /// Discrete, mutually independent marginals (§2.1).
    Discrete(Instance),
    /// Normal / multivariate-normal errors (§3.2, §4.5).
    Gaussian(GaussianInstance),
}

impl DataModel {
    /// Current (pre-cleaning) values `u`.
    pub fn current(&self) -> &[f64] {
        match self {
            Self::Discrete(i) => i.current(),
            Self::Gaussian(g) => g.current(),
        }
    }

    /// Cleaning costs `c`.
    pub fn costs(&self) -> &[u64] {
        match self {
            Self::Discrete(i) => i.costs(),
            Self::Gaussian(g) => g.costs(),
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        match self {
            Self::Discrete(i) => i.len(),
            Self::Gaussian(g) => g.len(),
        }
    }

    /// Whether the model has no objects (never true once validated).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cost of cleaning everything.
    pub fn total_cost(&self) -> u64 {
        self.costs().iter().sum()
    }
}

fn unknown_goal(goal: Goal) -> CoreError {
    CoreError::StrategyUnsupported {
        strategy: "session".into(),
        reason: format!("goal {goal} is not supported by this session version"),
    }
}

impl From<Instance> for DataModel {
    fn from(i: Instance) -> Self {
        Self::Discrete(i)
    }
}

impl From<GaussianInstance> for DataModel {
    fn from(g: GaussianInstance) -> Self {
        Self::Gaussian(g)
    }
}

/// Legacy objective enum, superseded by [`ObjectiveSpec`].
#[deprecated(
    since = "0.2.0",
    note = "use ObjectiveSpec (ascertain/find_counter constructors); Objective converts via From"
)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// MinVar on the fairness measure (`bias`).
    AscertainFairness,
    /// MinVar on the uniqueness measure (`dup`).
    AscertainUniqueness,
    /// MinVar on the robustness measure (`frag`).
    AscertainRobustness,
    /// MaxPr: maximize the chance that cleaning surfaces a
    /// counterargument — the bias dropping by more than `tau`.
    FindCounter {
        /// Surprise threshold `τ ≥ 0`.
        tau: f64,
    },
}

#[allow(deprecated)]
impl From<Objective> for ObjectiveSpec {
    fn from(o: Objective) -> Self {
        match o {
            Objective::AscertainFairness => ObjectiveSpec::ascertain(Measure::Bias),
            Objective::AscertainUniqueness => ObjectiveSpec::ascertain(Measure::Dup),
            Objective::AscertainRobustness => ObjectiveSpec::ascertain(Measure::Frag),
            Objective::FindCounter { tau } => ObjectiveSpec::find_counter(tau),
        }
    }
}

/// Legacy recommendation shape, superseded by [`Plan`].
#[deprecated(since = "0.2.0", note = "use Plan (recommend now returns it directly)")]
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The objects to clean.
    pub selection: Selection,
    /// Objective value with no cleaning.
    pub before: f64,
    /// Predicted objective value after cleaning the selection.
    pub after: f64,
    /// Which algorithm produced the selection.
    pub algorithm: String,
}

#[allow(deprecated)]
impl From<Plan> for Recommendation {
    fn from(p: Plan) -> Self {
        Self {
            selection: p.selection,
            before: p.before,
            after: p.after,
            algorithm: p.strategy,
        }
    }
}

/// A fact-checking session: uncertain data + the claim under scrutiny +
/// the solver registry serving it.
#[derive(Clone)]
pub struct CleaningSession {
    data: DataModel,
    claims: ClaimSet,
    theta: f64,
    registry: Arc<SolverRegistry>,
    discretize_support: usize,
    parallelism: Parallelism,
    cache_store: Option<Arc<CacheStore>>,
    /// Memoized per-measure [`CacheKey`]s (indexed Bias/Dup/Frag);
    /// each is computed once per data version. Clones share the memo —
    /// they share the data it fingerprints. Data-updating operations
    /// ([`CleaningSession::after_cleaning`] /
    /// [`CleaningSession::with_updated_values`]) replace this memo in
    /// the returned session: the cleaned instance must be
    /// re-fingerprinted.
    cache_keys: Arc<[std::sync::OnceLock<CacheKey>; 3]>,
    /// Memoized per-measure query digests (the non-instance half of a
    /// [`CacheKey`]: measure, θ, claim family, discretization width).
    /// All of that is immutable for the session's lifetime, so — unlike
    /// `cache_keys` — this memo is *carried across* data updates:
    /// cleaning a value re-fingerprints only the touched instance,
    /// never re-hashes the claims.
    query_digests: Arc<[std::sync::OnceLock<u64>; 3]>,
}

impl std::fmt::Debug for CleaningSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleaningSession")
            .field("data", &self.data)
            .field("theta", &self.theta)
            .field("strategies", &self.registry.names().len())
            .field("parallelism", &self.parallelism)
            .field("cache_store", &self.cache_store.is_some())
            .finish()
    }
}

impl CleaningSession {
    /// Starts a discrete session with the default registry; the claim's
    /// reference value `θ` is its result on the current data. (The
    /// builder form, [`CleaningSession::builder`], also accepts
    /// Gaussian instances, a custom registry, and a θ override.)
    pub fn new(instance: Instance, claims: ClaimSet) -> Self {
        SessionBuilder::new()
            .discrete(instance)
            .claims(claims)
            .build()
            .expect("data and claims are set")
    }

    /// A fresh [`SessionBuilder`].
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    pub(crate) fn from_parts(
        data: DataModel,
        claims: ClaimSet,
        theta: f64,
        registry: Arc<SolverRegistry>,
        discretize_support: usize,
        parallelism: Parallelism,
        cache_store: Option<Arc<CacheStore>>,
    ) -> Self {
        Self {
            data,
            claims,
            theta,
            registry,
            discretize_support,
            parallelism,
            cache_store,
            cache_keys: Arc::new(Default::default()),
            query_digests: Arc::new(Default::default()),
        }
    }

    /// The underlying data model.
    pub fn data(&self) -> &DataModel {
        &self.data
    }

    /// The underlying discrete instance.
    ///
    /// # Panics
    /// For Gaussian sessions; use [`CleaningSession::data`] when the
    /// error model is not statically known.
    pub fn instance(&self) -> &Instance {
        match &self.data {
            DataModel::Discrete(i) => i,
            DataModel::Gaussian(_) => {
                panic!("instance(): session uses the Gaussian error model; use data()")
            }
        }
    }

    /// The claim family under check.
    pub fn claims(&self) -> &ClaimSet {
        &self.claims
    }

    /// The solver registry serving this session.
    pub fn registry(&self) -> &SolverRegistry {
        &self.registry
    }

    /// The original claim's reference value (`θ`).
    pub fn original_value(&self) -> f64 {
        self.theta
    }

    /// The support width a Gaussian session discretizes onto for the
    /// non-affine measures (§4.2). Part of a stream's full definition:
    /// a replica must adopt the same width to derive the same cache
    /// fingerprints.
    pub fn discretize_support(&self) -> usize {
        self.discretize_support
    }

    /// Claim-quality measures `(bias, dup, frag)` evaluated on the
    /// current data.
    pub fn current_quality(&self) -> (f64, f64, f64) {
        let u = self.data.current();
        (
            self.claims.bias(u, self.theta),
            self.claims.dup(u, self.theta),
            self.claims.frag(u, self.theta),
        )
    }

    /// Lowers an [`ObjectiveSpec`] onto a concrete [`Problem`]:
    /// measure → query (discrete) or weights (Gaussian), goal → goal.
    /// Gaussian data with a non-affine measure (`dup`/`frag`) is
    /// discretized per §4.2 so the scoped engines apply.
    pub fn build_problem(&self, spec: &ObjectiveSpec) -> Result<Problem> {
        let goal = spec.goal;
        match (&self.data, spec.measure) {
            (DataModel::Discrete(instance), measure) => {
                self.discrete_problem(instance.clone(), measure, goal)
            }
            (DataModel::Gaussian(g), Measure::Bias) => {
                let q = BiasQuery::new(self.claims.clone(), self.theta);
                let (weights, _) = q
                    .as_affine(g.len())
                    .expect("bias is affine for linear claims");
                match goal {
                    Goal::MinVar => Problem::gaussian_min_var(g.clone(), weights),
                    Goal::MaxPr { tau } => Problem::gaussian_max_pr(g.clone(), weights, tau),
                    _ => Err(unknown_goal(goal)),
                }
            }
            (DataModel::Gaussian(g), measure) => {
                // dup/frag need the discrete engines; discretize the
                // normal marginals (§4.2: "6 and 4 discrete values").
                let discrete = g.discretize(self.discretize_support)?;
                self.discrete_problem(discrete, measure, goal)
            }
        }
    }

    fn discrete_problem(
        &self,
        instance: Instance,
        measure: Measure,
        goal: Goal,
    ) -> Result<Problem> {
        let query: SharedQuery = match measure {
            Measure::Bias => Arc::new(BiasQuery::new(self.claims.clone(), self.theta)),
            Measure::Dup => Arc::new(DupQuery::new(self.claims.clone(), self.theta)),
            Measure::Frag => Arc::new(FragQuery::new(self.claims.clone(), self.theta)),
        };
        match goal {
            Goal::MinVar => Problem::discrete_min_var(instance, query),
            Goal::MaxPr { tau } => Problem::discrete_max_pr(instance, query, tau),
            _ => Err(unknown_goal(goal)),
        }
    }

    /// The executor options this session solves batches and sweeps
    /// with (builder-configured parallelism + optional engine store).
    fn exec_options(&self) -> ExecOptions {
        let mut opts = ExecOptions::new(self.parallelism);
        if let Some(store) = &self.cache_store {
            opts = opts.with_store(Arc::clone(store));
        }
        opts
    }

    /// The persistence identity of a lowered problem: the instance
    /// fingerprint paired with a digest of everything the engines
    /// depend on besides it — measure, θ, the claim family, and the
    /// discretization width (for Gaussian data lowered onto discrete
    /// engines). Goal and budget are deliberately excluded: scoped
    /// tables and modular benefits are valid for every goal. Memoized
    /// per measure and per data version, with the two halves memoized
    /// independently: after a cleaning step only the instance half is
    /// recomputed ([`ClaimStream`](crate::serve::ClaimStream) relies on
    /// this to keep incremental updates cheap).
    pub(crate) fn cache_key(&self, problem: &Problem, measure: Measure) -> CacheKey {
        let index = Self::measure_index(measure);
        *self.cache_keys[index].get_or_init(|| {
            let query = *self.query_digests[index].get_or_init(|| self.query_digest(measure));
            CacheKey::new(problem.instance_fingerprint(), query)
        })
    }

    fn measure_index(measure: Measure) -> usize {
        match measure {
            Measure::Bias => 0,
            Measure::Dup => 1,
            Measure::Frag => 2,
        }
    }

    /// The distinct instance fingerprints under which this session's
    /// data may have [`CacheStore`] entries — i.e. the instance halves
    /// of the cache keys actually derived so far. Data-updating
    /// operations invalidate exactly these (see
    /// [`ClaimStream::mark_cleaned`](crate::serve::ClaimStream::mark_cleaned)).
    pub(crate) fn active_instance_fingerprints(&self) -> Vec<u64> {
        let mut fps: Vec<u64> = self
            .cache_keys
            .iter()
            .filter_map(|slot| slot.get().map(|key| key.instance))
            .collect();
        fps.sort_unstable();
        fps.dedup();
        fps
    }

    /// Derives (and memoizes) the cache keys for **all three**
    /// measures, then returns the full fingerprint set. Unlike
    /// [`CleaningSession::active_instance_fingerprints`] — which only
    /// reports keys derived by earlier solves — this covers every
    /// store entry the session's data could own, which is what a
    /// snapshot-slice export or adopt needs to cut/validate a complete
    /// per-stream slice. Discrete sessions derive without lowering;
    /// Gaussian sessions lower one problem per measure (bias
    /// fingerprints the Gaussian instance, dup/frag a derived
    /// discretization).
    pub(crate) fn all_instance_fingerprints(&self) -> Vec<u64> {
        for (index, measure) in [Measure::Bias, Measure::Dup, Measure::Frag]
            .into_iter()
            .enumerate()
        {
            if self.prederive_cache_key(index).is_none() {
                if let Ok(problem) = self.build_problem(&ObjectiveSpec::ascertain(measure)) {
                    let _ = self.cache_key(&problem, measure);
                }
            }
        }
        self.active_instance_fingerprints()
    }

    /// The measure-indexed cache keys actually derived so far — the
    /// candidate entries for a [`CacheStore::rekey`] carry after a
    /// data update whose touched objects sit outside every claim
    /// scope (see [`ClaimStream::mark_cleaned`](crate::serve::ClaimStream::mark_cleaned)).
    pub(crate) fn derived_cache_keys(&self) -> Vec<(usize, CacheKey)> {
        self.cache_keys
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| slot.get().map(|&key| (index, key)))
            .collect()
    }

    /// Derives (and memoizes) the cache key for measure index `index`
    /// directly from this session's discrete instance, without
    /// lowering a [`Problem`]. Matches [`CleaningSession::cache_key`]
    /// exactly: discrete problems clone the session instance, so the
    /// fingerprint of the session data *is* the lowered problem's
    /// instance fingerprint. Returns `None` for Gaussian sessions
    /// (bias problems fingerprint the Gaussian instance there, and
    /// dup/frag fingerprint a derived discretization).
    pub(crate) fn prederive_cache_key(&self, index: usize) -> Option<CacheKey> {
        let DataModel::Discrete(instance) = &self.data else {
            return None;
        };
        let measure = [Measure::Bias, Measure::Dup, Measure::Frag][index];
        Some(*self.cache_keys[index].get_or_init(|| {
            let query = *self.query_digests[index].get_or_init(|| self.query_digest(measure));
            CacheKey::new(
                fc_core::planner::cache::fingerprint_instance(instance),
                query,
            )
        }))
    }

    /// The non-instance half of a [`CacheKey`] (see
    /// [`CleaningSession::cache_key`]).
    fn query_digest(&self, measure: Measure) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(measure.name());
        h.write_f64(self.theta);
        h.write_usize(self.discretize_support);
        fn claim(h: &mut Fnv1a, c: &fc_claims::LinearClaim) {
            h.write_usize(c.terms().len());
            for &(obj, w) in c.terms() {
                h.write_usize(obj);
                h.write_f64(w);
            }
            h.write_f64(c.bias_term());
        }
        claim(&mut h, self.claims.original());
        h.write_usize(self.claims.len());
        for p in self.claims.perturbations() {
            claim(&mut h, p);
        }
        h.write_f64s(self.claims.sensibilities());
        h.write_str(match self.claims.direction() {
            fc_claims::Direction::HigherIsStronger => "higher",
            fc_claims::Direction::LowerIsStronger => "lower",
        });
        h.finish()
    }

    /// Recommends what to clean under `budget` for one objective.
    pub fn recommend(&self, spec: impl Into<ObjectiveSpec>, budget: Budget) -> Result<Plan> {
        let spec = spec.into();
        let problem = self.build_problem(&spec)?;
        let cache = match &self.cache_store {
            Some(store) => {
                EngineCache::with_store(Arc::clone(store), self.cache_key(&problem, spec.measure))
            }
            None => EngineCache::new(),
        };
        self.registry
            .solve_with_cache(spec.strategy.key(), &problem, budget, &cache)
    }

    /// Recommends for a batch of objectives at one budget — one request
    /// per measure/goal the fact-checker cares about. Specs sharing a
    /// measure and goal are lowered to one problem and share its engine
    /// cache (so strategy A/B comparisons pay the scoped-EV prefix work
    /// once); distinct problems are sharded across the session's worker
    /// pool and the plans come back in spec order.
    pub fn recommend_many(&self, specs: &[ObjectiveSpec], budget: Budget) -> Result<Vec<Plan>> {
        let mut keys: Vec<(Measure, Goal)> = Vec::new();
        let mut problems: Vec<Problem> = Vec::new();
        let mut index = Vec::with_capacity(specs.len());
        for spec in specs {
            match keys
                .iter()
                .position(|&(m, g)| m == spec.measure && g == spec.goal)
            {
                Some(i) => index.push(i),
                None => {
                    keys.push((spec.measure, spec.goal));
                    problems.push(self.build_problem(spec)?);
                    index.push(problems.len() - 1);
                }
            }
        }
        let cache_keys: Vec<Option<CacheKey>> = problems
            .iter()
            .zip(&keys)
            .map(|(p, &(measure, _))| {
                self.cache_store
                    .as_ref()
                    .map(|_| self.cache_key(p, measure))
            })
            .collect();
        let jobs: Vec<BatchJob<'_>> = specs
            .iter()
            .zip(index)
            .map(|(spec, i)| BatchJob {
                strategy: spec.strategy.key(),
                problem: &problems[i],
                budget,
                key: cache_keys[i],
            })
            .collect();
        self.registry.solve_batch(&jobs, &self.exec_options())
    }

    /// Recommends for one objective across a budget sweep, sharing the
    /// engine prefix work (scoped-EV tables, modular benefits) across
    /// all points and sharding the budget points across the session's
    /// worker pool.
    pub fn recommend_sweep(&self, spec: &ObjectiveSpec, budgets: &[Budget]) -> Result<Vec<Plan>> {
        let problem = self.build_problem(spec)?;
        let key = self
            .cache_store
            .as_ref()
            .map(|_| self.cache_key(&problem, spec.measure));
        self.registry.sweep_with(
            spec.strategy.key(),
            &problem,
            budgets,
            &self.exec_options(),
            key,
        )
    }

    /// Applies a cleaning outcome: pins the selected objects at their
    /// revealed values (`revealed[k]` corresponds to
    /// `selection.objects()[k]`) and returns the updated session.
    ///
    /// Errors with [`CoreError::LengthMismatch`] when the revealed
    /// values do not line up with the selection — a serving system must
    /// not panic on caller input.
    pub fn after_cleaning(&self, selection: &Selection, revealed: &[f64]) -> Result<Self> {
        if revealed.len() != selection.len() {
            return Err(CoreError::LengthMismatch {
                what: "revealed values (one per cleaned object)",
                expected: selection.len(),
                got: revealed.len(),
            });
        }
        let instance = match &self.data {
            DataModel::Discrete(i) => i,
            DataModel::Gaussian(_) => {
                return Err(CoreError::StrategyUnsupported {
                    strategy: "after_cleaning".into(),
                    reason: "pinning revealed values requires the discrete error model; \
                             discretize the Gaussian instance first"
                        .into(),
                })
            }
        };
        let mut dists = instance.joint().dists().to_vec();
        let mut current = instance.current().to_vec();
        for (&obj, &v) in selection.objects().iter().zip(revealed) {
            if obj >= dists.len() {
                return Err(CoreError::BadObject {
                    object: obj,
                    len: dists.len(),
                });
            }
            dists[obj] = fc_uncertain::DiscreteDist::point(v);
            current[obj] = v;
        }
        let instance = Instance::new(dists, current, instance.costs().to_vec())?;
        Ok(self.with_data(DataModel::Discrete(instance)))
    }

    /// Replaces the marginal distribution and current value of selected
    /// objects — the incremental-update primitive for long-lived claim
    /// streams: new evidence narrows (or shifts) an object's
    /// uncertainty without pinning it to a point the way
    /// [`CleaningSession::after_cleaning`] does. Returns the updated
    /// session; like `after_cleaning`, the original is untouched.
    ///
    /// Errors with [`CoreError::BadObject`] on an out-of-range index
    /// and refuses Gaussian sessions (same contract as
    /// `after_cleaning`).
    pub fn with_updated_values(
        &self,
        updates: &[(usize, fc_uncertain::DiscreteDist, f64)],
    ) -> Result<Self> {
        let instance = match &self.data {
            DataModel::Discrete(i) => i,
            DataModel::Gaussian(_) => {
                return Err(CoreError::StrategyUnsupported {
                    strategy: "with_updated_values".into(),
                    reason: "incremental value updates require the discrete error model; \
                             discretize the Gaussian instance first"
                        .into(),
                })
            }
        };
        let mut dists = instance.joint().dists().to_vec();
        let mut current = instance.current().to_vec();
        for (obj, dist, value) in updates {
            if *obj >= dists.len() {
                return Err(CoreError::BadObject {
                    object: *obj,
                    len: dists.len(),
                });
            }
            dists[*obj] = dist.clone();
            current[*obj] = *value;
        }
        let instance = Instance::new(dists, current, instance.costs().to_vec())?;
        Ok(self.with_data(DataModel::Discrete(instance)))
    }

    /// A session over `data` sharing everything else with `self`. The
    /// updated data has a new fingerprint, so sharing the store stays
    /// correct — entries never collide. The cache-key memo is NOT
    /// shared for the same reason (it caches keys derived from the old
    /// instance's fingerprint), but the query-digest memo IS: claims,
    /// θ, and the discretization width are untouched, so only the
    /// instance gets re-fingerprinted on the next request.
    fn with_data(&self, data: DataModel) -> Self {
        Self {
            data,
            claims: self.claims.clone(),
            theta: self.theta,
            registry: Arc::clone(&self.registry),
            discretize_support: self.discretize_support,
            parallelism: self.parallelism,
            cache_store: self.cache_store.clone(),
            cache_keys: Arc::new(Default::default()),
            query_digests: Arc::clone(&self.query_digests),
        }
    }

    /// The strongest counterargument visible on the *current* data, if
    /// any perturbation already weakens the claim.
    pub fn visible_counter(&self) -> Option<(usize, f64)> {
        self.claims
            .strongest_counter(self.data.current(), self.theta)
    }

    /// Opens a long-lived [`ClaimStream`](crate::serve::ClaimStream)
    /// over this session, served by `service` and accounted to the
    /// default tenant.
    pub fn into_stream(
        self,
        service: fc_core::planner::service::PlannerService,
    ) -> crate::serve::ClaimStream {
        crate::serve::ClaimStream::open(self, service)
    }

    /// [`CleaningSession::into_stream`], with every submission
    /// quota-accounted to `tenant` (see
    /// [`PlannerService::set_quota`](fc_core::PlannerService::set_quota)).
    pub fn into_stream_as(
        self,
        service: fc_core::planner::service::PlannerService,
        tenant: impl Into<fc_core::TenantId>,
    ) -> crate::serve::ClaimStream {
        crate::serve::ClaimStream::open(self, service).with_tenant(tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_claims::{Direction, LinearClaim};
    use fc_uncertain::DiscreteDist;

    fn session() -> CleaningSession {
        // Example 2-style: 5 years of crime counts, yearly-increase claim.
        let dists = vec![
            DiscreteDist::uniform_over(&[8_990.0, 9_010.0, 9_030.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_235.0, 9_275.0, 9_315.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_280.0, 9_300.0, 9_320.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_105.0, 9_125.0, 9_145.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_410.0, 9_430.0, 9_450.0]).unwrap(),
        ];
        let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0];
        let instance = Instance::new(dists, current, vec![1; 5]).unwrap();
        CleaningSession::new(instance, example_claims())
    }

    fn example_claims() -> ClaimSet {
        ClaimSet::new(
            LinearClaim::window_comparison(3, 4, 1).unwrap(),
            vec![
                LinearClaim::window_comparison(2, 3, 1).unwrap(),
                LinearClaim::window_comparison(1, 2, 1).unwrap(),
                LinearClaim::window_comparison(0, 1, 1).unwrap(),
            ],
            vec![1.0, 1.0, 1.0],
            Direction::HigherIsStronger,
        )
        .unwrap()
    }

    #[test]
    fn quality_on_current_data() {
        let s = session();
        assert_eq!(s.original_value(), 305.0);
        let (_bias, dup, _frag) = s.current_quality();
        assert_eq!(dup, 0.0, "no perturbation matches +305 on current data");
    }

    #[test]
    fn recommendations_respect_budget_and_reduce_ev() {
        let s = session();
        for measure in [Measure::Bias, Measure::Dup, Measure::Frag] {
            let plan = s
                .recommend(ObjectiveSpec::ascertain(measure), Budget::absolute(2))
                .unwrap();
            assert!(plan.selection.cost() <= 2, "{measure:?}");
            assert!(plan.after <= plan.before + 1e-12, "{measure:?}");
            assert!(
                plan.strategy.starts_with("auto:"),
                "{measure:?}: auto-routing reported ({})",
                plan.strategy
            );
        }
    }

    #[test]
    fn counter_recommendation_probability() {
        let s = session();
        let plan = s
            .recommend(ObjectiveSpec::find_counter(10.0), Budget::absolute(2))
            .unwrap();
        assert!(plan.after >= plan.before);
        assert!(plan.after <= 1.0);
        assert_eq!(plan.strategy, "auto:greedy(convolution)");
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_objective_enum_still_routes() {
        let s = session();
        let plan = s
            .recommend(Objective::AscertainUniqueness, Budget::absolute(2))
            .unwrap();
        assert!(plan.selection.cost() <= 2);
        let legacy: Recommendation = plan.into();
        assert!(legacy.after <= legacy.before + 1e-12);
        assert!(!legacy.algorithm.is_empty());
    }

    #[test]
    fn strategy_override_is_honored() {
        let s = session();
        let plan = s
            .recommend(
                ObjectiveSpec::ascertain(Measure::Dup).with_strategy("best"),
                Budget::absolute(2),
            )
            .unwrap();
        assert_eq!(plan.strategy, "best");
        let err = s
            .recommend(
                ObjectiveSpec::ascertain(Measure::Dup).with_strategy("nope"),
                Budget::absolute(2),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownStrategy { .. }));
    }

    #[test]
    fn after_cleaning_pins_values() {
        let s = session();
        let plan = s
            .recommend(ObjectiveSpec::ascertain(Measure::Dup), Budget::absolute(2))
            .unwrap();
        let revealed: Vec<f64> = plan
            .selection
            .objects()
            .iter()
            .map(|&i| s.instance().dist(i).max_value())
            .collect();
        let s2 = s.after_cleaning(&plan.selection, &revealed).unwrap();
        for (&obj, &v) in plan.selection.objects().iter().zip(&revealed) {
            assert!(s2.instance().dist(obj).is_certain());
            assert_eq!(s2.instance().current()[obj], v);
        }
        // θ stays anchored at the original claim's value on the original
        // current data.
        assert_eq!(s2.original_value(), s.original_value());
    }

    #[test]
    fn after_cleaning_length_mismatch_is_typed() {
        let s = session();
        let plan = s
            .recommend(ObjectiveSpec::ascertain(Measure::Dup), Budget::absolute(2))
            .unwrap();
        let err = s.after_cleaning(&plan.selection, &[]).unwrap_err();
        assert!(
            matches!(err, CoreError::LengthMismatch { expected, got, .. }
                if expected == plan.selection.len() && got == 0),
            "typed error instead of a panic"
        );
    }

    #[test]
    fn sweep_shares_before_and_is_monotone() {
        let s = session();
        let budgets: Vec<Budget> = (0..=5).map(Budget::absolute).collect();
        let plans = s
            .recommend_sweep(&ObjectiveSpec::ascertain(Measure::Dup), &budgets)
            .unwrap();
        for w in plans.windows(2) {
            assert!(w[1].after <= w[0].after + 1e-9);
        }
    }
}
