//! High-level fact-checker workflow.
//!
//! [`CleaningSession`] wraps a discrete [`Instance`] and a [`ClaimSet`]
//! and answers the practitioner's question directly: *given my budget
//! and goal, which values should I clean?* It routes to the right
//! algorithm automatically (modular knapsack fast path for fairness,
//! scoped-engine greedy for uniqueness/robustness, convolution-driven
//! greedy for counter-hunting) and reports the objective before and
//! after.

use fc_claims::{BiasQuery, ClaimSet, DupQuery, FragQuery};
use fc_core::algo::{greedy_max_pr_discrete, greedy_min_var, knapsack_optimum_min_var};
use fc_core::ev::scoped::ScopedEv;
use fc_core::maxpr::surprise_prob_convolution;
use fc_core::{Budget, Instance, Result, Selection};

/// What the fact-checker wants from cleaning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// MinVar on the fairness measure (`bias`).
    AscertainFairness,
    /// MinVar on the uniqueness measure (`dup`).
    AscertainUniqueness,
    /// MinVar on the robustness measure (`frag`).
    AscertainRobustness,
    /// MaxPr: maximize the chance that cleaning surfaces a
    /// counterargument — the bias dropping by more than `tau`.
    FindCounter {
        /// Surprise threshold `τ ≥ 0`.
        tau: f64,
    },
}

/// A cleaning recommendation with its predicted effect.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The objects to clean.
    pub selection: Selection,
    /// Objective value with no cleaning (expected variance for the
    /// `Ascertain*` goals; surprise probability for `FindCounter`).
    pub before: f64,
    /// Predicted objective value after cleaning the selection.
    pub after: f64,
    /// Which algorithm produced the selection.
    pub algorithm: &'static str,
}

/// A fact-checking session: uncertain data + the claim under scrutiny.
#[derive(Debug, Clone)]
pub struct CleaningSession {
    instance: Instance,
    claims: ClaimSet,
    theta: f64,
}

impl CleaningSession {
    /// Starts a session; the claim's reference value `θ` is its result
    /// on the current (uncleaned) data.
    pub fn new(instance: Instance, claims: ClaimSet) -> Self {
        let theta = claims.original_value(instance.current());
        Self {
            instance,
            claims,
            theta,
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The claim family under check.
    pub fn claims(&self) -> &ClaimSet {
        &self.claims
    }

    /// The original claim's value on current data (`θ`).
    pub fn original_value(&self) -> f64 {
        self.theta
    }

    /// Claim-quality measures evaluated on the current data.
    pub fn current_quality(&self) -> (f64, f64, f64) {
        let u = self.instance.current();
        (
            self.claims.bias(u, self.theta),
            self.claims.dup(u, self.theta),
            self.claims.frag(u, self.theta),
        )
    }

    /// Recommends what to clean under `budget` for the given objective.
    pub fn recommend(&self, objective: Objective, budget: Budget) -> Result<Recommendation> {
        match objective {
            Objective::AscertainFairness => {
                let q = BiasQuery::new(self.claims.clone(), self.theta);
                let selection = knapsack_optimum_min_var(&self.instance, &q, budget)?;
                let eng = ScopedEv::new(&self.instance, &q);
                Ok(Recommendation {
                    before: eng.ev_of(&[]),
                    after: eng.ev_of(selection.objects()),
                    selection,
                    algorithm: "Optimum (knapsack DP, Lemma 3.2)",
                })
            }
            Objective::AscertainUniqueness => {
                let q = DupQuery::new(self.claims.clone(), self.theta);
                let selection = greedy_min_var(&self.instance, &q, budget);
                let eng = ScopedEv::new(&self.instance, &q);
                Ok(Recommendation {
                    before: eng.ev_of(&[]),
                    after: eng.ev_of(selection.objects()),
                    selection,
                    algorithm: "GreedyMinVar (scoped Theorem 3.8 engine)",
                })
            }
            Objective::AscertainRobustness => {
                let q = FragQuery::new(self.claims.clone(), self.theta);
                let selection = greedy_min_var(&self.instance, &q, budget);
                let eng = ScopedEv::new(&self.instance, &q);
                Ok(Recommendation {
                    before: eng.ev_of(&[]),
                    after: eng.ev_of(selection.objects()),
                    selection,
                    algorithm: "GreedyMinVar (scoped Theorem 3.8 engine)",
                })
            }
            Objective::FindCounter { tau } => {
                let q = BiasQuery::new(self.claims.clone(), self.theta);
                let selection =
                    greedy_max_pr_discrete(&self.instance, &q, budget, tau, None)?;
                let before = 0.0; // empty cleaning can never surprise (τ ≥ 0)
                let after =
                    surprise_prob_convolution(&self.instance, &q, selection.objects(), tau, None)?;
                Ok(Recommendation {
                    selection,
                    before,
                    after,
                    algorithm: "GreedyMaxPr (binned convolution)",
                })
            }
        }
    }

    /// Applies a cleaning outcome: pins the selected objects at their
    /// revealed values (`revealed[k]` corresponds to
    /// `selection.objects()[k]`) and returns the updated session.
    pub fn after_cleaning(&self, selection: &Selection, revealed: &[f64]) -> Result<Self> {
        assert_eq!(
            revealed.len(),
            selection.len(),
            "one revealed value per cleaned object"
        );
        let mut dists = self.instance.joint().dists().to_vec();
        let mut current = self.instance.current().to_vec();
        for (&obj, &v) in selection.objects().iter().zip(revealed) {
            dists[obj] = fc_uncertain::DiscreteDist::point(v);
            current[obj] = v;
        }
        let instance = Instance::new(dists, current, self.instance.costs().to_vec())?;
        Ok(Self {
            instance,
            claims: self.claims.clone(),
            theta: self.theta,
        })
    }

    /// The strongest counterargument visible on the *current* data, if
    /// any perturbation already weakens the claim.
    pub fn visible_counter(&self) -> Option<(usize, f64)> {
        self.claims
            .strongest_counter(self.instance.current(), self.theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_claims::{Direction, LinearClaim};
    use fc_uncertain::DiscreteDist;

    fn session() -> CleaningSession {
        // Example 2-style: 5 years of crime counts, yearly-increase claim.
        let dists = vec![
            DiscreteDist::uniform_over(&[8_990.0, 9_010.0, 9_030.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_235.0, 9_275.0, 9_315.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_280.0, 9_300.0, 9_320.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_105.0, 9_125.0, 9_145.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_410.0, 9_430.0, 9_450.0]).unwrap(),
        ];
        let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0];
        let instance = Instance::new(dists, current, vec![1; 5]).unwrap();
        let claims = ClaimSet::new(
            LinearClaim::window_comparison(3, 4, 1).unwrap(),
            vec![
                LinearClaim::window_comparison(2, 3, 1).unwrap(),
                LinearClaim::window_comparison(1, 2, 1).unwrap(),
                LinearClaim::window_comparison(0, 1, 1).unwrap(),
            ],
            vec![1.0, 1.0, 1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        CleaningSession::new(instance, claims)
    }

    #[test]
    fn quality_on_current_data() {
        let s = session();
        assert_eq!(s.original_value(), 305.0);
        let (_bias, dup, _frag) = s.current_quality();
        assert_eq!(dup, 0.0, "no perturbation matches +305 on current data");
    }

    #[test]
    fn recommendations_respect_budget_and_reduce_ev() {
        let s = session();
        for obj in [
            Objective::AscertainFairness,
            Objective::AscertainUniqueness,
            Objective::AscertainRobustness,
        ] {
            let r = s.recommend(obj, Budget::absolute(2)).unwrap();
            assert!(r.selection.cost() <= 2, "{obj:?}");
            assert!(r.after <= r.before + 1e-12, "{obj:?}");
        }
    }

    #[test]
    fn counter_recommendation_probability() {
        let s = session();
        let r = s
            .recommend(Objective::FindCounter { tau: 10.0 }, Budget::absolute(2))
            .unwrap();
        assert!(r.after >= r.before);
        assert!(r.after <= 1.0);
    }

    #[test]
    fn after_cleaning_pins_values() {
        let s = session();
        let rec = s
            .recommend(Objective::AscertainUniqueness, Budget::absolute(2))
            .unwrap();
        let revealed: Vec<f64> = rec
            .selection
            .objects()
            .iter()
            .map(|&i| s.instance().dist(i).max_value())
            .collect();
        let s2 = s.after_cleaning(&rec.selection, &revealed).unwrap();
        for (&obj, &v) in rec.selection.objects().iter().zip(&revealed) {
            assert!(s2.instance().dist(obj).is_certain());
            assert_eq!(s2.instance().current()[obj], v);
        }
        // θ stays anchored at the original claim's value on the original
        // current data.
        assert_eq!(s2.original_value(), s.original_value());
    }
}
