//! Objective specifications for the planner-backed session API.
//!
//! An [`ObjectiveSpec`] is the serving-layer request shape: *which*
//! claim-quality measure to target ([`Measure`]), *what* to do with it
//! (a [`Goal`] — `MinVar` to ascertain, `MaxPr` to counter), and *how*
//! ([`Strategy`] — the paper's automatic routing, or any named strategy
//! from the [`fc_core::SolverRegistry`]). The four hard-wired arms of
//! the legacy [`Objective`](crate::session::Objective) enum are all
//! expressible (see its `From` impl), plus every combination they could
//! not: Gaussian instances, strategy overrides, MaxPr on any measure
//! with an affine form.

pub use fc_core::planner::Goal;

/// The claim-quality measure under optimization (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Measure {
    /// Fairness — sensibility-weighted mean relative strength
    /// (affine; modular fast paths apply).
    Bias,
    /// Uniqueness — count of perturbations at least as strong.
    Dup,
    /// Robustness — sensibility-weighted squared weakenings.
    Frag,
}

impl Measure {
    /// The measure's §2.2 name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Bias => "bias",
            Self::Dup => "dup",
            Self::Frag => "frag",
        }
    }
}

/// How to pick the algorithm for a spec.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Strategy {
    /// The paper's routing rules (modular fast path for affine
    /// measures, scoped Theorem 3.8 engine otherwise, convolution for
    /// discrete MaxPr, closed form for Gaussian MaxPr).
    #[default]
    Auto,
    /// A named strategy resolved through the session's
    /// [`fc_core::SolverRegistry`].
    Named(String),
}

impl Strategy {
    /// The registry key this strategy resolves through.
    pub fn key(&self) -> &str {
        match self {
            Self::Auto => "auto",
            Self::Named(name) => name,
        }
    }
}

/// A complete objective request: measure × goal × strategy.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ObjectiveSpec {
    /// The claim-quality measure to target.
    pub measure: Measure,
    /// MinVar (ascertain) or MaxPr (find a counterargument).
    pub goal: Goal,
    /// Algorithm selection (default: the paper's auto-routing).
    pub strategy: Strategy,
}

impl ObjectiveSpec {
    /// A spec with explicit measure and goal (auto strategy).
    pub fn new(measure: Measure, goal: Goal) -> Self {
        Self {
            measure,
            goal,
            strategy: Strategy::Auto,
        }
    }

    /// Ascertain `measure`: MinVar on it.
    pub fn ascertain(measure: Measure) -> Self {
        Self::new(measure, Goal::MinVar)
    }

    /// Hunt a counterargument: MaxPr on the bias measure with surprise
    /// threshold `tau`.
    pub fn find_counter(tau: f64) -> Self {
        Self::new(Measure::Bias, Goal::MaxPr { tau })
    }

    /// Overrides the strategy with a named registry entry.
    pub fn with_strategy(mut self, name: impl Into<String>) -> Self {
        self.strategy = Strategy::Named(name.into());
        self
    }

    /// Resets the strategy to auto-routing.
    pub fn with_auto_strategy(mut self) -> Self {
        self.strategy = Strategy::Auto;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_compose() {
        let spec = ObjectiveSpec::ascertain(Measure::Dup).with_strategy("best");
        assert_eq!(spec.measure, Measure::Dup);
        assert_eq!(spec.goal, Goal::MinVar);
        assert_eq!(spec.strategy.key(), "best");
        let spec = spec.with_auto_strategy();
        assert_eq!(spec.strategy.key(), "auto");

        let counter = ObjectiveSpec::find_counter(2.5);
        assert_eq!(counter.measure, Measure::Bias);
        assert!(matches!(counter.goal, Goal::MaxPr { tau } if tau == 2.5));
    }
}
