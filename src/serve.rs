//! Long-lived claim streams over the serving layer.
//!
//! A fact-checking session is not one request: a checker streams
//! claims against a dataset *whose values keep getting cleaned* (the
//! paper's interactive loop; see also the assisted fact-checking
//! surveys in `PAPERS.md`). [`ClaimStream`] is that workflow as an
//! object — it holds a dataset open across requests and connects it to
//! a shared [`PlannerService`]:
//!
//! * [`ClaimStream::submit`] / [`ClaimStream::submit_sweep`] hand
//!   requests to the service and return [`RequestHandle`]s
//!   immediately; lowered [`Problem`]s are memoized per
//!   (measure, goal), so a stream of claims over the same measure pays
//!   the lowering once.
//! * [`ClaimStream::mark_cleaned`] applies a cleaning outcome (pin
//!   objects at their revealed values); [`ClaimStream::update_values`]
//!   applies softer evidence (replace an object's marginal and current
//!   value). Both **re-fingerprint only the touched instance** — the
//!   claim-family digests are memoized and carried over — and
//!   **surgically invalidate** exactly the stale
//!   [`CacheStore`](fc_core::CacheStore) entries
//!   ([`CacheStore::invalidate_instance`](fc_core::CacheStore::invalidate_instance))
//!   instead of flushing, so every *other* stream sharing the service
//!   stays warm after each cleaning step.
//!
//! Plans served through a stream are byte-identical to the synchronous
//! [`CleaningSession`] paths ([`Plan::divergence`](fc_core::Plan::divergence)
//! is the shared gate); the stream adds asynchrony, admission control,
//! and cache lifecycle — never different answers.
//!
//! Every stream carries a [`TenantId`] ([`ClaimStream::with_tenant`]):
//! its submissions are quota-accounted by the service, and a submit
//! past the tenant's [`QuotaPolicy`](fc_core::QuotaPolicy) is rejected
//! with a typed [`CoreError::QuotaExceeded`](fc_core::CoreError)
//! before anything is queued. Handles are cancellable (explicitly or
//! by drop) — a plan superseded by a cleaning step should be cancelled
//! rather than awaited, so the workers move on to the post-cleaning
//! submission immediately.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use fc_core::planner::service::{
    PlannerService, RequestHandle, SolveRequest, SweepHandle, SweepRequest, TenantId,
};
use fc_core::{Budget, CacheKey, Plan, Problem, Result, Selection};

use crate::planner::{Goal, Measure, ObjectiveSpec};
use crate::session::CleaningSession;

/// Memo key for lowered problems: measure × goal (τ by bit pattern —
/// the same identity [`CacheKey`] fingerprints use for floats).
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
enum GoalKey {
    MinVar,
    MaxPr(u64),
}

/// `None` for goals this module does not know — `Goal` is
/// non-exhaustive upstream, and an unknown goal must *skip* the memo
/// (falling through to `build_problem`, which rejects it with a typed
/// error) rather than alias another goal's cached problem.
fn goal_key(goal: Goal) -> Option<GoalKey> {
    match goal {
        Goal::MinVar => Some(GoalKey::MinVar),
        Goal::MaxPr { tau } => Some(GoalKey::MaxPr(tau.to_bits())),
        _ => None,
    }
}

/// A claim-stream session: a [`CleaningSession`] held open across
/// requests, served asynchronously by a shared [`PlannerService`], with
/// incremental cache invalidation as the data gets cleaned. See the
/// [module docs](self) for the lifecycle.
pub struct ClaimStream {
    session: CleaningSession,
    service: PlannerService,
    /// The tenant every submission through this stream is
    /// quota-accounted to.
    tenant: TenantId,
    /// Lowered problems memoized per (measure, goal); cleared whenever
    /// the data changes.
    problems: Mutex<HashMap<(Measure, GoalKey), Arc<Problem>>>,
}

impl ClaimStream {
    /// Opens a stream over `session`, served by `service`, accounted
    /// to the default tenant. The session's own
    /// `cache_store`/`parallelism` knobs keep governing its
    /// *synchronous* methods; submissions through the stream use the
    /// service's store and pool.
    pub fn open(session: CleaningSession, service: PlannerService) -> Self {
        Self {
            session,
            service,
            tenant: TenantId::default(),
            problems: Mutex::new(HashMap::new()),
        }
    }

    /// Accounts every submission through this stream to `tenant`
    /// (quota enforced by the service at submit time — see
    /// [`PlannerService::set_quota`]).
    pub fn with_tenant(mut self, tenant: impl Into<TenantId>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// The underlying session (current data version).
    pub fn session(&self) -> &CleaningSession {
        &self.session
    }

    /// The service this stream submits to.
    pub fn service(&self) -> &PlannerService {
        &self.service
    }

    /// The tenant this stream's submissions are accounted to.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// The lowered problem for `spec`, memoized per (measure, goal).
    fn problem_for(&self, spec: &ObjectiveSpec) -> Result<(Arc<Problem>, CacheKey)> {
        let problem = match goal_key(spec.goal) {
            Some(goal) => {
                let memo_key = (spec.measure, goal);
                let mut problems = self.problems.lock().expect("problem memo poisoned");
                match problems.get(&memo_key) {
                    Some(problem) => Arc::clone(problem),
                    None => {
                        let problem = Arc::new(self.session.build_problem(spec)?);
                        problems.insert(memo_key, Arc::clone(&problem));
                        problem
                    }
                }
            }
            // Unknown goal: no memo entry; the session rejects it with
            // a typed error (see `goal_key`).
            None => Arc::new(self.session.build_problem(spec)?),
        };
        let key = self.session.cache_key(&problem, spec.measure);
        Ok((problem, key))
    }

    /// Submits one objective at one budget; returns immediately with a
    /// handle (see [`RequestHandle`]). Specs that fail to *lower* (bad
    /// query scope, unsupported goal) and submits past the stream
    /// tenant's quota ([`fc_core::CoreError::QuotaExceeded`]) are
    /// rejected here as `Err` — before anything is queued — while
    /// solve-time failures (unknown strategy, solver refusal) resolve
    /// through the handle. Dropping the handle (or calling
    /// [`RequestHandle::cancel`]) abandons the request without burning
    /// worker time.
    pub fn submit(
        &self,
        spec: impl Into<ObjectiveSpec>,
        budget: Budget,
    ) -> Result<RequestHandle<Plan>> {
        self.submit_as(self.tenant.clone(), spec, budget)
    }

    /// [`ClaimStream::submit`], accounted to `tenant` instead of the
    /// stream's own. The network front uses this to map a per-request
    /// tenant header onto one shared stream; library callers usually
    /// want [`ClaimStream::with_tenant`] instead.
    pub fn submit_as(
        &self,
        tenant: impl Into<TenantId>,
        spec: impl Into<ObjectiveSpec>,
        budget: Budget,
    ) -> Result<RequestHandle<Plan>> {
        let spec = spec.into();
        let (problem, key) = self.problem_for(&spec)?;
        self.service.submit(
            SolveRequest::new(spec.strategy.key(), problem, budget)
                .with_key(key)
                .with_tenant(tenant),
        )
    }

    /// Submits one objective across a budget sweep (decomposed by the
    /// service into per-point tasks, so interactive claims interleave —
    /// and so cancelling the returned handle stops the sweep after the
    /// point currently being solved). The returned [`SweepHandle`]
    /// streams each plan as its budget point completes
    /// ([`SweepHandle::wait_next_point`], ascending budget order) or
    /// resolves the whole grid at once ([`SweepHandle::wait`]).
    pub fn submit_sweep(&self, spec: &ObjectiveSpec, budgets: &[Budget]) -> Result<SweepHandle> {
        self.submit_sweep_as(self.tenant.clone(), spec, budgets)
    }

    /// [`ClaimStream::submit_sweep`], accounted to `tenant` instead of
    /// the stream's own (see [`ClaimStream::submit_as`]).
    pub fn submit_sweep_as(
        &self,
        tenant: impl Into<TenantId>,
        spec: &ObjectiveSpec,
        budgets: &[Budget],
    ) -> Result<SweepHandle> {
        let (problem, key) = self.problem_for(spec)?;
        self.service.submit_sweep(
            SweepRequest::new(spec.strategy.key(), problem, budgets.to_vec())
                .with_key(key)
                .with_tenant(tenant),
        )
    }

    /// Applies a cleaning outcome — pins `objects[k]` at
    /// `revealed[k]` — and surgically invalidates the service-store
    /// entries of the *previous* data version. Only the touched
    /// instance is re-fingerprinted (the claim-family digests are
    /// memoized); every other instance's entries stay warm. Returns
    /// the number of store entries invalidated.
    ///
    /// **Delta-resolve:** when every cleaned object sits outside every
    /// claim's scope, nothing is invalidated at all — the warm entries
    /// are carried to the new fingerprint intact (scoped tables depend
    /// only on the dists of their scope objects, and modular benefits
    /// are zero off-scope), so the next submission replays the cached
    /// prefix work with zero scoped rebuilds. The return value is `0`
    /// on that path.
    ///
    /// Submissions already in flight keep their pre-cleaning problem
    /// (and produce pre-cleaning plans); submissions after this call
    /// see the cleaned data.
    pub fn mark_cleaned(&mut self, objects: &[usize], revealed: &[f64]) -> Result<usize> {
        let selection = self.selection_of(objects)?;
        let next = self.session.after_cleaning(&selection, revealed)?;
        Ok(self.install(next, objects))
    }

    /// Applies softer evidence: replaces the marginal distribution and
    /// current value of each `(object, dist, value)` triple (cleaning
    /// that narrows uncertainty without eliminating it). Invalidates
    /// (or delta-resolves) like [`ClaimStream::mark_cleaned`]; returns
    /// the number of store entries invalidated.
    pub fn update_values(
        &mut self,
        updates: &[(usize, fc_uncertain::DiscreteDist, f64)],
    ) -> Result<usize> {
        let next = self.session.with_updated_values(updates)?;
        let touched: Vec<usize> = updates.iter().map(|(object, _, _)| *object).collect();
        Ok(self.install(next, &touched))
    }

    /// Swaps in the updated session, dropping the stale problem memo.
    /// Store entries of the previous data version are *rekeyed* to the
    /// new fingerprint when every touched object is provably out of
    /// every claim scope (the cached tables and benefits are
    /// value-identical in that case), and invalidated otherwise.
    /// Returns the number of entries invalidated — `0` on the rekey
    /// path.
    fn install(&mut self, next: CleaningSession, touched: &[usize]) -> usize {
        // The fingerprints that may hold store entries are exactly the
        // ones requests actually derived (memoized on the *old*
        // session).
        let stale = self.session.active_instance_fingerprints();
        // Delta-resolve precondition: scoped tables depend only on the
        // dists of their scope objects, and modular benefits are zero
        // for objects no claim references — so a data update touching
        // only out-of-scope objects leaves every cached engine
        // value-identical under the new fingerprint.
        let scoped = self.session.claims().all_objects();
        let out_of_scope = touched
            .iter()
            .all(|object| scoped.binary_search(object).is_err());
        if out_of_scope {
            let moves: Option<Vec<(CacheKey, CacheKey)>> = self
                .session
                .derived_cache_keys()
                .into_iter()
                .map(|(index, old)| next.prederive_cache_key(index).map(|new| (old, new)))
                .collect();
            if let Some(moves) = moves {
                self.session = next;
                self.problems.lock().expect("problem memo poisoned").clear();
                for (old, new) in moves {
                    self.service.store().rekey(old, new);
                }
                return 0;
            }
        }
        self.session = next;
        self.problems.lock().expect("problem memo poisoned").clear();
        stale
            .into_iter()
            .map(|fp| self.service.store().invalidate_instance(fp))
            .sum()
    }

    /// Builds a validated [`Selection`] over the session's costs.
    fn selection_of(&self, objects: &[usize]) -> Result<Selection> {
        let costs = self.session.data().costs();
        for &object in objects {
            if object >= costs.len() {
                return Err(fc_core::CoreError::BadObject {
                    object,
                    len: costs.len(),
                });
            }
        }
        Ok(Selection::from_objects(objects.to_vec(), costs))
    }
}

impl std::fmt::Debug for ClaimStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClaimStream")
            .field("session", &self.session)
            .field("tenant", &self.tenant)
            .field(
                "lowered_problems",
                &self.problems.lock().expect("problem memo poisoned").len(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_claims::{ClaimSet, Direction, LinearClaim};
    use fc_core::planner::service::ServiceOptions;
    use fc_core::SolverRegistry;
    use fc_uncertain::DiscreteDist;

    fn session() -> CleaningSession {
        let dists = vec![
            DiscreteDist::uniform_over(&[8_990.0, 9_010.0, 9_030.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_235.0, 9_275.0, 9_315.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_280.0, 9_300.0, 9_320.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_105.0, 9_125.0, 9_145.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_410.0, 9_430.0, 9_450.0]).unwrap(),
        ];
        let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0];
        let instance = fc_core::Instance::new(dists, current, vec![1; 5]).unwrap();
        let claims = ClaimSet::new(
            LinearClaim::window_comparison(3, 4, 1).unwrap(),
            vec![
                LinearClaim::window_comparison(2, 3, 1).unwrap(),
                LinearClaim::window_comparison(1, 2, 1).unwrap(),
                LinearClaim::window_comparison(0, 1, 1).unwrap(),
            ],
            vec![1.0, 1.0, 1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        CleaningSession::new(instance, claims)
    }

    fn service() -> PlannerService {
        PlannerService::new(
            Arc::new(SolverRegistry::with_defaults()),
            ServiceOptions::new(),
        )
    }

    #[test]
    fn stream_plans_match_synchronous_session() {
        let s = session();
        let stream = ClaimStream::open(s.clone(), service());
        for measure in [Measure::Bias, Measure::Dup, Measure::Frag] {
            let spec = ObjectiveSpec::ascertain(measure);
            let expected = s.recommend(spec.clone(), Budget::absolute(2)).unwrap();
            let plan = stream
                .submit(spec, Budget::absolute(2))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(plan.divergence(&expected), None, "{measure:?}");
        }
    }

    #[test]
    fn mark_cleaned_invalidates_and_reroutes() {
        let mut stream = ClaimStream::open(session(), service());
        let spec = ObjectiveSpec::ascertain(Measure::Dup);
        let cold = stream
            .submit(spec.clone(), Budget::absolute(2))
            .unwrap()
            .wait()
            .unwrap();
        assert!(stream.service.store().stats().entries > 0);
        let objects = cold.selection.objects().to_vec();
        let revealed: Vec<f64> = objects
            .iter()
            .map(|&i| stream.session().instance().dist(i).max_value())
            .collect();
        let invalidated = stream.mark_cleaned(&objects, &revealed).unwrap();
        assert!(invalidated > 0, "the old fingerprint's entry was dropped");
        // Post-cleaning plan equals a fresh synchronous session's.
        let expected = stream
            .session()
            .recommend(spec.clone(), Budget::absolute(2))
            .unwrap();
        let warm = stream
            .submit(spec, Budget::absolute(2))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(warm.divergence(&expected), None);
        for (&obj, &v) in objects.iter().zip(&revealed) {
            assert!(stream.session().instance().dist(obj).is_certain());
            assert_eq!(stream.session().instance().current()[obj], v);
        }
    }

    #[test]
    fn update_values_narrows_without_pinning() {
        let mut stream = ClaimStream::open(session(), service());
        stream
            .submit(ObjectiveSpec::ascertain(Measure::Dup), Budget::absolute(2))
            .unwrap()
            .wait()
            .unwrap();
        let narrowed = DiscreteDist::uniform_over(&[9_270.0, 9_280.0]).unwrap();
        stream.update_values(&[(1, narrowed, 9_275.0)]).unwrap();
        let d = stream.session().instance().dist(1);
        assert!(!d.is_certain(), "narrowed, not pinned");
        assert_eq!(d.support_size(), 2);
        // Out-of-range objects are typed errors, not panics.
        let bad = DiscreteDist::point(1.0);
        let err = stream.update_values(&[(99, bad, 1.0)]).unwrap_err();
        assert!(matches!(
            err,
            fc_core::CoreError::BadObject { object: 99, .. }
        ));
    }

    #[test]
    fn lowered_problems_are_memoized_until_data_changes() {
        let mut stream = ClaimStream::open(session(), service());
        let spec = ObjectiveSpec::ascertain(Measure::Dup);
        for budget in 1..=2 {
            stream
                .submit(spec.clone(), Budget::absolute(budget))
                .unwrap()
                .wait()
                .unwrap();
        }
        assert_eq!(
            stream.problems.lock().unwrap().len(),
            1,
            "same measure/goal lowers once"
        );
        stream
            .submit(ObjectiveSpec::find_counter(5.0), Budget::absolute(1))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(stream.problems.lock().unwrap().len(), 2);
        stream.mark_cleaned(&[0], &[9_010.0]).unwrap();
        assert_eq!(
            stream.problems.lock().unwrap().len(),
            0,
            "data change drops the memo"
        );
    }

    /// [`session`] plus a sixth object no claim references — the
    /// delta-resolve setting.
    fn session_with_unreferenced_object() -> CleaningSession {
        let dists = vec![
            DiscreteDist::uniform_over(&[8_990.0, 9_010.0, 9_030.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_235.0, 9_275.0, 9_315.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_280.0, 9_300.0, 9_320.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_105.0, 9_125.0, 9_145.0]).unwrap(),
            DiscreteDist::uniform_over(&[9_410.0, 9_430.0, 9_450.0]).unwrap(),
            DiscreteDist::uniform_over(&[100.0, 200.0, 300.0]).unwrap(),
        ];
        let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0, 200.0];
        let instance = fc_core::Instance::new(dists, current, vec![1; 6]).unwrap();
        let claims = ClaimSet::new(
            LinearClaim::window_comparison(3, 4, 1).unwrap(),
            vec![
                LinearClaim::window_comparison(2, 3, 1).unwrap(),
                LinearClaim::window_comparison(1, 2, 1).unwrap(),
                LinearClaim::window_comparison(0, 1, 1).unwrap(),
            ],
            vec![1.0, 1.0, 1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        CleaningSession::new(instance, claims)
    }

    #[test]
    fn out_of_scope_cleaning_rekeys_instead_of_invalidating() {
        let mut stream = ClaimStream::open(session_with_unreferenced_object(), service());
        let spec = ObjectiveSpec::ascertain(Measure::Dup);
        stream
            .submit(spec.clone(), Budget::absolute(2))
            .unwrap()
            .wait()
            .unwrap();
        let cold = stream.service.store().stats();
        assert!(cold.entries > 0 && cold.scoped_builds > 0);
        // Cleaning the unreferenced object changes the fingerprint but
        // not a single cached table value: nothing is invalidated.
        let invalidated = stream.mark_cleaned(&[5], &[250.0]).unwrap();
        assert_eq!(invalidated, 0, "scope-disjoint cleaning rekeys");
        let moved = stream.service.store().stats();
        assert!(moved.rekeys >= 1);
        assert_eq!(moved.invalidations, cold.invalidations);
        assert_eq!(moved.entries, cold.entries, "entries carried, not dropped");
        // The next submission replays the carried entry — zero store
        // misses, zero new scoped builds — and still matches a fresh
        // solve over the cleaned data byte-for-byte.
        let warm = stream
            .submit(spec.clone(), Budget::absolute(2))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(warm.diagnostics.store_misses, 0, "no cold store touch");
        assert_eq!(
            stream.service.store().stats().scoped_builds,
            cold.scoped_builds,
            "zero scoped rebuilds after a scope-disjoint clean"
        );
        let expected = stream
            .session()
            .recommend(spec, Budget::absolute(2))
            .unwrap();
        assert_eq!(warm.divergence(&expected), None);
        assert!(stream.session().instance().dist(5).is_certain());
    }

    #[test]
    fn out_of_scope_update_values_rekeys_too() {
        let mut stream = ClaimStream::open(session_with_unreferenced_object(), service());
        let spec = ObjectiveSpec::ascertain(Measure::Bias);
        stream
            .submit(spec.clone(), Budget::absolute(1))
            .unwrap()
            .wait()
            .unwrap();
        let cold = stream.service.store().stats();
        let narrowed = DiscreteDist::uniform_over(&[180.0, 220.0]).unwrap();
        let invalidated = stream.update_values(&[(5, narrowed, 200.0)]).unwrap();
        assert_eq!(invalidated, 0);
        assert!(stream.service.store().stats().rekeys >= 1);
        let warm = stream
            .submit(spec, Budget::absolute(1))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(warm.diagnostics.store_misses, 0);
        assert_eq!(
            stream.service.store().stats().scoped_builds,
            cold.scoped_builds
        );
        // In-scope updates still take the invalidation path.
        let shifted = DiscreteDist::uniform_over(&[9_270.0, 9_280.0]).unwrap();
        let invalidated = stream.update_values(&[(1, shifted, 9_275.0)]).unwrap();
        assert!(invalidated > 0, "in-scope update invalidates");
    }

    #[test]
    fn bad_cleaning_input_is_a_typed_error() {
        let mut stream = ClaimStream::open(session(), service());
        let err = stream.mark_cleaned(&[99], &[1.0]).unwrap_err();
        assert!(matches!(
            err,
            fc_core::CoreError::BadObject { object: 99, len: 5 }
        ));
        let err = stream.mark_cleaned(&[0, 1], &[1.0]).unwrap_err();
        assert!(matches!(err, fc_core::CoreError::LengthMismatch { .. }));
    }
}
