//! # fact-clean
//!
//! A full Rust reproduction of *"Selecting Data to Clean for Fact
//! Checking: Minimizing Uncertainty vs. Maximizing Surprise"* (Sintos,
//! Agarwal, Yang; VLDB 2019): given a claim over a database with
//! uncertain values and a cleaning budget, decide **which values to
//! clean** so as to either minimize the remaining uncertainty in a
//! claim-quality measure (**MinVar**) or maximize the probability of
//! surfacing a counterargument (**MaxPr**).
//!
//! This crate is the public façade over the substrate crates
//! (`fc-uncertain`, `fc-claims`, `fc-core`, `fc-datasets`). Its
//! serving surface is the **unified planner API**:
//!
//! * [`SessionBuilder`] constructs a
//!   [`CleaningSession`] over either error model — discrete marginals
//!   or Gaussian — with an optional custom
//!   [`SolverRegistry`](fc_core::SolverRegistry);
//! * [`ObjectiveSpec`] describes a request:
//!   measure (`bias`/`dup`/`frag`) × goal (`MinVar`/`MaxPr{τ}`) ×
//!   strategy (`Auto` routing per the paper, or any named registry
//!   strategy such as `"best"`, `"optimum-knapsack"`, `"brute"`);
//! * [`CleaningSession::recommend`],
//!   [`recommend_many`](CleaningSession::recommend_many), and
//!   [`recommend_sweep`](CleaningSession::recommend_sweep) serve one
//!   objective, an objective batch, or a budget sweep (sharing engine
//!   prefix work across the sweep);
//! * results are [`Plan`](fc_core::Plan)s: the selection, objective
//!   before/after, the resolved strategy name, and evaluation
//!   diagnostics;
//! * batches and sweeps are sharded across a worker pool
//!   ([`SessionBuilder::parallelism`](builder::SessionBuilder::parallelism)
//!   with a [`Parallelism`](fc_core::Parallelism) knob — plans stay
//!   byte-identical to sequential execution), and a shared
//!   [`CacheStore`](fc_core::CacheStore)
//!   ([`SessionBuilder::cache_store`](builder::SessionBuilder::cache_store))
//!   persists the scoped-EV prefix work across sessions, keyed on
//!   (instance fingerprint, measure identity).
//!
//! ```
//! use fact_clean::prelude::*;
//!
//! // Five years of crime counts with uncertain true values (Example 2).
//! let current = vec![9010.0, 9275.0, 9300.0, 9125.0, 9430.0];
//! let dists: Vec<DiscreteDist> = current
//!     .iter()
//!     .map(|&u| DiscreteDist::uniform_over(&[u - 40.0, u, u + 40.0]).unwrap())
//!     .collect();
//! let instance = Instance::new(dists, current, vec![1; 5]).unwrap();
//!
//! // "Crimes went up by more than 300 from last year" and its
//! // window perturbations.
//! let claims = ClaimSet::new(
//!     LinearClaim::window_comparison(3, 4, 1).unwrap(),
//!     vec![
//!         LinearClaim::window_comparison(2, 3, 1).unwrap(),
//!         LinearClaim::window_comparison(1, 2, 1).unwrap(),
//!     ],
//!     vec![1.0, 1.0],
//!     Direction::HigherIsStronger,
//! )
//! .unwrap();
//!
//! let session = SessionBuilder::new()
//!     .discrete(instance)
//!     .claims(claims)
//!     .build()
//!     .unwrap();
//!
//! // One batched request: ascertain all three measures and hunt a
//! // counterargument, all through the same solver registry.
//! let plans = session
//!     .recommend_many(
//!         &[
//!             ObjectiveSpec::ascertain(Measure::Bias),
//!             ObjectiveSpec::ascertain(Measure::Dup),
//!             ObjectiveSpec::ascertain(Measure::Frag),
//!             ObjectiveSpec::find_counter(10.0),
//!         ],
//!         Budget::absolute(2),
//!     )
//!     .unwrap();
//! assert_eq!(plans.len(), 4);
//! for plan in &plans {
//!     assert!(plan.selection.cost() <= 2);
//!     assert!(!plan.strategy.is_empty());
//! }
//! ```

pub mod builder;
pub mod net;
pub mod planner;
pub mod serve;
pub mod session;

pub use fc_claims as claims;
pub use fc_core as core;
pub use fc_datasets as datasets;
pub use fc_uncertain as uncertain;

pub use builder::SessionBuilder;
pub use net::{PlannerServer, ServerConfig, ServerHandle};
pub use planner::{Goal, Measure, ObjectiveSpec, Strategy};
pub use serve::ClaimStream;
pub use session::{CleaningSession, DataModel};

#[allow(deprecated)]
pub use session::{Objective, Recommendation};

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::builder::SessionBuilder;
    pub use crate::net::{PlannerServer, ServerConfig, ServerHandle};
    pub use crate::planner::{Goal, Measure, ObjectiveSpec, Strategy};
    pub use crate::serve::ClaimStream;
    pub use crate::session::{CleaningSession, DataModel};
    pub use fc_claims::{
        quality::{BiasQuery, DupQuery, FragQuery},
        ClaimSet, Direction, LinearClaim,
    };
    pub use fc_core::planner::service::{
        Lane, PlannerService, QuotaPolicy, QuotaUsage, RequestHandle, ServiceOptions, SolveRequest,
        SweepRequest, TenantId, WaitOutcome,
    };
    pub use fc_core::CancelToken;
    pub use fc_core::{
        Budget, CacheStore, GaussianInstance, Instance, Parallelism, Plan, Problem, Selection,
        Solver, SolverRegistry,
    };
    // The classic free-function entry points remain available for code
    // that predates the planner API.
    pub use fc_core::algo::{
        greedy_max_pr, greedy_min_var, greedy_naive, knapsack_optimum_min_var,
    };
    pub use fc_datasets as datasets;
    pub use fc_uncertain::{DiscreteDist, Normal};
}
