//! # fact-clean
//!
//! A full Rust reproduction of *"Selecting Data to Clean for Fact Checking:
//! Minimizing Uncertainty vs. Maximizing Surprise"* (Sintos, Agarwal, Yang;
//! VLDB 2019): given a claim over a database with uncertain values and a
//! cleaning budget, decide **which values to clean** so as to either
//! minimize the remaining uncertainty in a claim-quality measure
//! (**MinVar**) or maximize the probability of surfacing a counterargument
//! (**MaxPr**).
//!
//! This crate is the public façade: it re-exports the substrate crates and
//! offers the high-level [`CleaningSession`] API used by the examples.
//!
//! ```
//! use fact_clean::prelude::*;
//!
//! // Five years of crime counts with uncertain true values (Example 2).
//! let dists = vec![
//!     DiscreteDist::uniform_over(&[9000.0, 9010.0, 9020.0]).unwrap(),
//!     DiscreteDist::uniform_over(&[9235.0, 9275.0, 9315.0]).unwrap(),
//!     DiscreteDist::uniform_over(&[9280.0, 9300.0, 9320.0]).unwrap(),
//!     DiscreteDist::uniform_over(&[9105.0, 9125.0, 9145.0]).unwrap(),
//!     DiscreteDist::uniform_over(&[9410.0, 9430.0, 9450.0]).unwrap(),
//! ];
//! let current = vec![9010.0, 9275.0, 9300.0, 9125.0, 9430.0];
//! let costs = vec![1; 5];
//! let instance = Instance::new(dists, current, costs).unwrap();
//! assert_eq!(instance.len(), 5);
//! ```

pub mod session;

pub use fc_claims as claims;
pub use fc_core as core;
pub use fc_datasets as datasets;
pub use fc_uncertain as uncertain;

pub use session::{CleaningSession, Objective, Recommendation};

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::session::{CleaningSession, Objective, Recommendation};
    pub use fc_claims::{
        quality::{BiasQuery, DupQuery, FragQuery},
        ClaimSet, LinearClaim,
    };
    pub use fc_core::{
        algo::{greedy_max_pr, greedy_min_var, greedy_naive, knapsack_optimum_min_var},
        Budget, Instance, Selection,
    };
    pub use fc_datasets as datasets;
    pub use fc_uncertain::{DiscreteDist, Normal};
}
