//! [`SessionBuilder`] — construct a [`CleaningSession`] over either
//! error model, with an optional custom solver registry.
//!
//! ```
//! use fact_clean::prelude::*;
//!
//! let instance = Instance::new(
//!     vec![
//!         DiscreteDist::uniform_over(&[9.0, 10.0, 11.0]).unwrap(),
//!         DiscreteDist::uniform_over(&[19.0, 20.0, 21.0]).unwrap(),
//!     ],
//!     vec![10.0, 20.0],
//!     vec![1, 1],
//! )
//! .unwrap();
//! let claims = ClaimSet::new(
//!     LinearClaim::window_sum(0, 2).unwrap(),
//!     vec![LinearClaim::window_sum(0, 2).unwrap()],
//!     vec![1.0],
//!     Direction::HigherIsStronger,
//! )
//! .unwrap();
//! let session = SessionBuilder::new()
//!     .discrete(instance)
//!     .claims(claims)
//!     .build()
//!     .unwrap();
//! assert_eq!(session.original_value(), 30.0);
//! ```

use std::sync::Arc;

use fc_claims::ClaimSet;
use fc_core::{
    CacheStore, CoreError, GaussianInstance, Instance, Parallelism, Result, SolverRegistry,
};

use crate::session::{CleaningSession, DataModel};

/// Default support size when a Gaussian instance must be discretized
/// for non-affine measures (the paper's §4.2 choice).
pub const DEFAULT_DISCRETIZE_SUPPORT: usize = 6;

/// Builder for [`CleaningSession`].
pub struct SessionBuilder {
    data: Option<DataModel>,
    claims: Option<ClaimSet>,
    theta: Option<f64>,
    registry: Option<Arc<SolverRegistry>>,
    discretize_support: usize,
    parallelism: Parallelism,
    cache_store: Option<Arc<CacheStore>>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        // Hand-written so `default()` and `new()` agree on
        // `discretize_support` (a derived Default would produce 0 and
        // break Gaussian dup/frag objectives).
        Self {
            data: None,
            claims: None,
            theta: None,
            registry: None,
            discretize_support: DEFAULT_DISCRETIZE_SUPPORT,
            parallelism: Parallelism::Auto,
            cache_store: None,
        }
    }
}

impl SessionBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the uncertain data (either error model).
    pub fn data(mut self, data: impl Into<DataModel>) -> Self {
        self.data = Some(data.into());
        self
    }

    /// Sets a discrete instance as the data.
    pub fn discrete(self, instance: Instance) -> Self {
        self.data(instance)
    }

    /// Sets a Gaussian instance as the data.
    pub fn gaussian(self, instance: GaussianInstance) -> Self {
        self.data(instance)
    }

    /// Sets the claim family under scrutiny.
    pub fn claims(mut self, claims: ClaimSet) -> Self {
        self.claims = Some(claims);
        self
    }

    /// Overrides the reference value `θ` (default: the original claim's
    /// value on the current data).
    pub fn theta(mut self, theta: f64) -> Self {
        self.theta = Some(theta);
        self
    }

    /// Installs a custom solver registry (default:
    /// [`SolverRegistry::with_defaults`]). Share one `Arc` across
    /// sessions to amortize registry setup and to plug in custom
    /// engines fleet-wide.
    pub fn registry(mut self, registry: Arc<SolverRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Support size used when a Gaussian instance is discretized for
    /// the non-affine measures (`dup`/`frag`).
    pub fn discretize_support(mut self, k: usize) -> Self {
        self.discretize_support = k.max(2);
        self
    }

    /// How `recommend_many`/`recommend_sweep` shard work across
    /// threads (default [`Parallelism::Auto`]). Plans are byte-identical
    /// across modes; pick [`Parallelism::Sequential`] for
    /// single-request latency or tiny instances,
    /// [`Parallelism::Fixed`] to pin a core budget.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Installs a persistent engine store: scoped-EV tables and modular
    /// benefits are keyed on (instance fingerprint, measure identity)
    /// so repeated sessions over the same dataset skip the prefix
    /// rebuild. Share one `Arc` across sessions and request threads.
    /// See [`fc_core::planner::cache`] for the fingerprint caveats.
    pub fn cache_store(mut self, store: Arc<CacheStore>) -> Self {
        self.cache_store = Some(store);
        self
    }

    /// Finalizes the session.
    pub fn build(self) -> Result<CleaningSession> {
        let data = self.data.ok_or(CoreError::BuilderIncomplete {
            what: "data (discrete or Gaussian instance)",
        })?;
        let claims = self.claims.ok_or(CoreError::BuilderIncomplete {
            what: "claims (the ClaimSet under scrutiny)",
        })?;
        let theta = self
            .theta
            .unwrap_or_else(|| claims.original_value(data.current()));
        Ok(CleaningSession::from_parts(
            data,
            claims,
            theta,
            self.registry
                .unwrap_or_else(|| Arc::new(SolverRegistry::with_defaults())),
            self.discretize_support,
            self.parallelism,
            self.cache_store,
        ))
    }
}

impl std::fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("has_data", &self.data.is_some())
            .field("has_claims", &self.claims.is_some())
            .field("theta", &self.theta)
            .field("custom_registry", &self.registry.is_some())
            .field("discretize_support", &self.discretize_support)
            .field("parallelism", &self.parallelism)
            .field("cache_store", &self.cache_store.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_components_are_typed_errors() {
        let err = SessionBuilder::new().build().unwrap_err();
        assert!(matches!(err, CoreError::BuilderIncomplete { what } if what.contains("data")));
    }

    #[test]
    fn default_agrees_with_new_on_discretization() {
        // A derived Default would zero discretize_support and break
        // every Gaussian dup/frag objective built from `default()`.
        use crate::planner::{Measure, ObjectiveSpec};
        let g = GaussianInstance::centered_independent(
            vec![10.0, 20.0, 30.0],
            &[1.0, 2.0, 3.0],
            vec![1; 3],
        )
        .unwrap();
        let claims = fc_claims::ClaimSet::new(
            fc_claims::LinearClaim::window_sum(0, 2).unwrap(),
            vec![fc_claims::LinearClaim::window_sum(1, 2).unwrap()],
            vec![1.0],
            fc_claims::Direction::HigherIsStronger,
        )
        .unwrap();
        let session = SessionBuilder::default()
            .gaussian(g)
            .claims(claims)
            .build()
            .unwrap();
        let plan = session
            .recommend(
                ObjectiveSpec::ascertain(Measure::Dup),
                fc_core::Budget::absolute(1),
            )
            .unwrap();
        assert!(plan.selection.cost() <= 1);
    }
}
