//! The HTTP server: a blocking accept loop over
//! [`std::net::TcpListener`], bounded connection-handler threads, and
//! the route table onto the serving layer.
//!
//! ## Threading model
//!
//! Connection I/O runs on dedicated handler threads (bounded by
//! [`ServerConfig::max_connections`]; excess connections get `503`),
//! **not** on the solver [`WorkerPool`](fc_core::WorkerPool): a handler
//! spends its life blocked — reading a socket or waiting on a
//! [`RequestHandle`] — and parking those waits on the pool that must
//! *complete* them would deadlock it at saturation. What the accept
//! loop feeds the pool is the requests themselves: every route lands in
//! [`PlannerService::submit`] / `submit_sweep`, so solver work rides
//! the same lanes, quotas, and cancellation as in-process callers, and
//! plans served over the wire are byte-identical to in-process plans.
//!
//! ## Request lifecycle on the wire
//!
//! * The tenant is taken from the `x-tenant` header (falling back to
//!   the stream's own [`TenantId`]); a submit past the tenant's quota
//!   is `429` with nothing queued.
//! * While a solve is in flight the handler probes the client socket
//!   every [`ServerConfig::disconnect_poll`]
//!   ([`RequestHandle::wait_or_cancel`]): a client that hangs up
//!   cancels its request — observable in
//!   [`ServiceStats::cancelled`](fc_core::planner::service::ServiceStats) —
//!   instead of burning worker time on an unobservable plan.
//! * [`ServerHandle::shutdown`] is graceful: stop accepting, then
//!   drain — every in-flight request completes and its response is
//!   written before the handler exits.
//!
//! ## Streaming and the wire-native stream lifecycle
//!
//! `POST /v1/sweep?stream=1` answers with `Transfer-Encoding: chunked`
//! and emits one JSON object per budget point *as each point
//! completes* ([`SweepHandle::wait_next_point_or_cancel`]), so a
//! client sees the cheap early points while the expensive tail is
//! still solving. Concatenating the chunk bodies reproduces the
//! buffered `/v1/sweep` response byte-for-byte. A client hangup
//! between chunks cancels the remaining points; a mid-stream solver
//! error arrives as an `x-fc-error` trailer (the status line already
//! said `200`).
//!
//! Streams themselves are wire-native too: `POST /v1/streams` creates
//! one from an uploaded dataset (decoded and validated by
//! [`CreateStreamRequest`]), `GET /v1/streams/{id}` summarizes it,
//! `DELETE /v1/streams/{id}` removes it. The snapshot scope
//! fingerprint is computed from the *live* stream set at write time,
//! so a snapshot taken after dynamic creates only restores into a
//! server with the same topology.

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use fc_core::planner::cache::snapshot::{
    restore_snapshot, restore_stream_bytes, snapshot_stream_bytes, stream_entry_count,
    write_snapshot,
};
use fc_core::planner::service::{
    PlannerService, PointOutcome, RequestHandle, SweepHandle, TenantId, WaitOutcome,
};
use fc_core::planner::Fnv1a;
use fc_core::{CoreError, Plan};

use super::api::{
    decode_body, plan_json, stats_json, AdoptRequest, ApiError, CleanRequest, CleanResponse,
    CreateStreamRequest, RecommendRequest, SnapshotTransfer, StreamInfo, SweepRequest,
};
use super::http::{
    finish_chunked, read_request, write_chunk, write_chunked_head, write_response, HttpError,
    Request,
};
use super::json::Json;
use crate::builder::SessionBuilder;
use crate::serve::ClaimStream;
use crate::session::DataModel;

/// Tuning knobs for a [`PlannerServer`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Cap on a request body's declared `Content-Length` (`413` past
    /// it). Default: 256 KiB.
    pub max_body_bytes: usize,
    /// Cap on concurrently served connections (`503` past it).
    /// Default: 64.
    pub max_connections: usize,
    /// Socket read **and write** timeout. Doubles as the keep-alive
    /// idle timeout: a connection with no request for this long is
    /// closed (so silent clients cannot pin
    /// [`ServerConfig::max_connections`] slots forever), a client that
    /// stalls *mid-request* longer than this gets `408`, and a client
    /// that stops *reading* its response unblocks the handler with a
    /// write error instead of wedging it (and graceful shutdown)
    /// indefinitely. Default: 5s.
    pub read_timeout: Duration,
    /// How often an in-flight wait probes the client socket for
    /// disconnect (the cancel-on-hangup latency). Default: 50ms.
    pub disconnect_poll: Duration,
    /// Where this server persists its [`CacheStore`](fc_core::CacheStore)
    /// snapshot. When set: [`PlannerServer::serve`] restores from the
    /// file if present (warm boot — corruption or a topology mismatch
    /// falls back to a cold start), `POST /v1/admin/snapshot` writes
    /// it on demand, and graceful shutdown writes it so a successor
    /// process boots warm. Default: none (no persistence).
    pub snapshot_path: Option<PathBuf>,
}

impl ServerConfig {
    /// The default configuration (see the field docs).
    pub fn new() -> Self {
        Self {
            max_body_bytes: 256 * 1024,
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            disconnect_poll: Duration::from_millis(50),
            snapshot_path: None,
        }
    }

    /// Sets the body-size cap.
    pub fn with_max_body_bytes(mut self, bytes: usize) -> Self {
        self.max_body_bytes = bytes;
        self
    }

    /// Sets the concurrent-connection cap.
    pub fn with_max_connections(mut self, connections: usize) -> Self {
        self.max_connections = connections;
        self
    }

    /// Sets the socket read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the disconnect-probe cadence.
    pub fn with_disconnect_poll(mut self, poll: Duration) -> Self {
        self.disconnect_poll = poll;
        self
    }

    /// Sets the snapshot file (see [`ServerConfig::snapshot_path`]).
    pub fn with_snapshot_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_path = Some(path.into());
        self
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Tracks live connection handlers so shutdown can drain them.
/// Shared with the [`router`](super::router) front, whose accept loop
/// has the same drain obligation.
#[derive(Default)]
pub(crate) struct LiveConnections {
    count: Mutex<usize>,
    drained: Condvar,
}

impl LiveConnections {
    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, usize> {
        self.count.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Claims a slot, or reports saturation.
    pub(crate) fn try_enter(&self, cap: usize) -> bool {
        let mut count = self.lock();
        if *count >= cap {
            false
        } else {
            *count += 1;
            true
        }
    }

    pub(crate) fn exit(&self) {
        *self.lock() -= 1;
        self.drained.notify_all();
    }

    pub(crate) fn wait_drained(&self) {
        let mut count = self.lock();
        while *count > 0 {
            count = self
                .drained
                .wait(count)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Shared state of a running server.
struct ServerCtx {
    service: PlannerService,
    /// The live stream registry. Behind a lock because `POST
    /// /v1/streams` and `DELETE /v1/streams/{id}` mutate it at runtime;
    /// request routes take the read side and clone the `Arc` out, so
    /// the registry lock is never held across a solve.
    streams: RwLock<HashMap<String, Arc<RwLock<ClaimStream>>>>,
    config: ServerConfig,
    shutdown: AtomicBool,
    live: LiveConnections,
    /// Operator-set drain flag, reported through `GET /v1/health` so a
    /// routing front rehashes new work away while in-flight finishes.
    draining: AtomicBool,
    /// Entries rehydrated from the snapshot at boot (0 on cold start).
    restored: usize,
}

impl ServerCtx {
    fn streams(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<RwLock<ClaimStream>>>> {
        self.streams.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// The snapshot scope of the *current* stream set. Dynamically
    /// created or deleted streams change it, so a snapshot written
    /// after a topology change only restores into a matching topology.
    fn live_scope(&self) -> u64 {
        scope_fingerprint(&self.streams())
    }
}

/// FNV-1a over the sorted stream ids: stable across restarts and
/// insertion order, changed by any topology change.
fn scope_fingerprint(streams: &HashMap<String, Arc<RwLock<ClaimStream>>>) -> u64 {
    let mut ids: Vec<&str> = streams.keys().map(String::as_str).collect();
    ids.sort_unstable();
    let mut h = Fnv1a::new();
    h.write_usize(ids.len());
    for id in ids {
        h.write_str(id);
    }
    h.finish()
}

/// The scope a *per-stream* snapshot slice is cut and restored under:
/// FNV-1a over a domain tag plus the one stream id. Both ends of a
/// snapshot transfer compute it independently, so a slice cut for one
/// stream can never restore as another's (or as a full-topology
/// snapshot — the tag keeps the domains apart).
fn stream_scope_fingerprint(id: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("stream-slice");
    h.write_str(id);
    h.finish()
}

/// The dependency-free HTTP/1.1 front over a [`PlannerService`] and its
/// named [`ClaimStream`]s. Build one, register streams, then
/// [`PlannerServer::serve`].
///
/// | route | maps to |
/// |---|---|
/// | `POST /v1/recommend` | [`ClaimStream::submit`] → [`PlannerService::submit`] |
/// | `POST /v1/sweep` | [`ClaimStream::submit_sweep`] → [`PlannerService::submit_sweep`] (`?stream=1` streams each budget point as a chunk) |
/// | `POST /v1/streams` | create a stream from an uploaded dataset ([`CreateStreamRequest`]) |
/// | `GET /v1/streams/{id}` | one stream's summary ([`StreamInfo`]) |
/// | `DELETE /v1/streams/{id}` | remove a stream |
/// | `POST /v1/streams/{id}/clean` | [`ClaimStream::mark_cleaned`] |
/// | `GET /v1/streams` | the registered stream ids |
/// | `GET /v1/stats` | service counters + saturation gauges, store counters, per-tenant usage |
///
/// See the [module docs](self) for the threading model and the
/// on-the-wire request lifecycle.
pub struct PlannerServer {
    service: PlannerService,
    streams: HashMap<String, Arc<RwLock<ClaimStream>>>,
    config: ServerConfig,
}

impl PlannerServer {
    /// A server over `service` with the default [`ServerConfig`].
    pub fn new(service: PlannerService) -> Self {
        Self {
            service,
            streams: HashMap::new(),
            config: ServerConfig::new(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Registers `stream` under `id` (the `{id}` of the routes).
    /// Streams submitted to over HTTP should share this server's
    /// service so quotas, stats, and the store tell one story.
    pub fn with_stream(mut self, id: impl Into<String>, stream: ClaimStream) -> Self {
        self.streams
            .insert(id.into(), Arc::new(RwLock::new(stream)));
        self
    }

    /// The service this server fronts.
    pub fn service(&self) -> &PlannerService {
        &self.service
    }

    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread. The returned handle reports
    /// the bound address and owns graceful shutdown.
    pub fn serve(self, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let scope = scope_fingerprint(&self.streams);
        // Warm boot: rehydrate the store from the snapshot when one is
        // configured and valid. Every failure (missing file, torn
        // write, different topology) is a cold start, never an error —
        // the snapshot is an optimization, not state of record.
        let restored = match &self.config.snapshot_path {
            Some(path) => restore_snapshot(self.service.store(), path, scope)
                .map(|stats| stats.entries)
                .unwrap_or(0),
            None => 0,
        };
        let ctx = Arc::new(ServerCtx {
            service: self.service,
            streams: RwLock::new(self.streams),
            config: self.config,
            shutdown: AtomicBool::new(false),
            live: LiveConnections::default(),
            draining: AtomicBool::new(false),
            restored,
        });
        let accept_ctx = Arc::clone(&ctx);
        let accept = std::thread::Builder::new()
            .name("fc-net-accept".into())
            .spawn(move || accept_loop(listener, accept_ctx))?;
        Ok(ServerHandle {
            addr,
            ctx,
            accept: Some(accept),
        })
    }
}

impl std::fmt::Debug for PlannerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut ids: Vec<&str> = self.streams.keys().map(String::as_str).collect();
        ids.sort_unstable();
        f.debug_struct("PlannerServer")
            .field("streams", &ids)
            .field("config", &self.config)
            .finish()
    }
}

/// A running server: its bound address plus graceful shutdown.
/// Dropping the handle shuts the server down (draining in-flight
/// requests); call [`ServerHandle::shutdown`] to do it explicitly.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServerCtx>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the server (stats, quotas, store).
    pub fn service(&self) -> &PlannerService {
        &self.ctx.service
    }

    /// Graceful shutdown: stop accepting, then drain — every accepted
    /// request completes and its response is written before this
    /// returns. Idle keep-alive connections are released at the next
    /// [`ServerConfig::read_timeout`] tick.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        self.ctx.live.wait_drained();
        // Every in-flight request has resolved: the store is settled,
        // so persist it for a warm successor. Best-effort — a failed
        // write costs the successor a cold start, nothing more. The
        // scope reflects streams created or deleted over the wire.
        if let Some(path) = &self.ctx.config.snapshot_path {
            let _ = write_snapshot(self.ctx.service.store(), path, self.ctx.live_scope());
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("live_connections", &*self.ctx.live.lock())
            .finish()
    }
}

/// RAII claim on a [`LiveConnections`] slot: released on drop, so a
/// panicking handler (or a failed thread spawn, which drops the
/// closure unrun) still frees its slot. Leaking one would wedge
/// [`LiveConnections::wait_drained`] — and, once `max_connections`
/// leaks accumulate, turn the server into a permanent `503`.
struct ConnSlot(Arc<ServerCtx>);

impl ConnSlot {
    /// Claims a slot, or `None` at the connection cap.
    fn try_claim(ctx: &Arc<ServerCtx>) -> Option<Self> {
        ctx.live
            .try_enter(ctx.config.max_connections)
            .then(|| Self(Arc::clone(ctx)))
    }
}

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.live.exit();
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServerCtx>) {
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(sock) = stream else { continue };
        let Some(slot) = ConnSlot::try_claim(&ctx) else {
            refuse_saturated(sock, &ctx.config);
            continue;
        };
        let conn_ctx = Arc::clone(&ctx);
        let _ = std::thread::Builder::new()
            .name("fc-net-conn".into())
            .spawn(move || {
                let _slot = slot;
                handle_connection(sock, &conn_ctx);
            });
    }
}

/// Writes the saturation `503` on a short-lived detached thread, with
/// a write timeout much shorter than a handler's: a refused client
/// that never reads must stall only its refusal thread. Writing the
/// refusal synchronously on the accept thread would let one slow
/// client block *every* accept for up to the full write timeout —
/// under a sustained 503 storm, a self-inflicted outage.
fn refuse_saturated(mut sock: TcpStream, config: &ServerConfig) {
    const REFUSAL_WRITE_TIMEOUT: Duration = Duration::from_millis(250);
    let timeout = config.read_timeout.min(REFUSAL_WRITE_TIMEOUT);
    let body = ApiError {
        status: 503,
        message: "connection limit reached".into(),
    }
    .body();
    // Spawn failure (thread exhaustion) still refuses — dropping the
    // socket just skips the courtesy body.
    let _ = std::thread::Builder::new()
        .name("fc-net-refuse".into())
        .spawn(move || {
            let _ = sock.set_write_timeout(Some(timeout));
            let _ = write_response(&mut sock, 503, &body, true);
        });
}

/// Serves one connection: a keep-alive loop of read → dispatch →
/// respond. Returns (closing the socket) on client close, malformed
/// framing, write failure, or shutdown.
fn handle_connection(sock: TcpStream, ctx: &ServerCtx) {
    let _ = sock.set_read_timeout(Some(ctx.config.read_timeout));
    let _ = sock.set_write_timeout(Some(ctx.config.read_timeout));
    let _ = sock.set_nodelay(true);
    let Ok(read_half) = sock.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = sock;
    loop {
        let request = match read_request(&mut reader, ctx.config.max_body_bytes) {
            Ok(request) => request,
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
            // Idle past the keep-alive window: reap the connection —
            // a silent client must not pin a connection slot (and
            // block shutdown) indefinitely. Reconnecting is cheap.
            Err(HttpError::IdleTimeout) => return,
            Err(HttpError::Malformed { status, reason }) => {
                // Answer what is answerable, then close: past a framing
                // error the byte stream is unparseable.
                let body = ApiError {
                    status,
                    message: reason.to_string(),
                }
                .body();
                let _ = write_response(&mut writer, status, &body, true);
                return;
            }
        };
        let close_after = request.close || ctx.shutdown.load(Ordering::SeqCst);
        match dispatch(ctx, &request, &writer) {
            Outcome::Respond { status, body } => {
                if write_response(&mut writer, status, &body, close_after).is_err() {
                    return;
                }
            }
            // A chunked response went out with `connection: close`;
            // the keep-alive loop must honor it regardless of how the
            // stream ended.
            Outcome::Streamed => return,
            // The client is gone; there is nobody to answer.
            Outcome::ClientGone => return,
        }
        if close_after {
            return;
        }
    }
}

/// What a route handler decided.
enum Outcome {
    Respond {
        status: u16,
        body: String,
    },
    /// The route wrote a chunked response directly to the socket
    /// (complete or aborted); the connection closes either way.
    Streamed,
    ClientGone,
}

impl Outcome {
    fn ok(body: Json) -> Self {
        Self::Respond {
            status: 200,
            body: body.to_string(),
        }
    }
}

impl From<ApiError> for Outcome {
    fn from(e: ApiError) -> Self {
        Self::Respond {
            status: e.status,
            body: e.body(),
        }
    }
}

fn dispatch(ctx: &ServerCtx, request: &Request, sock: &TcpStream) -> Outcome {
    let path = request.path().to_string();
    let segments: Vec<&str> = path.strip_prefix('/').unwrap_or(&path).split('/').collect();
    let method = request.method.as_str();
    match (method, segments.as_slice()) {
        ("GET", ["v1", "stats"]) => Outcome::ok(stats_json(
            &ctx.service.stats(),
            &ctx.service.store().stats(),
            &ctx.service.tenant_usages(),
        )),
        ("GET", ["v1", "streams"]) => {
            let streams = ctx.streams();
            let mut ids: Vec<&String> = streams.keys().collect();
            ids.sort_unstable();
            Outcome::ok(Json::obj([(
                "streams",
                Json::Arr(ids.iter().map(|id| Json::Str((*id).clone())).collect()),
            )]))
        }
        ("GET", ["v1", "streams", id]) => stream_info_route(ctx, id),
        ("GET", ["v1", "streams", id, "snapshot"]) => stream_snapshot_route(ctx, id),
        ("POST", ["v1", "streams", id, "adopt"]) => adopt_stream_route(ctx, request, id),
        ("GET", ["v1", "health"]) => Outcome::ok(health_json(ctx)),
        ("POST", ["v1", "recommend"]) => solve_route(ctx, request, sock, false),
        ("POST", ["v1", "sweep"]) => solve_route(ctx, request, sock, true),
        ("POST", ["v1", "streams"]) => create_stream_route(ctx, request),
        ("DELETE", ["v1", "streams", id]) => delete_stream_route(ctx, id),
        ("POST", ["v1", "streams", id, "clean"]) => clean_route(ctx, request, id),
        ("POST", ["v1", "admin", "drain"]) => set_draining(ctx, true),
        ("POST", ["v1", "admin", "undrain"]) => set_draining(ctx, false),
        ("POST", ["v1", "admin", "snapshot"]) => snapshot_route(ctx),
        // Known paths with the wrong verb are 405, not 404.
        (_, ["v1", "stats" | "streams" | "recommend" | "sweep" | "health"])
        | (_, ["v1", "streams", _])
        | (_, ["v1", "streams", _, "clean" | "snapshot" | "adopt"])
        | (_, ["v1", "admin", "drain" | "undrain" | "snapshot"]) => ApiError {
            status: 405,
            message: format!("method {method} not allowed on {path}"),
        }
        .into(),
        _ => ApiError::not_found(format!("no route for {path}")).into(),
    }
}

/// `POST /v1/streams`: builds a session from the uploaded dataset and
/// registers it as a live stream. The payload arrives fully validated
/// from [`CreateStreamRequest::from_json`]; a duplicate id is `409`
/// (creation is not idempotent — two uploads under one id could carry
/// different data). The new session shares the service's engine store,
/// so repeated datasets boot warm.
fn create_stream_route(ctx: &ServerCtx, request: &Request) -> Outcome {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return ApiError::bad_request("body is not UTF-8").into(),
    };
    let req = match decode_body(text, CreateStreamRequest::from_json) {
        Ok(req) => req,
        Err(e) => return e.into(),
    };
    let mut builder = SessionBuilder::new()
        .data(req.data)
        .claims(req.claims)
        .cache_store(Arc::clone(ctx.service.store()));
    if let Some(theta) = req.theta {
        builder = builder.theta(theta);
    }
    if let Some(k) = req.discretize_support {
        builder = builder.discretize_support(k);
    }
    let session = match builder.build() {
        Ok(session) => session,
        Err(e) => return ApiError::from(e).into(),
    };
    let mut stream = ClaimStream::open(session, ctx.service.clone());
    if let Some(tenant) = &req.tenant {
        stream = stream.with_tenant(tenant.as_str());
    }
    let info = stream_info(&req.id, &stream);
    let mut streams = ctx.streams.write().unwrap_or_else(PoisonError::into_inner);
    if streams.contains_key(&req.id) {
        return ApiError {
            status: 409,
            message: format!("stream {:?} already exists", req.id),
        }
        .into();
    }
    streams.insert(req.id, Arc::new(RwLock::new(stream)));
    drop(streams);
    Outcome::Respond {
        status: 201,
        body: info.to_json().to_string(),
    }
}

/// `GET /v1/streams/{id}`: one stream's summary.
fn stream_info_route(ctx: &ServerCtx, id: &str) -> Outcome {
    let Some(stream) = ctx.streams().get(id).cloned() else {
        return ApiError::not_found(format!("unknown stream {id:?}")).into();
    };
    let guard = stream.read().unwrap_or_else(PoisonError::into_inner);
    Outcome::ok(stream_info(id, &guard).to_json())
}

/// `DELETE /v1/streams/{id}`: drops the stream from the registry.
/// In-flight solves on it complete (they hold their own `Arc`); the
/// engine store keeps its entries — they are keyed on the dataset
/// fingerprint, so re-creating the same dataset boots warm.
fn delete_stream_route(ctx: &ServerCtx, id: &str) -> Outcome {
    let mut streams = ctx.streams.write().unwrap_or_else(PoisonError::into_inner);
    if streams.remove(id).is_none() {
        return ApiError::not_found(format!("unknown stream {id:?}")).into();
    }
    drop(streams);
    Outcome::ok(Json::obj([("deleted", Json::Str(id.to_string()))]))
}

fn stream_info(id: &str, stream: &ClaimStream) -> StreamInfo {
    let session = stream.session();
    StreamInfo {
        id: id.to_string(),
        tenant: stream.tenant().name().to_string(),
        model: match session.data() {
            DataModel::Discrete(_) => "discrete".to_string(),
            DataModel::Gaussian(_) => "gaussian".to_string(),
        },
        objects: session.data().len(),
        total_cost: session.data().total_cost(),
        theta: session.original_value(),
        perturbations: session.claims().len(),
    }
}

/// Reconstructs the full wire definition of a live stream — the exact
/// [`CreateStreamRequest`] a peer must replay to derive byte-identical
/// cache fingerprints. `θ` and the discretization width are pinned
/// explicitly (not left to defaults), so the replica cannot re-resolve
/// them differently; comparing two *reconstructed* definitions is
/// therefore a normalized equality.
fn stream_definition(id: &str, stream: &ClaimStream) -> CreateStreamRequest {
    let session = stream.session();
    CreateStreamRequest {
        id: id.to_string(),
        tenant: Some(stream.tenant().name().to_string()),
        theta: Some(session.original_value()),
        discretize_support: Some(session.discretize_support()),
        data: session.data().clone(),
        claims: session.claims().clone(),
    }
}

/// Names the fields on which two reconstructed definitions disagree,
/// so an adopt conflict's 409 says *what* diverged — a repair operator
/// staring at "different definition" alone cannot tell a θ drift from
/// a dataset swap.
fn definition_diff(a: &CreateStreamRequest, b: &CreateStreamRequest) -> Vec<&'static str> {
    let mut fields = Vec::new();
    if a.tenant != b.tenant {
        fields.push("tenant");
    }
    if a.theta != b.theta {
        fields.push("theta");
    }
    if a.discretize_support != b.discretize_support {
        fields.push("discretize_support");
    }
    if a.data != b.data {
        fields.push("data");
    }
    if a.claims != b.claims {
        fields.push("claims");
    }
    fields
}

/// The `GET /v1/health` body: liveness, drain flag, boot restore
/// count, and per-stream residency — which streams this replica hosts
/// and how many warm store entries each currently owns. A routing
/// front's repair pass reads the residency to spot under-replicated
/// streams; the warm counts use the fingerprints *derived so far*
/// (cheap — no problem is lowered on the probe path), so a stream
/// reads `0` until its first solve or adopt.
fn health_json(ctx: &ServerCtx) -> Json {
    let streams = ctx.streams();
    let mut ids: Vec<&String> = streams.keys().collect();
    ids.sort_unstable();
    let residency: Vec<Json> = ids
        .iter()
        .map(|id| {
            let stream = streams.get(*id).expect("listed id is resident");
            let guard = stream.read().unwrap_or_else(PoisonError::into_inner);
            let fps = guard.session().active_instance_fingerprints();
            let warm = stream_entry_count(ctx.service.store(), &fps);
            Json::obj([
                ("id", Json::Str((*id).clone())),
                ("warm_entries", Json::Num(warm as f64)),
            ])
        })
        .collect();
    Json::obj([
        ("ok", Json::Bool(true)),
        ("draining", Json::Bool(ctx.draining.load(Ordering::Relaxed))),
        ("restored_entries", Json::Num(ctx.restored as f64)),
        ("streams", Json::Arr(residency)),
    ])
}

/// `GET /v1/streams/{id}/snapshot`: the stream's full definition plus
/// its warm per-stream cache slice — one checksummed body a peer can
/// `adopt` verbatim, with no dataset re-upload. The slice is cut under
/// the per-stream scope fingerprint and filtered to the session's
/// instance fingerprints, so it carries exactly this stream's warm
/// state.
fn stream_snapshot_route(ctx: &ServerCtx, id: &str) -> Outcome {
    let Some(stream) = ctx.streams().get(id).cloned() else {
        return ApiError::not_found(format!("unknown stream {id:?}")).into();
    };
    let guard = stream.read().unwrap_or_else(PoisonError::into_inner);
    let definition = stream_definition(id, &guard);
    let fingerprints = guard.session().all_instance_fingerprints();
    drop(guard);
    let (cache_slice, warm_entries) = snapshot_stream_bytes(
        ctx.service.store(),
        stream_scope_fingerprint(id),
        &fingerprints,
    );
    let transfer = SnapshotTransfer {
        definition,
        cache_slice,
        warm_entries,
    };
    match transfer.to_json() {
        Ok(body) => Outcome::ok(body),
        // Only data with no wire encoding (a correlated Gaussian
        // model) lands here — the server's limitation, not the
        // client's request.
        Err(e) => ApiError {
            status: 500,
            message: format!("stream {id:?} has no wire snapshot: {}", e.message),
        }
        .into(),
    }
}

/// `POST /v1/streams/{id}/adopt`: installs a replicated stream from a
/// peer's [`SnapshotTransfer`].
///
/// * path id ≠ definition id → `400`;
/// * occupied id with a **different** definition → `409` (live state
///   is never silently replaced);
/// * occupied id with a **matching** definition → idempotent
///   warm-slice merge, `200` — the repair pass uses this to re-warm a
///   replica that already hosts the stream;
/// * free id → install the stream and restore the slice, `201`.
///
/// A corrupt, foreign, or wrong-scope slice is refused with a typed
/// `400` before anything lands — neither the registry nor the store is
/// touched (the slice restore itself is all-or-nothing).
fn adopt_stream_route(ctx: &ServerCtx, request: &Request, id: &str) -> Outcome {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return ApiError::bad_request("body is not UTF-8").into(),
    };
    let req = match decode_body(text, AdoptRequest::from_json) {
        Ok(req) => req,
        Err(e) => return e.into(),
    };
    let transfer = req.transfer;
    if transfer.definition.id != id {
        return ApiError::bad_request(format!(
            "adopt id mismatch: path says {id:?}, definition says {:?}",
            transfer.definition.id
        ))
        .into();
    }
    let CreateStreamRequest {
        tenant,
        theta,
        discretize_support,
        data,
        claims,
        ..
    } = transfer.definition;
    let mut builder = SessionBuilder::new()
        .data(data)
        .claims(claims)
        .cache_store(Arc::clone(ctx.service.store()));
    if let Some(theta) = theta {
        builder = builder.theta(theta);
    }
    if let Some(k) = discretize_support {
        builder = builder.discretize_support(k);
    }
    let session = match builder.build() {
        Ok(session) => session,
        Err(e) => return ApiError::from(e).into(),
    };
    // Derive the full fingerprint set up front: it validates the slice
    // and leaves the adopted session's keys memoized, so the health
    // report attributes the restored entries to this stream at once.
    let fingerprints = session.all_instance_fingerprints();
    let mut stream = ClaimStream::open(session, ctx.service.clone());
    if let Some(tenant) = &tenant {
        stream = stream.with_tenant(tenant.as_str());
    }

    // Hold the registry write lock across conflict check, restore, and
    // insert so a racing create cannot interleave. The restore only
    // takes store shard locks — never a solve — so the hold is short.
    let mut streams = ctx.streams.write().unwrap_or_else(PoisonError::into_inner);
    let merged = match streams.get(id) {
        Some(existing) => {
            let guard = existing.read().unwrap_or_else(PoisonError::into_inner);
            let resident = stream_definition(id, &guard);
            let incoming = stream_definition(id, &stream);
            if resident != incoming {
                return ApiError {
                    status: 409,
                    message: format!(
                        "stream {id:?} already exists with a different definition (fields: {})",
                        definition_diff(&resident, &incoming).join(", ")
                    ),
                }
                .into();
            }
            // Force the resident session's fingerprints too, so the
            // health residency attributes the merged entries to it —
            // otherwise a never-solved replica keeps reporting cold
            // and the repair pass re-merges forever.
            let _ = guard.session().all_instance_fingerprints();
            true
        }
        None => false,
    };
    let restored = if transfer.cache_slice.is_empty() {
        0
    } else {
        match restore_stream_bytes(
            ctx.service.store(),
            &transfer.cache_slice,
            stream_scope_fingerprint(id),
            &fingerprints,
        ) {
            Ok(stats) => stats.entries,
            Err(e) => return ApiError::bad_request(format!("cache slice refused: {e}")).into(),
        }
    };
    if !merged {
        streams.insert(id.to_string(), Arc::new(RwLock::new(stream)));
    }
    drop(streams);
    Outcome::Respond {
        status: if merged { 200 } else { 201 },
        body: Json::obj([
            ("adopted", Json::Str(id.to_string())),
            ("merged", Json::Bool(merged)),
            ("restored_entries", Json::Num(restored as f64)),
            ("slice_entries", Json::Num(transfer.warm_entries as f64)),
        ])
        .to_string(),
    }
}

/// `POST /v1/admin/drain` / `undrain`: flips the advisory drain flag.
/// The server keeps serving whatever arrives — the flag's consumer is
/// a routing front's health probe, which rehashes *new* work away
/// while in-flight requests finish here.
fn set_draining(ctx: &ServerCtx, draining: bool) -> Outcome {
    ctx.draining.store(draining, Ordering::Relaxed);
    Outcome::ok(Json::obj([("draining", Json::Bool(draining))]))
}

/// `POST /v1/admin/snapshot`: persists the store now (rotate hook — a
/// successor process pointed at the same path boots warm).
fn snapshot_route(ctx: &ServerCtx) -> Outcome {
    let Some(path) = &ctx.config.snapshot_path else {
        return ApiError::bad_request("no snapshot path configured").into();
    };
    match write_snapshot(ctx.service.store(), path, ctx.live_scope()) {
        Ok(stats) => Outcome::ok(Json::obj([
            ("entries", Json::Num(stats.entries as f64)),
            ("bytes", Json::Num(stats.bytes as f64)),
        ])),
        Err(e) => ApiError {
            status: 500,
            message: format!("snapshot failed: {e}"),
        }
        .into(),
    }
}

/// Parses the body as JSON and resolves the target stream first (an
/// unknown stream is a `404` even when the rest of the body is also
/// bad), then decodes the typed request with `decode`.
fn typed_request<T>(
    ctx: &ServerCtx,
    request: &Request,
    decode: impl FnOnce(&Json) -> Result<T, ApiError>,
) -> Result<(T, Arc<RwLock<ClaimStream>>), ApiError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::bad_request("body is not UTF-8"))?;
    let body = Json::parse(text).map_err(|e| ApiError::bad_request(format!("bad JSON: {e}")))?;
    let stream_id = body
        .get("stream")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request("missing \"stream\" (a stream id)"))?;
    // Clone the `Arc` out so the registry lock drops before any solve
    // (and a concurrent create/delete never waits on a request).
    let stream = ctx
        .streams()
        .get(stream_id)
        .cloned()
        .ok_or_else(|| ApiError::not_found(format!("unknown stream {stream_id:?}")))?;
    Ok((decode(&body)?, stream))
}

fn solve_route(ctx: &ServerCtx, request: &Request, sock: &TcpStream, sweep: bool) -> Outcome {
    let tenant = request.header("x-tenant").map(TenantId::from);
    // Hold the stream lock only to *submit* (lowering is memoized and
    // fast); a concurrent `clean` therefore waits behind submissions,
    // never behind solves.
    if sweep {
        let (req, stream) = match typed_request(ctx, request, SweepRequest::from_json) {
            Ok(parts) => parts,
            Err(e) => return e.into(),
        };
        let guard = stream.read().unwrap_or_else(PoisonError::into_inner);
        let total_cost = guard.session().data().total_cost();
        let tenant = tenant.unwrap_or_else(|| guard.tenant().clone());
        let budgets = match req
            .budgets
            .iter()
            .map(|b| b.resolve(total_cost))
            .collect::<Result<Vec<_>, _>>()
        {
            Ok(budgets) => budgets,
            Err(e) => return e.into(),
        };
        let handle = guard.submit_sweep_as(tenant, &req.spec, &budgets);
        drop(guard);
        match handle {
            Ok(handle) if request.query_param("stream").is_some() => {
                stream_sweep_response(ctx, sock, handle)
            }
            Ok(handle) => await_sweep(ctx, sock, handle),
            Err(e) => ApiError::from(e).into(),
        }
    } else {
        let (req, stream) = match typed_request(ctx, request, RecommendRequest::from_json) {
            Ok(parts) => parts,
            Err(e) => return e.into(),
        };
        let guard = stream.read().unwrap_or_else(PoisonError::into_inner);
        let total_cost = guard.session().data().total_cost();
        let tenant = tenant.unwrap_or_else(|| guard.tenant().clone());
        let budget = match req.budget.resolve(total_cost) {
            Ok(budget) => budget,
            Err(e) => return e.into(),
        };
        let handle = guard.submit_as(tenant, req.spec, budget);
        drop(guard);
        match handle {
            Ok(handle) => await_handle(ctx, sock, handle, |plan: &Plan| plan_json(plan)),
            Err(e) => ApiError::from(e).into(),
        }
    }
}

/// Waits for a handle while probing the client socket; a hangup
/// cancels the request ([`RequestHandle::wait_or_cancel`] — the
/// disconnect-driven cancel hook).
fn await_handle<T>(
    ctx: &ServerCtx,
    sock: &TcpStream,
    handle: RequestHandle<T>,
    encode: impl FnOnce(&T) -> Json,
) -> Outcome {
    match handle.wait_or_cancel(ctx.config.disconnect_poll, || client_connected(sock)) {
        WaitOutcome::Ready(Ok(value)) => Outcome::ok(encode(&value)),
        WaitOutcome::Ready(Err(e)) => ApiError::from(e).into(),
        WaitOutcome::Cancelled => Outcome::ClientGone,
        // This wait is the handle's only consumer.
        WaitOutcome::TimedOut | WaitOutcome::Taken => ApiError::from(CoreError::Cancelled).into(),
    }
}

/// The buffered sweep wait: like [`await_handle`], over the
/// aggregate side of a [`SweepHandle`].
fn await_sweep(ctx: &ServerCtx, sock: &TcpStream, handle: SweepHandle) -> Outcome {
    match handle.wait_or_cancel(ctx.config.disconnect_poll, || client_connected(sock)) {
        WaitOutcome::Ready(Ok(plans)) => Outcome::ok(Json::obj([(
            "plans",
            Json::Arr(plans.iter().map(plan_json).collect()),
        )])),
        WaitOutcome::Ready(Err(e)) => ApiError::from(e).into(),
        WaitOutcome::Cancelled => Outcome::ClientGone,
        WaitOutcome::TimedOut | WaitOutcome::Taken => ApiError::from(CoreError::Cancelled).into(),
    }
}

/// `POST /v1/sweep?stream=1`: writes the response incrementally, one
/// chunk per budget point, as each point completes. The chunk bodies
/// concatenate to exactly the buffered response (`{"plans":[` …
/// `,plan` … `]}`), so a streamed sweep is byte-identical to a
/// buffered one — the determinism gate holds per point.
///
/// The client socket is probed between points: a hangup cancels the
/// remaining budget points ([`SweepHandle::wait_next_point_or_cancel`]),
/// as does a failed chunk write. A solver error on a later point —
/// the `200` status line is long gone — terminates the stream with an
/// `x-fc-error` trailer and an unclosed JSON document, so no client
/// mistakes the truncation for success.
fn stream_sweep_response(ctx: &ServerCtx, sock: &TcpStream, mut handle: SweepHandle) -> Outcome {
    let mut w = sock;
    if write_chunked_head(&mut w, 200).is_err() || write_chunk(&mut w, b"{\"plans\":[").is_err() {
        handle.cancel();
        return Outcome::ClientGone;
    }
    let mut yielded = 0usize;
    loop {
        match handle
            .wait_next_point_or_cancel(ctx.config.disconnect_poll, || client_connected(sock))
        {
            PointOutcome::Point(Ok(plan)) => {
                let mut body = String::new();
                if yielded > 0 {
                    body.push(',');
                }
                body.push_str(&plan_json(&plan).to_string());
                yielded += 1;
                if write_chunk(&mut w, body.as_bytes()).is_err() {
                    handle.cancel();
                    return Outcome::ClientGone;
                }
            }
            PointOutcome::Point(Err(e)) => {
                handle.cancel();
                let e = ApiError::from(e);
                let _ = finish_chunked(&mut w, Some(&format!("{} {}", e.status, e.message)));
                return Outcome::Streamed;
            }
            PointOutcome::Done => {
                if write_chunk(&mut w, b"]}").is_err() {
                    return Outcome::ClientGone;
                }
                let _ = finish_chunked(&mut w, None);
                return Outcome::Streamed;
            }
            PointOutcome::Cancelled => return Outcome::ClientGone,
            // `wait_next_point_or_cancel` retries timeouts internally.
            PointOutcome::TimedOut => {}
        }
    }
}

fn clean_route(ctx: &ServerCtx, request: &Request, id: &str) -> Outcome {
    let Some(stream) = ctx.streams().get(id).cloned() else {
        return ApiError::not_found(format!("unknown stream {id:?}")).into();
    };
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return ApiError::bad_request("body is not UTF-8").into(),
    };
    let req = match decode_body(text, CleanRequest::from_json) {
        Ok(req) => req,
        Err(e) => return e.into(),
    };
    let mut guard = stream.write().unwrap_or_else(PoisonError::into_inner);
    match guard.mark_cleaned(&req.objects, &req.revealed) {
        Ok(invalidated) => Outcome::ok(
            CleanResponse {
                invalidated,
                objects: req.objects.len(),
            }
            .to_json(),
        ),
        Err(e) => ApiError::from(e).into(),
    }
}

/// Probes whether the client half of `sock` is still there: a
/// non-blocking `peek` distinguishes "no bytes yet" (connected) from
/// EOF/reset (gone). Pipelined request bytes also read as connected.
/// Shared with the [`router`](super::router), which probes its client
/// the same way while relaying upstream.
pub(crate) fn client_connected(sock: &TcpStream) -> bool {
    if sock.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let connected = match sock.peek(&mut probe) {
        Ok(0) => false, // orderly shutdown
        Ok(_) => true,  // pipelined bytes waiting
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => true,
        Err(_) => false, // reset
    };
    let _ = sock.set_nonblocking(false);
    connected
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_core::planner::service::ServiceOptions;
    use fc_core::SolverRegistry;

    fn test_ctx(max_connections: usize) -> Arc<ServerCtx> {
        let service = PlannerService::new(
            Arc::new(SolverRegistry::with_defaults()),
            ServiceOptions::new(),
        );
        Arc::new(ServerCtx {
            service,
            streams: RwLock::new(HashMap::new()),
            config: ServerConfig::new().with_max_connections(max_connections),
            shutdown: AtomicBool::new(false),
            live: LiveConnections::default(),
            draining: AtomicBool::new(false),
            restored: 0,
        })
    }

    /// Regression for the handler-thread slot leak: a panicking
    /// handler must still release its connection slot (via
    /// [`ConnSlot`]'s drop), or `wait_drained` wedges shutdown and
    /// repeated leaks turn the cap into a permanent `503`.
    #[test]
    fn conn_slot_released_even_when_the_holder_panics() {
        let ctx = test_ctx(1);
        let slot = ConnSlot::try_claim(&ctx).expect("cap of one, nothing live");
        assert!(
            ConnSlot::try_claim(&ctx).is_none(),
            "second claim must be refused at the cap"
        );
        let handler = std::thread::spawn(move || {
            let _slot = slot;
            panic!("handler blew up mid-connection");
        });
        assert!(handler.join().is_err(), "the handler must have panicked");
        let reclaimed =
            ConnSlot::try_claim(&ctx).expect("the panicked handler's slot must have been released");
        drop(reclaimed);
        // With every slot released, the drain returns immediately.
        ctx.live.wait_drained();
    }

    #[test]
    fn conn_slot_released_when_spawn_never_runs_the_closure() {
        let ctx = test_ctx(2);
        let slot = ConnSlot::try_claim(&ctx).expect("slot");
        // A failed `Builder::spawn` drops the unrun closure — and with
        // it the captured slot. Model that by dropping directly.
        drop(slot);
        ctx.live.wait_drained();
        assert!(ConnSlot::try_claim(&ctx).is_some());
    }
}
