//! The typed API surface of the HTTP front: request and response
//! structs with explicit [`Json`] codecs.
//!
//! Everything that crosses the wire has a struct here —
//! [`RecommendRequest`], [`SweepRequest`], [`CleanRequest`] /
//! [`CleanResponse`], [`PlanView`], [`StatsResponse`] — with
//! `from_json`/`to_json` (and `encode`/`decode` string conveniences)
//! that are the **single** source of truth for field names and
//! validation messages. The server routes decode requests through
//! these types, the [`ApiClient`](super::client::ApiClient) and the
//! load replayer encode through them, and the shard router decodes
//! responses through them to aggregate and compare — so a renamed
//! field breaks loudly at one definition instead of silently at N
//! hand-built call sites. The raw [`post`](super::client::post) /
//! [`get`](super::client::get) helpers stay public precisely so tests
//! can still send malformed bodies past the typed layer.

use fc_core::planner::service::{QuotaUsage, ServiceStats, TenantId};
use fc_core::{Budget, CacheStats, CoreError};

use super::json::Json;
use crate::planner::{Goal, Measure, ObjectiveSpec, Strategy};

/// A request that cannot be served, mapped to an HTTP status.
#[derive(Debug)]
pub struct ApiError {
    /// The response status code.
    pub status: u16,
    /// Human-readable detail (the response `error` field).
    pub message: String,
}

impl ApiError {
    /// A 400 with the given detail.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    /// A 404 with the given detail.
    pub fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
        }
    }

    /// A 502 with the given detail (a routing front could not get an
    /// answer from any upstream backend).
    pub fn bad_gateway(message: impl Into<String>) -> Self {
        Self {
            status: 502,
            message: message.into(),
        }
    }

    /// A 503 with the given detail (nothing available to serve the
    /// request right now — retrying later may succeed).
    pub fn unavailable(message: impl Into<String>) -> Self {
        Self {
            status: 503,
            message: message.into(),
        }
    }

    /// The `{"error": …}` response body.
    pub fn body(&self) -> String {
        Json::obj([("error", Json::Str(self.message.clone()))]).to_string()
    }
}

impl From<CoreError> for ApiError {
    /// Maps solver/service errors onto statuses: quota exhaustion is
    /// `429` (retry after in-flight work resolves); a contained worker
    /// panic is `500`, as is `Cancelled` (a request the *server*
    /// abandoned while the client still waits — unreachable through
    /// the normal disconnect path, which never responds at all);
    /// everything else — bad strategies, bad objects, refused problem
    /// shapes — is a `400` request error.
    fn from(e: CoreError) -> Self {
        let status = match &e {
            CoreError::QuotaExceeded { .. } => 429,
            CoreError::WorkerPanicked { .. } | CoreError::Cancelled => 500,
            _ => 400,
        };
        Self {
            status,
            message: e.to_string(),
        }
    }
}

/// Encodes a [`Goal`] the way every route writes it: `"minvar"` or
/// `{"maxpr": τ}`.
pub fn goal_json(goal: Goal) -> Json {
    match goal {
        Goal::MinVar => Json::Str("minvar".to_string()),
        Goal::MaxPr { tau } => Json::obj([("maxpr", Json::Num(tau))]),
        // `Goal` is non-exhaustive upstream; an unknown goal cannot be
        // submitted through this front, so this arm is unreachable
        // today and merely future-proof.
        _ => Json::Str("unknown".to_string()),
    }
}

fn goal_from_json(v: Option<&Json>) -> Result<Goal, ApiError> {
    match v {
        None => Ok(Goal::MinVar),
        Some(Json::Str(s)) if s == "minvar" => Ok(Goal::MinVar),
        Some(v) => match v.get("maxpr").and_then(Json::as_f64) {
            Some(tau) => Ok(Goal::MaxPr { tau }),
            None => Err(ApiError::bad_request(
                "bad \"goal\" (expected \"minvar\" or {\"maxpr\": τ})",
            )),
        },
    }
}

/// Parses the request body's `measure`/`goal`/`strategy` fields into
/// an [`ObjectiveSpec`]. `goal` defaults to MinVar (`"minvar"`); a
/// counterargument hunt is `{"maxpr": τ}`.
pub fn spec_from_json(body: &Json) -> Result<ObjectiveSpec, ApiError> {
    let measure = match body.get("measure").and_then(Json::as_str) {
        Some("bias") => Measure::Bias,
        Some("dup") => Measure::Dup,
        Some("frag") => Measure::Frag,
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "unknown measure {other:?} (expected \"bias\", \"dup\", or \"frag\")"
            )))
        }
        None => {
            return Err(ApiError::bad_request(
                "missing \"measure\" (\"bias\", \"dup\", or \"frag\")",
            ))
        }
    };
    let goal = goal_from_json(body.get("goal"))?;
    let mut spec = ObjectiveSpec::new(measure, goal);
    match body.get("strategy") {
        None => {}
        Some(Json::Str(name)) if name == "auto" => {}
        Some(Json::Str(name)) => spec = spec.with_strategy(name.clone()),
        Some(_) => {
            return Err(ApiError::bad_request(
                "bad \"strategy\" (expected a string)",
            ))
        }
    }
    Ok(spec)
}

/// Writes a spec's `measure`/`goal`/`strategy` fields into `fields`
/// (the shared half of recommend and sweep bodies).
fn push_spec_fields(fields: &mut Vec<(String, Json)>, spec: &ObjectiveSpec) {
    fields.push((
        "measure".to_string(),
        Json::Str(spec.measure.name().to_string()),
    ));
    fields.push(("goal".to_string(), goal_json(spec.goal)));
    if let Strategy::Named(name) = &spec.strategy {
        fields.push(("strategy".to_string(), Json::Str(name.clone())));
    }
}

/// A budget as it appears on the wire — possibly relative to a
/// stream's total cleaning cost, which only the server knows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetSpec {
    /// An absolute cleaning-cost budget.
    Absolute(u64),
    /// A fraction of the stream's total cleaning cost.
    Fraction(f64),
}

impl BudgetSpec {
    /// Parses one budget: a bare number, `{"absolute": n}`, or
    /// `{"fraction": f}`.
    pub fn from_json(v: &Json) -> Result<Self, ApiError> {
        if let Some(n) = v.as_u64() {
            return Ok(Self::Absolute(n));
        }
        if let Some(frac) = v.get("fraction").and_then(Json::as_f64) {
            return Ok(Self::Fraction(frac));
        }
        if let Some(n) = v.get("absolute").and_then(Json::as_u64) {
            return Ok(Self::Absolute(n));
        }
        Err(ApiError::bad_request(
            "bad budget (expected a non-negative integer, {\"absolute\": n}, or {\"fraction\": f})",
        ))
    }

    /// The wire encoding (inverse of [`BudgetSpec::from_json`]).
    pub fn to_json(&self) -> Json {
        match *self {
            Self::Absolute(n) => Json::Num(n as f64),
            Self::Fraction(f) => Json::obj([("fraction", Json::Num(f))]),
        }
    }

    /// Resolves against a stream's total cleaning cost.
    pub fn resolve(&self, total_cost: u64) -> Result<Budget, ApiError> {
        match *self {
            Self::Absolute(n) => Ok(Budget::absolute(n)),
            Self::Fraction(f) => Budget::try_fraction(total_cost, f).map_err(ApiError::from),
        }
    }
}

/// Parses one budget value and resolves it against `total_cost`.
pub fn budget_from_json(v: &Json, total_cost: u64) -> Result<Budget, ApiError> {
    BudgetSpec::from_json(v)?.resolve(total_cost)
}

/// The required `budget` field of a recommend request, resolved.
pub fn budget_field(body: &Json, total_cost: u64) -> Result<Budget, ApiError> {
    match body.get("budget") {
        Some(v) => budget_from_json(v, total_cost),
        None => Err(ApiError::bad_request("missing \"budget\"")),
    }
}

/// The required `budgets` array of a sweep request, resolved.
pub fn budgets_field(body: &Json, total_cost: u64) -> Result<Vec<Budget>, ApiError> {
    match body.get("budgets").and_then(Json::as_array) {
        Some(items) if !items.is_empty() => items
            .iter()
            .map(|v| budget_from_json(v, total_cost))
            .collect(),
        Some(_) => Err(ApiError::bad_request("\"budgets\" must be non-empty")),
        None => Err(ApiError::bad_request("missing \"budgets\" (an array)")),
    }
}

fn stream_field(body: &Json) -> Result<String, ApiError> {
    body.get("stream")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ApiError::bad_request("missing \"stream\" (a stream id)"))
}

/// `POST /v1/recommend`: one budget point on one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendRequest {
    /// The target stream id.
    pub stream: String,
    /// Measure, goal, and strategy.
    pub spec: ObjectiveSpec,
    /// The cleaning budget.
    pub budget: BudgetSpec,
}

impl RecommendRequest {
    /// The wire body.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("stream".to_string(), Json::Str(self.stream.clone()))];
        push_spec_fields(&mut fields, &self.spec);
        fields.push(("budget".to_string(), self.budget.to_json()));
        Json::Obj(fields)
    }

    /// Parses and validates a request body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let stream = stream_field(body)?;
        let spec = spec_from_json(body)?;
        let budget = match body.get("budget") {
            Some(v) => BudgetSpec::from_json(v)?,
            None => return Err(ApiError::bad_request("missing \"budget\"")),
        };
        Ok(Self {
            stream,
            spec,
            budget,
        })
    }

    /// The serialized body string.
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }
}

/// `POST /v1/sweep`: a budget sweep on one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// The target stream id.
    pub stream: String,
    /// Measure, goal, and strategy.
    pub spec: ObjectiveSpec,
    /// The budget points (non-empty).
    pub budgets: Vec<BudgetSpec>,
}

impl SweepRequest {
    /// The wire body.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("stream".to_string(), Json::Str(self.stream.clone()))];
        push_spec_fields(&mut fields, &self.spec);
        fields.push((
            "budgets".to_string(),
            Json::Arr(self.budgets.iter().map(BudgetSpec::to_json).collect()),
        ));
        Json::Obj(fields)
    }

    /// Parses and validates a request body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let stream = stream_field(body)?;
        let spec = spec_from_json(body)?;
        let budgets = match body.get("budgets").and_then(Json::as_array) {
            Some(items) if !items.is_empty() => items
                .iter()
                .map(BudgetSpec::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(ApiError::bad_request("\"budgets\" must be non-empty")),
            None => return Err(ApiError::bad_request("missing \"budgets\" (an array)")),
        };
        Ok(Self {
            stream,
            spec,
            budgets,
        })
    }

    /// The serialized body string.
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }
}

/// `POST /v1/streams/{id}/clean`: reveal cleaned values (the stream id
/// rides in the path, not the body).
#[derive(Debug, Clone, PartialEq)]
pub struct CleanRequest {
    /// The cleaned object indices.
    pub objects: Vec<usize>,
    /// The revealed true values, parallel to `objects`.
    pub revealed: Vec<f64>,
}

impl CleanRequest {
    /// The wire body.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "objects",
                Json::Arr(self.objects.iter().map(|&o| Json::Num(o as f64)).collect()),
            ),
            (
                "revealed",
                Json::Arr(self.revealed.iter().map(|&v| Json::Num(v)).collect()),
            ),
        ])
    }

    /// Parses and validates a request body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let objects: Vec<usize> = match body
            .get("objects")
            .and_then(Json::as_array)
            .map(|items| items.iter().map(Json::as_usize).collect::<Option<Vec<_>>>())
        {
            Some(Some(objects)) => objects,
            _ => {
                return Err(ApiError::bad_request(
                    "missing \"objects\" (an array of object indices)",
                ))
            }
        };
        let revealed: Vec<f64> = match body
            .get("revealed")
            .and_then(Json::as_array)
            .map(|items| items.iter().map(Json::as_f64).collect::<Option<Vec<_>>>())
        {
            Some(Some(revealed)) => revealed,
            _ => {
                return Err(ApiError::bad_request(
                    "missing \"revealed\" (an array of cleaned values)",
                ))
            }
        };
        Ok(Self { objects, revealed })
    }

    /// The serialized body string.
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }
}

/// The `200` body of a clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanResponse {
    /// Store entries invalidated by the re-fingerprinting.
    pub invalidated: usize,
    /// Objects marked cleaned.
    pub objects: usize,
}

impl CleanResponse {
    /// The wire body.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("invalidated", Json::Num(self.invalidated as f64)),
            ("objects", Json::Num(self.objects as f64)),
        ])
    }

    /// Parses a clean response body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let field = |name: &str| {
            body.get(name)
                .and_then(Json::as_usize)
                .ok_or_else(|| ApiError::bad_request(format!("clean response missing {name:?}")))
        };
        Ok(Self {
            invalidated: field("invalidated")?,
            objects: field("objects")?,
        })
    }
}

/// The observability half of a plan response — *excluded* from plan
/// identity (two byte-identical plans may differ here, e.g. a warm
/// replica reports `store_misses == 0` where a cold one rebuilt).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanDiagnosticsView {
    /// Query-term evaluations spent solving.
    pub engine_evals: u64,
    /// Candidate selections examined.
    pub candidates: u64,
    /// Engine lookups served warm by the shared store.
    pub store_hits: u64,
    /// Engine lookups that had to build.
    pub store_misses: u64,
}

/// A decoded plan response: the divergence-relevant identity fields
/// plus diagnostics. [`PlanView::identity_json`] re-encodes exactly
/// the fields [`Plan::divergence`](fc_core::Plan::divergence) covers,
/// so two plans are byte-identical there iff `divergence` is `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanView {
    /// The strategy that produced the plan.
    pub strategy: String,
    /// The goal solved.
    pub goal: Goal,
    /// The selected object indices.
    pub objects: Vec<usize>,
    /// The selection's cleaning cost.
    pub cost: u64,
    /// Objective value before cleaning.
    pub before: f64,
    /// Objective value after cleaning the selection.
    pub after: f64,
    /// Observability counters (not identity).
    pub diagnostics: PlanDiagnosticsView,
}

impl PlanView {
    /// Parses a plan object from a recommend response (or one element
    /// of a sweep response's `plans`).
    pub fn from_json(v: &Json) -> Result<Self, ApiError> {
        let missing = |name: &str| ApiError::bad_request(format!("plan missing {name:?}"));
        let strategy = v
            .get("strategy")
            .and_then(Json::as_str)
            .ok_or_else(|| missing("strategy"))?
            .to_string();
        let goal = goal_from_json(v.get("goal"))?;
        let objects = v
            .get("objects")
            .and_then(Json::as_array)
            .map(|items| items.iter().map(Json::as_usize).collect::<Option<Vec<_>>>())
            .ok_or_else(|| missing("objects"))?
            .ok_or_else(|| ApiError::bad_request("plan \"objects\" must be indices"))?;
        let cost = v
            .get("cost")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("cost"))?;
        let before = v
            .get("before")
            .and_then(Json::as_f64)
            .ok_or_else(|| missing("before"))?;
        let after = v
            .get("after")
            .and_then(Json::as_f64)
            .ok_or_else(|| missing("after"))?;
        let d = v.get("diagnostics").ok_or_else(|| missing("diagnostics"))?;
        let counter = |name: &str| {
            d.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ApiError::bad_request(format!("diagnostics missing {name:?}")))
        };
        Ok(Self {
            strategy,
            goal,
            objects,
            cost,
            before,
            after,
            diagnostics: PlanDiagnosticsView {
                engine_evals: counter("engine_evals")?,
                candidates: counter("candidates")?,
                store_hits: counter("store_hits")?,
                store_misses: counter("store_misses")?,
            },
        })
    }

    /// Re-encodes the identity fields in the server's canonical order
    /// and float formatting — the byte string the determinism gates
    /// compare. Diagnostics are deliberately absent.
    pub fn identity_json(&self) -> Json {
        Json::obj([
            ("strategy", Json::Str(self.strategy.clone())),
            ("goal", goal_json(self.goal)),
            (
                "objects",
                Json::Arr(self.objects.iter().map(|&o| Json::Num(o as f64)).collect()),
            ),
            ("cost", Json::Num(self.cost as f64)),
            ("before", Json::Num(self.before)),
            ("after", Json::Num(self.after)),
        ])
    }
}

/// A decoded `GET /v1/stats` body: service counters, store counters,
/// and per-tenant saturation. The shard router aggregates these across
/// backends into one body of the same shape, so every invariant a
/// load harness checks against a single box holds against a topology.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsResponse {
    /// The serving-layer counters and gauges.
    pub service: ServiceStats,
    /// The shared engine store's counters.
    pub store: CacheStats,
    /// Per-tenant usage, keyed by tenant name.
    pub tenants: Vec<(String, QuotaUsage)>,
}

impl StatsResponse {
    /// The wire body (the exact shape `GET /v1/stats` serves).
    pub fn to_json(&self) -> Json {
        let tenants: Vec<(TenantId, QuotaUsage)> = self
            .tenants
            .iter()
            .map(|(name, usage)| (TenantId::from(name.as_str()), *usage))
            .collect();
        super::wire::stats_json(&self.service, &self.store, &tenants)
    }

    /// Parses a stats body.
    // `ServiceStats`/`CacheStats`/`QuotaUsage` are `#[non_exhaustive]`
    // upstream, so field-by-field assignment over `Default` is the only
    // way to construct them here.
    #[allow(clippy::field_reassign_with_default)]
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let section = |name: &str| {
            body.get(name)
                .ok_or_else(|| ApiError::bad_request(format!("stats missing {name:?}")))
        };
        let u64_field = |obj: &Json, name: &str| {
            obj.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ApiError::bad_request(format!("stats missing counter {name:?}")))
        };
        let usize_field = |obj: &Json, name: &str| u64_field(obj, name).map(|v| v as usize);

        let svc = section("service")?;
        let mut service = ServiceStats::default();
        service.submitted = u64_field(svc, "submitted")?;
        service.completed = u64_field(svc, "completed")?;
        service.inline = u64_field(svc, "inline")?;
        service.interactive = u64_field(svc, "interactive")?;
        service.bulk = u64_field(svc, "bulk")?;
        service.panics = u64_field(svc, "panics")?;
        service.cancelled = u64_field(svc, "cancelled")?;
        service.quota_rejected = u64_field(svc, "quota_rejected")?;
        service.queued_interactive = usize_field(svc, "queued_interactive")?;
        service.queued_bulk = usize_field(svc, "queued_bulk")?;
        service.in_flight = u64_field(svc, "in_flight")?;
        service.running_interactive = usize_field(svc, "running_interactive")?;
        service.running_bulk = usize_field(svc, "running_bulk")?;

        let st = section("store")?;
        let mut store = CacheStats::default();
        store.hits = u64_field(st, "hits")?;
        store.misses = u64_field(st, "misses")?;
        store.evictions = u64_field(st, "evictions")?;
        store.scoped_builds = u64_field(st, "scoped_builds")?;
        store.scoped_build_evals = u64_field(st, "scoped_build_evals")?;
        store.invalidations = u64_field(st, "invalidations")?;
        store.entries = usize_field(st, "entries")?;

        let mut tenants = Vec::new();
        if let Some(Json::Obj(fields)) = body.get("tenants") {
            for (name, usage) in fields {
                let mut u = QuotaUsage::default();
                u.in_flight = usize_field(usage, "in_flight")?;
                u.outstanding_evals = u64_field(usage, "outstanding_evals")?;
                tenants.push((name.clone(), u));
            }
        }
        Ok(Self {
            service,
            store,
            tenants,
        })
    }

    /// Merges another stats body into this one by summing every
    /// counter and gauge (tenants merge by name). This is how the
    /// router aggregates backends: sums preserve the serving-layer
    /// invariants (`completed + cancelled == submitted`, zero gauges
    /// at drain) because each holds per backend.
    pub fn absorb(&mut self, other: &StatsResponse) {
        let s = &mut self.service;
        let o = &other.service;
        s.submitted += o.submitted;
        s.completed += o.completed;
        s.inline += o.inline;
        s.interactive += o.interactive;
        s.bulk += o.bulk;
        s.panics += o.panics;
        s.cancelled += o.cancelled;
        s.quota_rejected += o.quota_rejected;
        s.queued_interactive += o.queued_interactive;
        s.queued_bulk += o.queued_bulk;
        s.in_flight += o.in_flight;
        s.running_interactive += o.running_interactive;
        s.running_bulk += o.running_bulk;
        let t = &mut self.store;
        let u = &other.store;
        t.hits += u.hits;
        t.misses += u.misses;
        t.evictions += u.evictions;
        t.scoped_builds += u.scoped_builds;
        t.scoped_build_evals += u.scoped_build_evals;
        t.invalidations += u.invalidations;
        t.entries += u.entries;
        for (name, usage) in &other.tenants {
            match self.tenants.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => {
                    mine.in_flight += usage.in_flight;
                    mine.outstanding_evals += usage.outstanding_evals;
                }
                None => self.tenants.push((name.clone(), *usage)),
            }
        }
    }
}

/// Parses a body string and decodes it with `decode` — the shared
/// "UTF-8 → JSON → typed" prologue of every typed route and client.
pub fn decode_body<T>(
    text: &str,
    decode: impl FnOnce(&Json) -> Result<T, ApiError>,
) -> Result<T, ApiError> {
    let body = Json::parse(text).map_err(|e| ApiError::bad_request(format!("bad JSON: {e}")))?;
    decode(&body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommend_round_trips() {
        let req = RecommendRequest {
            stream: "cdc".into(),
            spec: ObjectiveSpec::new(Measure::Dup, Goal::MaxPr { tau: 5.5 })
                .with_strategy("greedy"),
            budget: BudgetSpec::Fraction(0.25),
        };
        let decoded = decode_body(&req.encode(), RecommendRequest::from_json).unwrap();
        assert_eq!(decoded, req);

        // Auto strategy and absolute budgets omit/append fields.
        let req = RecommendRequest {
            stream: "s".into(),
            spec: ObjectiveSpec::new(Measure::Bias, Goal::MinVar),
            budget: BudgetSpec::Absolute(4),
        };
        let body = req.encode();
        assert!(!body.contains("strategy"), "{body}");
        assert_eq!(
            decode_body(&body, RecommendRequest::from_json).unwrap(),
            req
        );
    }

    #[test]
    fn sweep_round_trips_and_validates() {
        let req = SweepRequest {
            stream: "cdc".into(),
            spec: ObjectiveSpec::new(Measure::Frag, Goal::MinVar),
            budgets: vec![BudgetSpec::Absolute(1), BudgetSpec::Fraction(0.5)],
        };
        let decoded = decode_body(&req.encode(), SweepRequest::from_json).unwrap();
        assert_eq!(decoded, req);
        for bad in [
            r#"{"stream":"s","measure":"dup","budgets":[]}"#,
            r#"{"stream":"s","measure":"dup"}"#,
            r#"{"measure":"dup","budgets":[1]}"#,
        ] {
            assert!(decode_body(bad, SweepRequest::from_json).is_err(), "{bad}");
        }
    }

    #[test]
    fn clean_round_trips() {
        let req = CleanRequest {
            objects: vec![3, 1],
            revealed: vec![0.5, -2.0],
        };
        let decoded = decode_body(&req.encode(), CleanRequest::from_json).unwrap();
        assert_eq!(decoded, req);
        let resp = CleanResponse {
            invalidated: 2,
            objects: 2,
        };
        assert_eq!(
            CleanResponse::from_json(&Json::parse(&resp.to_json().to_string()).unwrap()).unwrap(),
            resp
        );
    }

    #[test]
    fn plan_view_identity_excludes_diagnostics() {
        let body = r#"{"strategy":"greedy","goal":"minvar","objects":[2,0],"cost":3,
            "before":1.5,"after":0.25,
            "diagnostics":{"engine_evals":10,"candidates":4,"store_hits":2,"store_misses":1}}"#;
        let plan = decode_body(body, PlanView::from_json).unwrap();
        assert_eq!(plan.objects, vec![2, 0]);
        assert_eq!(plan.diagnostics.store_misses, 1);
        let identity = plan.identity_json().to_string();
        assert!(!identity.contains("diagnostics"));
        // A warm twin (different diagnostics) has identical identity bytes.
        let warm = PlanView {
            diagnostics: PlanDiagnosticsView::default(),
            ..plan.clone()
        };
        assert_eq!(identity, warm.identity_json().to_string());
    }

    #[allow(clippy::field_reassign_with_default)]
    fn usage(in_flight: usize, outstanding_evals: u64) -> QuotaUsage {
        // `QuotaUsage` is `#[non_exhaustive]` upstream: no literals.
        let mut u = QuotaUsage::default();
        u.in_flight = in_flight;
        u.outstanding_evals = outstanding_evals;
        u
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn stats_round_trip_and_absorb() {
        let mut a = StatsResponse::default();
        a.service.submitted = 5;
        a.service.completed = 4;
        a.service.cancelled = 1;
        a.store.hits = 7;
        a.store.entries = 2;
        a.tenants.push(("newsroom".into(), usage(1, 10)));
        let decoded =
            StatsResponse::from_json(&Json::parse(&a.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(decoded, a);

        let mut b = StatsResponse::default();
        b.service.submitted = 2;
        b.service.completed = 2;
        b.store.misses = 3;
        b.tenants.push(("newsroom".into(), usage(2, 1)));
        b.tenants.push(("api".into(), QuotaUsage::default()));
        a.absorb(&b);
        assert_eq!(a.service.submitted, 7);
        assert_eq!(a.service.completed, 6);
        assert_eq!(a.store.misses, 3);
        assert_eq!(a.tenants.len(), 2);
        assert_eq!(a.tenants[0].1.in_flight, 3);
        assert_eq!(a.tenants[0].1.outstanding_evals, 11);
    }
}
