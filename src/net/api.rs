//! The typed API surface of the HTTP front: request and response
//! structs with explicit [`Json`] codecs.
//!
//! Everything that crosses the wire has a struct here —
//! [`RecommendRequest`], [`SweepRequest`], [`CleanRequest`] /
//! [`CleanResponse`], [`CreateStreamRequest`] / [`StreamInfo`],
//! [`PlanView`], [`StatsResponse`] — with `from_json`/`to_json` (and
//! `encode`/`decode` string conveniences) that are the **single**
//! source of truth for field names and validation messages. The
//! server routes decode requests through these types, the
//! [`ApiClient`](super::client::ApiClient) and the load replayer
//! encode through them, and the shard router decodes responses
//! through them to aggregate and compare — so a renamed field breaks
//! loudly at one definition instead of silently at N hand-built call
//! sites. The raw [`post`](super::client::post) /
//! [`get`](super::client::get) helpers stay public precisely so tests
//! can still send malformed bodies past the typed layer.
//!
//! The response encoders whose *bytes* are contracts also live here:
//! [`plan_identity_json`] covers exactly the fields
//! [`Plan::divergence`](fc_core::Plan::divergence) covers (selection,
//! cost, goal, bit-exact objectives, strategy), with floats written
//! shortest-round-trip — so two plans encode to the same bytes iff
//! `divergence` reports `None`. The full [`plan_json`] adds the
//! diagnostics counters, which are observability, not plan content
//! (`divergence` ignores them; so do the gates).

use fc_claims::{ClaimSet, Direction, LinearClaim};
use fc_core::planner::service::{QuotaUsage, ServiceStats, TenantId};
use fc_core::{Budget, CacheStats, CoreError, GaussianInstance, Instance, Plan};
use fc_uncertain::DiscreteDist;

use super::json::Json;
use crate::planner::{Goal, Measure, ObjectiveSpec, Strategy};
use crate::session::DataModel;

/// A request that cannot be served, mapped to an HTTP status.
#[derive(Debug)]
pub struct ApiError {
    /// The response status code.
    pub status: u16,
    /// Human-readable detail (the response `error` field).
    pub message: String,
}

impl ApiError {
    /// A 400 with the given detail.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    /// A 404 with the given detail.
    pub fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
        }
    }

    /// A 502 with the given detail (a routing front could not get an
    /// answer from any upstream backend).
    pub fn bad_gateway(message: impl Into<String>) -> Self {
        Self {
            status: 502,
            message: message.into(),
        }
    }

    /// A 503 with the given detail (nothing available to serve the
    /// request right now — retrying later may succeed).
    pub fn unavailable(message: impl Into<String>) -> Self {
        Self {
            status: 503,
            message: message.into(),
        }
    }

    /// The `{"error": …}` response body.
    pub fn body(&self) -> String {
        Json::obj([("error", Json::Str(self.message.clone()))]).to_string()
    }
}

impl From<CoreError> for ApiError {
    /// Maps solver/service errors onto statuses: quota exhaustion is
    /// `429` (retry after in-flight work resolves); a contained worker
    /// panic is `500`, as is `Cancelled` (a request the *server*
    /// abandoned while the client still waits — unreachable through
    /// the normal disconnect path, which never responds at all);
    /// everything else — bad strategies, bad objects, refused problem
    /// shapes — is a `400` request error.
    fn from(e: CoreError) -> Self {
        let status = match &e {
            CoreError::QuotaExceeded { .. } => 429,
            CoreError::WorkerPanicked { .. } | CoreError::Cancelled => 500,
            _ => 400,
        };
        Self {
            status,
            message: e.to_string(),
        }
    }
}

/// Encodes a [`Goal`] the way every route writes it: `"minvar"` or
/// `{"maxpr": τ}`.
pub fn goal_json(goal: Goal) -> Json {
    match goal {
        Goal::MinVar => Json::Str("minvar".to_string()),
        Goal::MaxPr { tau } => Json::obj([("maxpr", Json::Num(tau))]),
        // `Goal` is non-exhaustive upstream; an unknown goal cannot be
        // submitted through this front, so this arm is unreachable
        // today and merely future-proof.
        _ => Json::Str("unknown".to_string()),
    }
}

fn goal_from_json(v: Option<&Json>) -> Result<Goal, ApiError> {
    match v {
        None => Ok(Goal::MinVar),
        Some(Json::Str(s)) if s == "minvar" => Ok(Goal::MinVar),
        Some(v) => match v.get("maxpr").and_then(Json::as_f64) {
            Some(tau) => Ok(Goal::MaxPr { tau }),
            None => Err(ApiError::bad_request(
                "bad \"goal\" (expected \"minvar\" or {\"maxpr\": τ})",
            )),
        },
    }
}

/// Parses the request body's `measure`/`goal`/`strategy` fields into
/// an [`ObjectiveSpec`]. `goal` defaults to MinVar (`"minvar"`); a
/// counterargument hunt is `{"maxpr": τ}`.
pub fn spec_from_json(body: &Json) -> Result<ObjectiveSpec, ApiError> {
    let measure = match body.get("measure").and_then(Json::as_str) {
        Some("bias") => Measure::Bias,
        Some("dup") => Measure::Dup,
        Some("frag") => Measure::Frag,
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "unknown measure {other:?} (expected \"bias\", \"dup\", or \"frag\")"
            )))
        }
        None => {
            return Err(ApiError::bad_request(
                "missing \"measure\" (\"bias\", \"dup\", or \"frag\")",
            ))
        }
    };
    let goal = goal_from_json(body.get("goal"))?;
    let mut spec = ObjectiveSpec::new(measure, goal);
    match body.get("strategy") {
        None => {}
        Some(Json::Str(name)) if name == "auto" => {}
        Some(Json::Str(name)) => spec = spec.with_strategy(name.clone()),
        Some(_) => {
            return Err(ApiError::bad_request(
                "bad \"strategy\" (expected a string)",
            ))
        }
    }
    Ok(spec)
}

/// Writes a spec's `measure`/`goal`/`strategy` fields into `fields`
/// (the shared half of recommend and sweep bodies).
fn push_spec_fields(fields: &mut Vec<(String, Json)>, spec: &ObjectiveSpec) {
    fields.push((
        "measure".to_string(),
        Json::Str(spec.measure.name().to_string()),
    ));
    fields.push(("goal".to_string(), goal_json(spec.goal)));
    if let Strategy::Named(name) = &spec.strategy {
        fields.push(("strategy".to_string(), Json::Str(name.clone())));
    }
}

/// A budget as it appears on the wire — possibly relative to a
/// stream's total cleaning cost, which only the server knows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetSpec {
    /// An absolute cleaning-cost budget.
    Absolute(u64),
    /// A fraction of the stream's total cleaning cost.
    Fraction(f64),
}

impl BudgetSpec {
    /// Parses one budget: a bare number, `{"absolute": n}`, or
    /// `{"fraction": f}`.
    pub fn from_json(v: &Json) -> Result<Self, ApiError> {
        if let Some(n) = v.as_u64() {
            return Ok(Self::Absolute(n));
        }
        if let Some(frac) = v.get("fraction").and_then(Json::as_f64) {
            return Ok(Self::Fraction(frac));
        }
        if let Some(n) = v.get("absolute").and_then(Json::as_u64) {
            return Ok(Self::Absolute(n));
        }
        Err(ApiError::bad_request(
            "bad budget (expected a non-negative integer, {\"absolute\": n}, or {\"fraction\": f})",
        ))
    }

    /// The wire encoding (inverse of [`BudgetSpec::from_json`]).
    pub fn to_json(&self) -> Json {
        match *self {
            Self::Absolute(n) => Json::Num(n as f64),
            Self::Fraction(f) => Json::obj([("fraction", Json::Num(f))]),
        }
    }

    /// Resolves against a stream's total cleaning cost.
    pub fn resolve(&self, total_cost: u64) -> Result<Budget, ApiError> {
        match *self {
            Self::Absolute(n) => Ok(Budget::absolute(n)),
            Self::Fraction(f) => Budget::try_fraction(total_cost, f).map_err(ApiError::from),
        }
    }
}

/// Parses one budget value and resolves it against `total_cost`.
pub fn budget_from_json(v: &Json, total_cost: u64) -> Result<Budget, ApiError> {
    BudgetSpec::from_json(v)?.resolve(total_cost)
}

/// The required `budget` field of a recommend request, resolved.
pub fn budget_field(body: &Json, total_cost: u64) -> Result<Budget, ApiError> {
    match body.get("budget") {
        Some(v) => budget_from_json(v, total_cost),
        None => Err(ApiError::bad_request("missing \"budget\"")),
    }
}

/// The required `budgets` array of a sweep request, resolved.
pub fn budgets_field(body: &Json, total_cost: u64) -> Result<Vec<Budget>, ApiError> {
    match body.get("budgets").and_then(Json::as_array) {
        Some(items) if !items.is_empty() => items
            .iter()
            .map(|v| budget_from_json(v, total_cost))
            .collect(),
        Some(_) => Err(ApiError::bad_request("\"budgets\" must be non-empty")),
        None => Err(ApiError::bad_request("missing \"budgets\" (an array)")),
    }
}

fn stream_field(body: &Json) -> Result<String, ApiError> {
    body.get("stream")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ApiError::bad_request("missing \"stream\" (a stream id)"))
}

/// `POST /v1/recommend`: one budget point on one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendRequest {
    /// The target stream id.
    pub stream: String,
    /// Measure, goal, and strategy.
    pub spec: ObjectiveSpec,
    /// The cleaning budget.
    pub budget: BudgetSpec,
}

impl RecommendRequest {
    /// The wire body.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("stream".to_string(), Json::Str(self.stream.clone()))];
        push_spec_fields(&mut fields, &self.spec);
        fields.push(("budget".to_string(), self.budget.to_json()));
        Json::Obj(fields)
    }

    /// Parses and validates a request body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let stream = stream_field(body)?;
        let spec = spec_from_json(body)?;
        let budget = match body.get("budget") {
            Some(v) => BudgetSpec::from_json(v)?,
            None => return Err(ApiError::bad_request("missing \"budget\"")),
        };
        Ok(Self {
            stream,
            spec,
            budget,
        })
    }

    /// The serialized body string.
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }
}

/// `POST /v1/sweep`: a budget sweep on one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// The target stream id.
    pub stream: String,
    /// Measure, goal, and strategy.
    pub spec: ObjectiveSpec,
    /// The budget points (non-empty).
    pub budgets: Vec<BudgetSpec>,
}

impl SweepRequest {
    /// The wire body.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("stream".to_string(), Json::Str(self.stream.clone()))];
        push_spec_fields(&mut fields, &self.spec);
        fields.push((
            "budgets".to_string(),
            Json::Arr(self.budgets.iter().map(BudgetSpec::to_json).collect()),
        ));
        Json::Obj(fields)
    }

    /// Parses and validates a request body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let stream = stream_field(body)?;
        let spec = spec_from_json(body)?;
        let budgets = match body.get("budgets").and_then(Json::as_array) {
            Some(items) if !items.is_empty() => items
                .iter()
                .map(BudgetSpec::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(ApiError::bad_request("\"budgets\" must be non-empty")),
            None => return Err(ApiError::bad_request("missing \"budgets\" (an array)")),
        };
        Ok(Self {
            stream,
            spec,
            budgets,
        })
    }

    /// The serialized body string.
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }
}

/// `POST /v1/streams/{id}/clean`: reveal cleaned values (the stream id
/// rides in the path, not the body).
#[derive(Debug, Clone, PartialEq)]
pub struct CleanRequest {
    /// The cleaned object indices.
    pub objects: Vec<usize>,
    /// The revealed true values, parallel to `objects`.
    pub revealed: Vec<f64>,
}

impl CleanRequest {
    /// The wire body.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "objects",
                Json::Arr(self.objects.iter().map(|&o| Json::Num(o as f64)).collect()),
            ),
            (
                "revealed",
                Json::Arr(self.revealed.iter().map(|&v| Json::Num(v)).collect()),
            ),
        ])
    }

    /// Parses and validates a request body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let objects: Vec<usize> = match body
            .get("objects")
            .and_then(Json::as_array)
            .map(|items| items.iter().map(Json::as_usize).collect::<Option<Vec<_>>>())
        {
            Some(Some(objects)) => objects,
            _ => {
                return Err(ApiError::bad_request(
                    "missing \"objects\" (an array of object indices)",
                ))
            }
        };
        let revealed: Vec<f64> = match body
            .get("revealed")
            .and_then(Json::as_array)
            .map(|items| items.iter().map(Json::as_f64).collect::<Option<Vec<_>>>())
        {
            Some(Some(revealed)) => revealed,
            _ => {
                return Err(ApiError::bad_request(
                    "missing \"revealed\" (an array of cleaned values)",
                ))
            }
        };
        Ok(Self { objects, revealed })
    }

    /// The serialized body string.
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }
}

/// The `200` body of a clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanResponse {
    /// Store entries invalidated by the re-fingerprinting.
    pub invalidated: usize,
    /// Objects marked cleaned.
    pub objects: usize,
}

impl CleanResponse {
    /// The wire body.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("invalidated", Json::Num(self.invalidated as f64)),
            ("objects", Json::Num(self.objects as f64)),
        ])
    }

    /// Parses a clean response body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let field = |name: &str| {
            body.get(name)
                .and_then(Json::as_usize)
                .ok_or_else(|| ApiError::bad_request(format!("clean response missing {name:?}")))
        };
        Ok(Self {
            invalidated: field("invalidated")?,
            objects: field("objects")?,
        })
    }
}

/// The observability half of a plan response — *excluded* from plan
/// identity (two byte-identical plans may differ here, e.g. a warm
/// replica reports `store_misses == 0` where a cold one rebuilt).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanDiagnosticsView {
    /// Query-term evaluations spent solving.
    pub engine_evals: u64,
    /// Candidate selections examined.
    pub candidates: u64,
    /// Engine lookups served warm by the shared store.
    pub store_hits: u64,
    /// Engine lookups that had to build.
    pub store_misses: u64,
}

/// A decoded plan response: the divergence-relevant identity fields
/// plus diagnostics. [`PlanView::identity_json`] re-encodes exactly
/// the fields [`Plan::divergence`](fc_core::Plan::divergence) covers,
/// so two plans are byte-identical there iff `divergence` is `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanView {
    /// The strategy that produced the plan.
    pub strategy: String,
    /// The goal solved.
    pub goal: Goal,
    /// The selected object indices.
    pub objects: Vec<usize>,
    /// The selection's cleaning cost.
    pub cost: u64,
    /// Objective value before cleaning.
    pub before: f64,
    /// Objective value after cleaning the selection.
    pub after: f64,
    /// Observability counters (not identity).
    pub diagnostics: PlanDiagnosticsView,
}

impl PlanView {
    /// Parses a plan object from a recommend response (or one element
    /// of a sweep response's `plans`).
    pub fn from_json(v: &Json) -> Result<Self, ApiError> {
        let missing = |name: &str| ApiError::bad_request(format!("plan missing {name:?}"));
        let strategy = v
            .get("strategy")
            .and_then(Json::as_str)
            .ok_or_else(|| missing("strategy"))?
            .to_string();
        let goal = goal_from_json(v.get("goal"))?;
        let objects = v
            .get("objects")
            .and_then(Json::as_array)
            .map(|items| items.iter().map(Json::as_usize).collect::<Option<Vec<_>>>())
            .ok_or_else(|| missing("objects"))?
            .ok_or_else(|| ApiError::bad_request("plan \"objects\" must be indices"))?;
        let cost = v
            .get("cost")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("cost"))?;
        let before = v
            .get("before")
            .and_then(Json::as_f64)
            .ok_or_else(|| missing("before"))?;
        let after = v
            .get("after")
            .and_then(Json::as_f64)
            .ok_or_else(|| missing("after"))?;
        let d = v.get("diagnostics").ok_or_else(|| missing("diagnostics"))?;
        let counter = |name: &str| {
            d.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ApiError::bad_request(format!("diagnostics missing {name:?}")))
        };
        Ok(Self {
            strategy,
            goal,
            objects,
            cost,
            before,
            after,
            diagnostics: PlanDiagnosticsView {
                engine_evals: counter("engine_evals")?,
                candidates: counter("candidates")?,
                store_hits: counter("store_hits")?,
                store_misses: counter("store_misses")?,
            },
        })
    }

    /// Re-encodes the identity fields in the server's canonical order
    /// and float formatting — the byte string the determinism gates
    /// compare. Diagnostics are deliberately absent.
    pub fn identity_json(&self) -> Json {
        Json::obj([
            ("strategy", Json::Str(self.strategy.clone())),
            ("goal", goal_json(self.goal)),
            (
                "objects",
                Json::Arr(self.objects.iter().map(|&o| Json::Num(o as f64)).collect()),
            ),
            ("cost", Json::Num(self.cost as f64)),
            ("before", Json::Num(self.before)),
            ("after", Json::Num(self.after)),
        ])
    }
}

/// The divergence-relevant fields of a plan (see the module docs):
/// equal encodings ⇔ [`Plan::divergence`](fc_core::Plan::divergence)
/// `None`.
pub fn plan_identity_json(plan: &Plan) -> Json {
    Json::obj([
        ("strategy", Json::Str(plan.strategy.clone())),
        ("goal", goal_json(plan.goal)),
        (
            "objects",
            Json::Arr(
                plan.selection
                    .objects()
                    .iter()
                    .map(|&o| Json::Num(o as f64))
                    .collect(),
            ),
        ),
        ("cost", Json::Num(plan.selection.cost() as f64)),
        ("before", Json::Num(plan.before)),
        ("after", Json::Num(plan.after)),
    ])
}

/// Full plan encoding: the identity fields plus the observability
/// diagnostics.
pub fn plan_json(plan: &Plan) -> Json {
    let Json::Obj(mut fields) = plan_identity_json(plan) else {
        unreachable!("plan_identity_json returns an object")
    };
    fields.push((
        "diagnostics".to_string(),
        Json::obj([
            (
                "engine_evals",
                Json::Num(plan.diagnostics.engine_evals as f64),
            ),
            ("candidates", Json::Num(plan.diagnostics.candidates as f64)),
            ("store_hits", Json::Num(plan.diagnostics.store_hits as f64)),
            (
                "store_misses",
                Json::Num(plan.diagnostics.store_misses as f64),
            ),
        ]),
    ));
    Json::Obj(fields)
}

/// `GET /v1/stats` body: the service counters and gauges, the shared
/// store's counters, and per-tenant saturation (every tenant with
/// in-flight work or an explicit quota policy).
pub fn stats_json(
    service: &ServiceStats,
    store: &CacheStats,
    tenants: &[(TenantId, QuotaUsage)],
) -> Json {
    Json::obj([
        (
            "service",
            Json::obj([
                ("submitted", Json::Num(service.submitted as f64)),
                ("completed", Json::Num(service.completed as f64)),
                ("inline", Json::Num(service.inline as f64)),
                ("interactive", Json::Num(service.interactive as f64)),
                ("bulk", Json::Num(service.bulk as f64)),
                ("panics", Json::Num(service.panics as f64)),
                ("cancelled", Json::Num(service.cancelled as f64)),
                ("quota_rejected", Json::Num(service.quota_rejected as f64)),
                (
                    "queued_interactive",
                    Json::Num(service.queued_interactive as f64),
                ),
                ("queued_bulk", Json::Num(service.queued_bulk as f64)),
                ("in_flight", Json::Num(service.in_flight as f64)),
                (
                    "running_interactive",
                    Json::Num(service.running_interactive as f64),
                ),
                ("running_bulk", Json::Num(service.running_bulk as f64)),
            ]),
        ),
        (
            "tenants",
            Json::Obj(
                tenants
                    .iter()
                    .map(|(tenant, usage)| {
                        (
                            tenant.name().to_string(),
                            Json::obj([
                                ("in_flight", Json::Num(usage.in_flight as f64)),
                                (
                                    "outstanding_evals",
                                    Json::Num(usage.outstanding_evals as f64),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "store",
            Json::obj([
                ("hits", Json::Num(store.hits as f64)),
                ("misses", Json::Num(store.misses as f64)),
                ("evictions", Json::Num(store.evictions as f64)),
                ("scoped_builds", Json::Num(store.scoped_builds as f64)),
                (
                    "scoped_build_evals",
                    Json::Num(store.scoped_build_evals as f64),
                ),
                ("invalidations", Json::Num(store.invalidations as f64)),
                ("entries", Json::Num(store.entries as f64)),
            ]),
        ),
    ])
}

/// A decoded `GET /v1/stats` body: service counters, store counters,
/// and per-tenant saturation. The shard router aggregates these across
/// backends into one body of the same shape, so every invariant a
/// load harness checks against a single box holds against a topology.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsResponse {
    /// The serving-layer counters and gauges.
    pub service: ServiceStats,
    /// The shared engine store's counters.
    pub store: CacheStats,
    /// Per-tenant usage, keyed by tenant name.
    pub tenants: Vec<(String, QuotaUsage)>,
}

impl StatsResponse {
    /// The wire body (the exact shape `GET /v1/stats` serves).
    pub fn to_json(&self) -> Json {
        let tenants: Vec<(TenantId, QuotaUsage)> = self
            .tenants
            .iter()
            .map(|(name, usage)| (TenantId::from(name.as_str()), *usage))
            .collect();
        stats_json(&self.service, &self.store, &tenants)
    }

    /// Parses a stats body.
    // `ServiceStats`/`CacheStats`/`QuotaUsage` are `#[non_exhaustive]`
    // upstream, so field-by-field assignment over `Default` is the only
    // way to construct them here.
    #[allow(clippy::field_reassign_with_default)]
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let section = |name: &str| {
            body.get(name)
                .ok_or_else(|| ApiError::bad_request(format!("stats missing {name:?}")))
        };
        let u64_field = |obj: &Json, name: &str| {
            obj.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ApiError::bad_request(format!("stats missing counter {name:?}")))
        };
        let usize_field = |obj: &Json, name: &str| u64_field(obj, name).map(|v| v as usize);

        let svc = section("service")?;
        let mut service = ServiceStats::default();
        service.submitted = u64_field(svc, "submitted")?;
        service.completed = u64_field(svc, "completed")?;
        service.inline = u64_field(svc, "inline")?;
        service.interactive = u64_field(svc, "interactive")?;
        service.bulk = u64_field(svc, "bulk")?;
        service.panics = u64_field(svc, "panics")?;
        service.cancelled = u64_field(svc, "cancelled")?;
        service.quota_rejected = u64_field(svc, "quota_rejected")?;
        service.queued_interactive = usize_field(svc, "queued_interactive")?;
        service.queued_bulk = usize_field(svc, "queued_bulk")?;
        service.in_flight = u64_field(svc, "in_flight")?;
        service.running_interactive = usize_field(svc, "running_interactive")?;
        service.running_bulk = usize_field(svc, "running_bulk")?;

        let st = section("store")?;
        let mut store = CacheStats::default();
        store.hits = u64_field(st, "hits")?;
        store.misses = u64_field(st, "misses")?;
        store.evictions = u64_field(st, "evictions")?;
        store.scoped_builds = u64_field(st, "scoped_builds")?;
        store.scoped_build_evals = u64_field(st, "scoped_build_evals")?;
        store.invalidations = u64_field(st, "invalidations")?;
        store.entries = usize_field(st, "entries")?;

        let mut tenants = Vec::new();
        if let Some(Json::Obj(fields)) = body.get("tenants") {
            for (name, usage) in fields {
                let mut u = QuotaUsage::default();
                u.in_flight = usize_field(usage, "in_flight")?;
                u.outstanding_evals = u64_field(usage, "outstanding_evals")?;
                tenants.push((name.clone(), u));
            }
        }
        Ok(Self {
            service,
            store,
            tenants,
        })
    }

    /// Merges another stats body into this one by summing every
    /// counter and gauge (tenants merge by name). This is how the
    /// router aggregates backends: sums preserve the serving-layer
    /// invariants (`completed + cancelled == submitted`, zero gauges
    /// at drain) because each holds per backend.
    pub fn absorb(&mut self, other: &StatsResponse) {
        let s = &mut self.service;
        let o = &other.service;
        s.submitted += o.submitted;
        s.completed += o.completed;
        s.inline += o.inline;
        s.interactive += o.interactive;
        s.bulk += o.bulk;
        s.panics += o.panics;
        s.cancelled += o.cancelled;
        s.quota_rejected += o.quota_rejected;
        s.queued_interactive += o.queued_interactive;
        s.queued_bulk += o.queued_bulk;
        s.in_flight += o.in_flight;
        s.running_interactive += o.running_interactive;
        s.running_bulk += o.running_bulk;
        let t = &mut self.store;
        let u = &other.store;
        t.hits += u.hits;
        t.misses += u.misses;
        t.evictions += u.evictions;
        t.scoped_builds += u.scoped_builds;
        t.scoped_build_evals += u.scoped_build_evals;
        t.invalidations += u.invalidations;
        t.entries += u.entries;
        for (name, usage) in &other.tenants {
            match self.tenants.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => {
                    mine.in_flight += usage.in_flight;
                    mine.outstanding_evals += usage.outstanding_evals;
                }
                None => self.tenants.push((name.clone(), *usage)),
            }
        }
    }
}

/// Parses a body string and decodes it with `decode` — the shared
/// "UTF-8 → JSON → typed" prologue of every typed route and client.
pub fn decode_body<T>(
    text: &str,
    decode: impl FnOnce(&Json) -> Result<T, ApiError>,
) -> Result<T, ApiError> {
    let body = Json::parse(text).map_err(|e| ApiError::bad_request(format!("bad JSON: {e}")))?;
    decode(&body)
}

fn f64_array(v: Option<&Json>, what: &str) -> Result<Vec<f64>, ApiError> {
    v.and_then(Json::as_array)
        .and_then(|items| items.iter().map(Json::as_f64).collect::<Option<Vec<_>>>())
        .ok_or_else(|| ApiError::bad_request(format!("missing {what:?} (an array of numbers)")))
}

fn u64_array(v: Option<&Json>, what: &str) -> Result<Vec<u64>, ApiError> {
    v.and_then(Json::as_array)
        .and_then(|items| items.iter().map(Json::as_u64).collect::<Option<Vec<_>>>())
        .ok_or_else(|| {
            ApiError::bad_request(format!(
                "missing {what:?} (an array of non-negative integers)"
            ))
        })
}

fn claim_json(claim: &LinearClaim) -> Json {
    Json::obj([
        (
            "terms",
            Json::Arr(
                claim
                    .terms()
                    .iter()
                    .map(|&(i, w)| Json::Arr(vec![Json::Num(i as f64), Json::Num(w)]))
                    .collect(),
            ),
        ),
        ("bias", Json::Num(claim.bias_term())),
    ])
}

fn claim_from_json(v: &Json) -> Result<LinearClaim, ApiError> {
    let terms = v
        .get("terms")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::bad_request("claim missing \"terms\" (an array of pairs)"))?
        .iter()
        .map(|pair| {
            let items = pair.as_array()?;
            match items {
                [object, weight] => Some((object.as_usize()?, weight.as_f64()?)),
                _ => None,
            }
        })
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| {
            ApiError::bad_request("claim \"terms\" must be [object index, weight] pairs")
        })?;
    let bias = match v.get("bias") {
        None => 0.0,
        Some(b) => b
            .as_f64()
            .ok_or_else(|| ApiError::bad_request("claim \"bias\" must be a number"))?,
    };
    LinearClaim::new(terms, bias).map_err(|e| ApiError::bad_request(e.to_string()))
}

/// Encodes a [`ClaimSet`] for the wire: the original claim, the
/// perturbation family, the (normalized) sensibilities, and the
/// strength direction. Inverse of [`claims_from_json`].
pub fn claims_json(claims: &ClaimSet) -> Json {
    Json::obj([
        ("original", claim_json(claims.original())),
        (
            "perturbations",
            Json::Arr(claims.perturbations().iter().map(claim_json).collect()),
        ),
        (
            "sensibilities",
            Json::Arr(
                claims
                    .sensibilities()
                    .iter()
                    .map(|&s| Json::Num(s))
                    .collect(),
            ),
        ),
        (
            "direction",
            Json::Str(
                match claims.direction() {
                    Direction::HigherIsStronger => "higher",
                    Direction::LowerIsStronger => "lower",
                }
                .to_string(),
            ),
        ),
    ])
}

/// Parses and validates a wire [`ClaimSet`]: perturbations and
/// sensibilities must be parallel, sensibilities non-negative with a
/// positive total (they are re-normalized to sum to 1, so a round
/// trip is stable).
pub fn claims_from_json(v: &Json) -> Result<ClaimSet, ApiError> {
    let original = claim_from_json(
        v.get("original")
            .ok_or_else(|| ApiError::bad_request("claims missing \"original\""))?,
    )?;
    let perturbations = v
        .get("perturbations")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::bad_request("claims missing \"perturbations\" (an array)"))?
        .iter()
        .map(claim_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let sensibilities = f64_array(v.get("sensibilities"), "sensibilities")?;
    let direction = match v.get("direction").and_then(Json::as_str) {
        Some("higher") => Direction::HigherIsStronger,
        Some("lower") => Direction::LowerIsStronger,
        _ => {
            return Err(ApiError::bad_request(
                "claims missing \"direction\" (\"higher\" or \"lower\")",
            ))
        }
    };
    ClaimSet::new(original, perturbations, sensibilities, direction)
        .map_err(|e| ApiError::bad_request(e.to_string()))
}

/// Encodes a [`DataModel`] for the wire: discrete marginals as
/// `{"discrete": {dists, current, costs}}`, independent Gaussians as
/// `{"gaussian": {means, sds, current, costs}}`. Correlated Gaussian
/// models have no wire encoding (covariance never crosses this front)
/// and are refused.
pub fn data_model_json(data: &DataModel) -> Result<Json, ApiError> {
    match data {
        DataModel::Discrete(instance) => Ok(Json::obj([(
            "discrete",
            Json::obj([
                (
                    "dists",
                    Json::Arr(
                        (0..instance.len())
                            .map(|i| {
                                let dist = instance.dist(i);
                                Json::obj([
                                    (
                                        "values",
                                        Json::Arr(
                                            dist.values().iter().map(|&v| Json::Num(v)).collect(),
                                        ),
                                    ),
                                    (
                                        "probs",
                                        Json::Arr(
                                            dist.probs().iter().map(|&p| Json::Num(p)).collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "current",
                    Json::Arr(instance.current().iter().map(|&v| Json::Num(v)).collect()),
                ),
                (
                    "costs",
                    Json::Arr(
                        instance
                            .costs()
                            .iter()
                            .map(|&c| Json::Num(c as f64))
                            .collect(),
                    ),
                ),
            ]),
        )])),
        DataModel::Gaussian(instance) => {
            if !instance.is_independent() {
                return Err(ApiError::bad_request(
                    "correlated Gaussian models have no wire encoding",
                ));
            }
            Ok(Json::obj([(
                "gaussian",
                Json::obj([
                    (
                        "means",
                        Json::Arr(
                            (0..instance.len())
                                .map(|i| Json::Num(instance.mean(i)))
                                .collect(),
                        ),
                    ),
                    (
                        "sds",
                        Json::Arr(
                            (0..instance.len())
                                .map(|i| Json::Num(instance.sd(i)))
                                .collect(),
                        ),
                    ),
                    (
                        "current",
                        Json::Arr(instance.current().iter().map(|&v| Json::Num(v)).collect()),
                    ),
                    (
                        "costs",
                        Json::Arr(
                            instance
                                .costs()
                                .iter()
                                .map(|&c| Json::Num(c as f64))
                                .collect(),
                        ),
                    ),
                ]),
            )]))
        }
    }
}

/// Parses and validates a wire [`DataModel`]. All the instance
/// invariants (parallel lengths, positive costs, valid probability
/// tables) are enforced here, so a decoded model is ready to build a
/// session from; violations map to typed 400s.
pub fn data_model_from_json(v: &Json) -> Result<DataModel, ApiError> {
    if let Some(d) = v.get("discrete") {
        let dists = d
            .get("dists")
            .and_then(Json::as_array)
            .ok_or_else(|| ApiError::bad_request("discrete data missing \"dists\" (an array)"))?
            .iter()
            .map(|dist| {
                let values = f64_array(dist.get("values"), "values")?;
                let probs = f64_array(dist.get("probs"), "probs")?;
                DiscreteDist::from_parts(&values, &probs)
                    .map_err(|e| ApiError::from(CoreError::from(e)))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let current = f64_array(d.get("current"), "current")?;
        let costs = u64_array(d.get("costs"), "costs")?;
        return Instance::new(dists, current, costs)
            .map(DataModel::Discrete)
            .map_err(ApiError::from);
    }
    if let Some(g) = v.get("gaussian") {
        let means = f64_array(g.get("means"), "means")?;
        let sds = f64_array(g.get("sds"), "sds")?;
        let current = f64_array(g.get("current"), "current")?;
        let costs = u64_array(g.get("costs"), "costs")?;
        if sds.len() != means.len() {
            return Err(ApiError::from(CoreError::LengthMismatch {
                what: "sds",
                expected: means.len(),
                got: sds.len(),
            }));
        }
        return GaussianInstance::independent(means, &sds, current, costs)
            .map(DataModel::Gaussian)
            .map_err(ApiError::from);
    }
    Err(ApiError::bad_request(
        "data must be {\"discrete\": …} or {\"gaussian\": …}",
    ))
}

/// `POST /v1/streams`: create a stream from an uploaded dataset. The
/// decoded payload is fully validated — the server only has to build a
/// session around it.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateStreamRequest {
    /// The new stream's id.
    pub id: String,
    /// Default tenant for the stream's submissions (optional).
    pub tenant: Option<String>,
    /// Reference value `θ` override (default: the original claim's
    /// value on the current data).
    pub theta: Option<f64>,
    /// Support size for Gaussian discretization under non-affine
    /// measures (optional).
    pub discretize_support: Option<usize>,
    /// The uncertain data.
    pub data: DataModel,
    /// The claim family under check.
    pub claims: ClaimSet,
}

impl CreateStreamRequest {
    /// The wire body. Fails only for data with no wire encoding
    /// (a correlated Gaussian model).
    pub fn to_json(&self) -> Result<Json, ApiError> {
        let mut fields = vec![("id".to_string(), Json::Str(self.id.clone()))];
        if let Some(tenant) = &self.tenant {
            fields.push(("tenant".to_string(), Json::Str(tenant.clone())));
        }
        if let Some(theta) = self.theta {
            fields.push(("theta".to_string(), Json::Num(theta)));
        }
        if let Some(k) = self.discretize_support {
            fields.push(("discretize_support".to_string(), Json::Num(k as f64)));
        }
        fields.push(("data".to_string(), data_model_json(&self.data)?));
        fields.push(("claims".to_string(), claims_json(&self.claims)));
        Ok(Json::Obj(fields))
    }

    /// Parses and validates a request body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let id = body
            .get("id")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ApiError::bad_request("missing \"id\" (the new stream's id)"))?;
        if id.is_empty() {
            return Err(ApiError::bad_request("\"id\" must be non-empty"));
        }
        let tenant = match body.get("tenant") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| ApiError::bad_request("\"tenant\" must be a string"))?
                    .to_string(),
            ),
        };
        let theta = match body.get("theta") {
            None => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| ApiError::bad_request("\"theta\" must be a number"))?,
            ),
        };
        let discretize_support = match body.get("discretize_support") {
            None => None,
            Some(v) => Some(v.as_usize().ok_or_else(|| {
                ApiError::bad_request("\"discretize_support\" must be a non-negative integer")
            })?),
        };
        let data = data_model_from_json(
            body.get("data")
                .ok_or_else(|| ApiError::bad_request("missing \"data\""))?,
        )?;
        let claims = claims_from_json(
            body.get("claims")
                .ok_or_else(|| ApiError::bad_request("missing \"claims\""))?,
        )?;
        if let Some(&object) = claims
            .original()
            .objects()
            .iter()
            .chain(claims.perturbations().iter().flat_map(|p| {
                // Indices live in sorted sparse terms; borrow-friendly
                // iteration over each perturbation's objects.
                p.terms().iter().map(|(i, _)| i)
            }))
            .find(|&&i| i >= data.len())
        {
            return Err(ApiError::from(CoreError::BadObject {
                object,
                len: data.len(),
            }));
        }
        Ok(Self {
            id,
            tenant,
            theta,
            discretize_support,
            data,
            claims,
        })
    }

    /// The serialized body string (fallible like
    /// [`CreateStreamRequest::to_json`]).
    pub fn encode(&self) -> Result<String, ApiError> {
        Ok(self.to_json()?.to_string())
    }
}

/// The `GET /v1/streams/{id}` body (and the `201` body of a create):
/// a summary of one live stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInfo {
    /// The stream id.
    pub id: String,
    /// The default tenant its submissions are accounted to.
    pub tenant: String,
    /// `"discrete"` or `"gaussian"`.
    pub model: String,
    /// Number of objects in the dataset.
    pub objects: usize,
    /// Total cost of cleaning everything.
    pub total_cost: u64,
    /// The original claim's reference value `θ`.
    pub theta: f64,
    /// Number of perturbations in the claim family.
    pub perturbations: usize,
}

impl StreamInfo {
    /// The wire body.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("tenant", Json::Str(self.tenant.clone())),
            ("model", Json::Str(self.model.clone())),
            ("objects", Json::Num(self.objects as f64)),
            ("total_cost", Json::Num(self.total_cost as f64)),
            ("theta", Json::Num(self.theta)),
            ("perturbations", Json::Num(self.perturbations as f64)),
        ])
    }

    /// Parses a stream summary body.
    pub fn from_json(v: &Json) -> Result<Self, ApiError> {
        let missing = |name: &str| ApiError::bad_request(format!("stream info missing {name:?}"));
        let str_field = |name: &str| {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| missing(name))
        };
        Ok(Self {
            id: str_field("id")?,
            tenant: str_field("tenant")?,
            model: str_field("model")?,
            objects: v
                .get("objects")
                .and_then(Json::as_usize)
                .ok_or_else(|| missing("objects"))?,
            total_cost: v
                .get("total_cost")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("total_cost"))?,
            theta: v
                .get("theta")
                .and_then(Json::as_f64)
                .ok_or_else(|| missing("theta"))?,
            perturbations: v
                .get("perturbations")
                .and_then(Json::as_usize)
                .ok_or_else(|| missing("perturbations"))?,
        })
    }
}

// ------------------------------------------------------------ base64

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard padded base64 — the wire encoding for binary cache-slice
/// payloads riding inside JSON string fields (`std` has no codec).
pub fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let quads = [
            b[0] >> 2,
            ((b[0] & 0b11) << 4) | (b[1] >> 4),
            ((b[1] & 0b1111) << 2) | (b[2] >> 6),
            b[2] & 0b11_1111,
        ];
        for (i, q) in quads.into_iter().enumerate() {
            if i <= chunk.len() {
                out.push(BASE64_ALPHABET[q as usize] as char);
            } else {
                out.push('=');
            }
        }
    }
    out
}

/// Inverse of [`base64_encode`]. Rejects bad lengths, characters
/// outside the alphabet, and misplaced padding with a `400`-shaped
/// [`ApiError`].
pub fn base64_decode(text: &str) -> Result<Vec<u8>, ApiError> {
    let bad = || ApiError::bad_request("invalid base64 payload");
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(bad());
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let mut vals = [0u8; 4];
        let mut pad = 0usize;
        for (j, &c) in quad.iter().enumerate() {
            if c == b'=' {
                // Padding is legal only in the last quad's tail.
                if !last || j < 2 || quad[j..].iter().any(|&t| t != b'=') {
                    return Err(bad());
                }
                pad = 4 - j;
                break;
            }
            vals[j] = match c {
                b'A'..=b'Z' => c - b'A',
                b'a'..=b'z' => c - b'a' + 26,
                b'0'..=b'9' => c - b'0' + 52,
                b'+' => 62,
                b'/' => 63,
                _ => return Err(bad()),
            };
        }
        let triple = [
            (vals[0] << 2) | (vals[1] >> 4),
            (vals[1] << 4) | (vals[2] >> 2),
            (vals[2] << 6) | vals[3],
        ];
        out.extend_from_slice(&triple[..3 - pad.min(2)]);
    }
    Ok(out)
}

// ------------------------------------------------- snapshot transfer

/// The `GET /v1/streams/{id}/snapshot` body: everything a peer needs
/// to host a byte-identical replica of one stream — the full stream
/// definition (dataset included, so no re-upload round-trip) plus the
/// warm per-stream cache slice, one checksummed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotTransfer {
    /// The stream's complete definition, exactly as a create would
    /// carry it (id, tenant, θ, discretization width, data, claims).
    pub definition: CreateStreamRequest,
    /// The per-stream cache slice (`snapshot_stream_bytes` format:
    /// versioned, scope-fingerprinted, checksummed). Empty when the
    /// stream has no warm entries yet.
    pub cache_slice: Vec<u8>,
    /// Warm entries carried in the slice (what the exporter counted).
    pub warm_entries: usize,
}

impl SnapshotTransfer {
    /// The wire body. Fails only for data with no wire encoding.
    pub fn to_json(&self) -> Result<Json, ApiError> {
        Ok(Json::obj([
            ("definition", self.definition.to_json()?),
            ("cache_slice", Json::Str(base64_encode(&self.cache_slice))),
            ("warm_entries", Json::Num(self.warm_entries as f64)),
        ]))
    }

    /// Parses and validates a transfer body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        let definition = CreateStreamRequest::from_json(
            body.get("definition")
                .ok_or_else(|| ApiError::bad_request("missing \"definition\""))?,
        )?;
        let cache_slice = base64_decode(
            body.get("cache_slice")
                .and_then(Json::as_str)
                .ok_or_else(|| ApiError::bad_request("missing \"cache_slice\""))?,
        )?;
        let warm_entries = body
            .get("warm_entries")
            .and_then(Json::as_usize)
            .ok_or_else(|| ApiError::bad_request("missing \"warm_entries\""))?;
        Ok(Self {
            definition,
            cache_slice,
            warm_entries,
        })
    }

    /// The serialized body string (fallible like
    /// [`SnapshotTransfer::to_json`]).
    pub fn encode(&self) -> Result<String, ApiError> {
        Ok(self.to_json()?.to_string())
    }
}

/// `POST /v1/streams/{id}/adopt`: install a replicated stream from a
/// peer's [`SnapshotTransfer`]. The body is the transfer itself — a
/// snapshot response can be adopted verbatim — so this type is a
/// semantic wrapper sharing the codec.
#[derive(Debug, Clone, PartialEq)]
pub struct AdoptRequest {
    /// The peer's snapshot of the stream being adopted.
    pub transfer: SnapshotTransfer,
}

impl AdoptRequest {
    /// The wire body (identical to the transfer's).
    pub fn to_json(&self) -> Result<Json, ApiError> {
        self.transfer.to_json()
    }

    /// Parses an adopt body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        Ok(Self {
            transfer: SnapshotTransfer::from_json(body)?,
        })
    }

    /// The serialized body string.
    pub fn encode(&self) -> Result<String, ApiError> {
        self.transfer.encode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_covers_measures_goals_strategies() {
        let spec = spec_from_json(&Json::parse(r#"{"measure":"dup"}"#).unwrap()).unwrap();
        assert_eq!(spec.measure, Measure::Dup);
        assert_eq!(spec.goal, Goal::MinVar);
        assert_eq!(spec.strategy, Strategy::Auto);

        let spec = spec_from_json(
            &Json::parse(r#"{"measure":"bias","goal":{"maxpr":5.5},"strategy":"greedy"}"#).unwrap(),
        )
        .unwrap();
        assert!(matches!(spec.goal, Goal::MaxPr { tau } if tau == 5.5));
        assert_eq!(spec.strategy.key(), "greedy");

        let spec = spec_from_json(
            &Json::parse(r#"{"measure":"frag","goal":"minvar","strategy":"auto"}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(spec.strategy, Strategy::Auto);

        for bad in [
            r#"{}"#,
            r#"{"measure":"nope"}"#,
            r#"{"measure":"dup","goal":"nope"}"#,
            r#"{"measure":"dup","goal":{"maxpr":"x"}}"#,
            r#"{"measure":"dup","strategy":3}"#,
        ] {
            let err = spec_from_json(&Json::parse(bad).unwrap()).unwrap_err();
            assert_eq!(err.status, 400, "{bad}");
        }
    }

    #[test]
    fn budget_parsing() {
        assert_eq!(
            budget_from_json(&Json::Num(3.0), 10).unwrap(),
            Budget::absolute(3)
        );
        assert_eq!(
            budget_from_json(&Json::parse(r#"{"absolute":4}"#).unwrap(), 10).unwrap(),
            Budget::absolute(4)
        );
        assert_eq!(
            budget_from_json(&Json::parse(r#"{"fraction":0.5}"#).unwrap(), 10).unwrap(),
            Budget::absolute(5)
        );
        for bad in ["-1", "1.5", r#"{"fraction":"x"}"#, "\"x\""] {
            assert!(
                budget_from_json(&Json::parse(bad).unwrap(), 10).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    fn core_errors_map_to_statuses() {
        assert_eq!(
            ApiError::from(CoreError::QuotaExceeded {
                tenant: "t".into(),
                reason: "r".into()
            })
            .status,
            429
        );
        assert_eq!(
            ApiError::from(CoreError::WorkerPanicked { detail: "d".into() }).status,
            500
        );
        assert_eq!(
            ApiError::from(CoreError::UnknownStrategy { name: "n".into() }).status,
            400
        );
    }

    #[test]
    fn recommend_round_trips() {
        let req = RecommendRequest {
            stream: "cdc".into(),
            spec: ObjectiveSpec::new(Measure::Dup, Goal::MaxPr { tau: 5.5 })
                .with_strategy("greedy"),
            budget: BudgetSpec::Fraction(0.25),
        };
        let decoded = decode_body(&req.encode(), RecommendRequest::from_json).unwrap();
        assert_eq!(decoded, req);

        // Auto strategy and absolute budgets omit/append fields.
        let req = RecommendRequest {
            stream: "s".into(),
            spec: ObjectiveSpec::new(Measure::Bias, Goal::MinVar),
            budget: BudgetSpec::Absolute(4),
        };
        let body = req.encode();
        assert!(!body.contains("strategy"), "{body}");
        assert_eq!(
            decode_body(&body, RecommendRequest::from_json).unwrap(),
            req
        );
    }

    #[test]
    fn sweep_round_trips_and_validates() {
        let req = SweepRequest {
            stream: "cdc".into(),
            spec: ObjectiveSpec::new(Measure::Frag, Goal::MinVar),
            budgets: vec![BudgetSpec::Absolute(1), BudgetSpec::Fraction(0.5)],
        };
        let decoded = decode_body(&req.encode(), SweepRequest::from_json).unwrap();
        assert_eq!(decoded, req);
        for bad in [
            r#"{"stream":"s","measure":"dup","budgets":[]}"#,
            r#"{"stream":"s","measure":"dup"}"#,
            r#"{"measure":"dup","budgets":[1]}"#,
        ] {
            assert!(decode_body(bad, SweepRequest::from_json).is_err(), "{bad}");
        }
    }

    #[test]
    fn clean_round_trips() {
        let req = CleanRequest {
            objects: vec![3, 1],
            revealed: vec![0.5, -2.0],
        };
        let decoded = decode_body(&req.encode(), CleanRequest::from_json).unwrap();
        assert_eq!(decoded, req);
        let resp = CleanResponse {
            invalidated: 2,
            objects: 2,
        };
        assert_eq!(
            CleanResponse::from_json(&Json::parse(&resp.to_json().to_string()).unwrap()).unwrap(),
            resp
        );
    }

    #[test]
    fn plan_view_identity_excludes_diagnostics() {
        let body = r#"{"strategy":"greedy","goal":"minvar","objects":[2,0],"cost":3,
            "before":1.5,"after":0.25,
            "diagnostics":{"engine_evals":10,"candidates":4,"store_hits":2,"store_misses":1}}"#;
        let plan = decode_body(body, PlanView::from_json).unwrap();
        assert_eq!(plan.objects, vec![2, 0]);
        assert_eq!(plan.diagnostics.store_misses, 1);
        let identity = plan.identity_json().to_string();
        assert!(!identity.contains("diagnostics"));
        // A warm twin (different diagnostics) has identical identity bytes.
        let warm = PlanView {
            diagnostics: PlanDiagnosticsView::default(),
            ..plan.clone()
        };
        assert_eq!(identity, warm.identity_json().to_string());
    }

    fn discrete_model() -> DataModel {
        DataModel::Discrete(
            Instance::new(
                vec![
                    DiscreteDist::from_parts(&[9.0, 10.0, 11.0], &[0.25, 0.5, 0.25]).unwrap(),
                    DiscreteDist::from_parts(&[19.0, 21.0], &[0.5, 0.5]).unwrap(),
                ],
                vec![10.0, 20.0],
                vec![1, 2],
            )
            .unwrap(),
        )
    }

    fn two_object_claims() -> ClaimSet {
        ClaimSet::new(
            LinearClaim::new([(0, 1.0), (1, 1.0)], 0.0).unwrap(),
            vec![
                LinearClaim::new([(0, 1.0)], 2.5).unwrap(),
                LinearClaim::new([(1, -1.0)], 0.0).unwrap(),
            ],
            vec![3.0, 1.0],
            Direction::HigherIsStronger,
        )
        .unwrap()
    }

    #[test]
    fn create_stream_round_trips_both_models() {
        let req = CreateStreamRequest {
            id: "cdc".into(),
            tenant: Some("newsroom".into()),
            theta: Some(30.0),
            discretize_support: Some(4),
            data: discrete_model(),
            claims: two_object_claims(),
        };
        let body = req.encode().unwrap();
        let decoded = decode_body(&body, CreateStreamRequest::from_json).unwrap();
        assert_eq!(decoded, req);
        // Re-encoding the decoded request is byte-stable (sensibilities
        // land normalized, term lists sorted).
        assert_eq!(decoded.encode().unwrap(), body);

        let req = CreateStreamRequest {
            id: "gauss".into(),
            tenant: None,
            theta: None,
            discretize_support: None,
            data: DataModel::Gaussian(
                GaussianInstance::independent(
                    vec![10.0, 20.0],
                    &[1.0, 0.5],
                    vec![10.5, 19.5],
                    vec![2, 3],
                )
                .unwrap(),
            ),
            claims: two_object_claims(),
        };
        let body = req.encode().unwrap();
        assert!(!body.contains("tenant"), "{body}");
        let decoded = decode_body(&body, CreateStreamRequest::from_json).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn create_stream_rejections_are_typed_400s() {
        let good = CreateStreamRequest {
            id: "s".into(),
            tenant: None,
            theta: None,
            discretize_support: None,
            data: discrete_model(),
            claims: two_object_claims(),
        };
        let Json::Obj(fields) = good.to_json().unwrap() else {
            unreachable!()
        };
        let without = |name: &str| {
            Json::Obj(
                fields
                    .iter()
                    .filter(|(k, _)| k != name)
                    .cloned()
                    .collect::<Vec<_>>(),
            )
            .to_string()
        };
        for (body, needle) in [
            (without("id"), "\"id\""),
            (without("data"), "\"data\""),
            (without("claims"), "\"claims\""),
        ] {
            let err = decode_body(&body, CreateStreamRequest::from_json).unwrap_err();
            assert_eq!(err.status, 400, "{body}");
            assert!(err.message.contains(needle), "{}", err.message);
        }

        // Instance invariants surface as 400s: mismatched lengths, zero
        // costs, bad probability tables, out-of-range claim objects.
        for bad in [
            r#"{"discrete":{"dists":[{"values":[1],"probs":[1]}],"current":[1,2],"costs":[1]}}"#,
            r#"{"discrete":{"dists":[{"values":[1],"probs":[1]}],"current":[1],"costs":[0]}}"#,
            r#"{"discrete":{"dists":[{"values":[1],"probs":[0.4]}],"current":[1],"costs":[1]}}"#,
            r#"{"gaussian":{"means":[1,2],"sds":[1],"current":[1,2],"costs":[1,1]}}"#,
            r#"{"nope":{}}"#,
        ] {
            let err = data_model_from_json(&Json::parse(bad).unwrap()).unwrap_err();
            assert_eq!(err.status, 400, "{bad}");
        }
        let wide_claim = Json::parse(
            r#"{"id":"s","data":{"discrete":{"dists":[{"values":[1],"probs":[1]}],
                "current":[1],"costs":[1]}},
                "claims":{"original":{"terms":[[7,1]],"bias":0},
                "perturbations":[],"sensibilities":[],"direction":"higher"}}"#,
        )
        .unwrap();
        // An empty perturbation family is also invalid, but the
        // out-of-range object is checked against a 1-object dataset
        // only after the claims parse, so give it one perturbation.
        let wide_claim = Json::parse(
            &wide_claim
                .to_string()
                .replace(
                    "\"perturbations\":[]",
                    "\"perturbations\":[{\"terms\":[[0,1]]}]",
                )
                .replace("\"sensibilities\":[]", "\"sensibilities\":[1]"),
        )
        .unwrap();
        let err = CreateStreamRequest::from_json(&wide_claim).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("out of range"), "{}", err.message);
    }

    #[test]
    fn correlated_gaussian_has_no_wire_encoding() {
        let mvn = fc_uncertain::MultivariateNormal::new(
            vec![0.0, 0.0],
            fc_uncertain::SymMatrix::from_rows(2, &[1.0, 0.5, 0.5, 1.0]).unwrap(),
        )
        .unwrap();
        let data = DataModel::Gaussian(
            GaussianInstance::with_mvn(mvn, vec![0.0, 0.0], vec![1, 1]).unwrap(),
        );
        let err = data_model_json(&data).unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn stream_info_round_trips() {
        let info = StreamInfo {
            id: "cdc".into(),
            tenant: "newsroom".into(),
            model: "discrete".into(),
            objects: 5,
            total_cost: 9,
            theta: 30.5,
            perturbations: 3,
        };
        let decoded =
            StreamInfo::from_json(&Json::parse(&info.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(decoded, info);
        assert!(StreamInfo::from_json(&Json::parse("{}").unwrap()).is_err());
    }

    #[allow(clippy::field_reassign_with_default)]
    fn usage(in_flight: usize, outstanding_evals: u64) -> QuotaUsage {
        // `QuotaUsage` is `#[non_exhaustive]` upstream: no literals.
        let mut u = QuotaUsage::default();
        u.in_flight = in_flight;
        u.outstanding_evals = outstanding_evals;
        u
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn stats_round_trip_and_absorb() {
        let mut a = StatsResponse::default();
        a.service.submitted = 5;
        a.service.completed = 4;
        a.service.cancelled = 1;
        a.store.hits = 7;
        a.store.entries = 2;
        a.tenants.push(("newsroom".into(), usage(1, 10)));
        let decoded =
            StatsResponse::from_json(&Json::parse(&a.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(decoded, a);

        let mut b = StatsResponse::default();
        b.service.submitted = 2;
        b.service.completed = 2;
        b.store.misses = 3;
        b.tenants.push(("newsroom".into(), usage(2, 1)));
        b.tenants.push(("api".into(), QuotaUsage::default()));
        a.absorb(&b);
        assert_eq!(a.service.submitted, 7);
        assert_eq!(a.service.completed, 6);
        assert_eq!(a.store.misses, 3);
        assert_eq!(a.tenants.len(), 2);
        assert_eq!(a.tenants[0].1.in_flight, 3);
        assert_eq!(a.tenants[0].1.outstanding_evals, 11);
    }

    #[test]
    fn base64_round_trips_and_matches_reference_vectors() {
        // RFC 4648 test vectors.
        for (plain, encoded) in [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ] {
            assert_eq!(base64_encode(plain.as_bytes()), encoded);
            assert_eq!(base64_decode(encoded).unwrap(), plain.as_bytes());
        }
        // Every byte value survives.
        let all: Vec<u8> = (0..=255).collect();
        assert_eq!(base64_decode(&base64_encode(&all)).unwrap(), all);
        for bad in ["Zg=", "====", "Zg=a", "Z***", "=Zg=", "Zm9v=A=="] {
            assert_eq!(base64_decode(bad).unwrap_err().status, 400, "{bad}");
        }
    }

    #[test]
    fn snapshot_transfer_round_trips_and_adopts_verbatim() {
        let transfer = SnapshotTransfer {
            definition: CreateStreamRequest {
                id: "cdc".into(),
                tenant: Some("newsroom".into()),
                theta: Some(30.0),
                discretize_support: None,
                data: discrete_model(),
                claims: two_object_claims(),
            },
            cache_slice: vec![0xFC, 0x00, 0x5A, 0xFF, 0x01],
            warm_entries: 3,
        };
        let body = transfer.encode().unwrap();
        let decoded = decode_body(&body, SnapshotTransfer::from_json).unwrap();
        assert_eq!(decoded, transfer);
        // A snapshot response body IS a valid adopt body.
        let adopt = decode_body(&body, AdoptRequest::from_json).unwrap();
        assert_eq!(adopt.transfer, transfer);
        assert_eq!(adopt.encode().unwrap(), body);

        // Missing fields and a corrupt slice encoding are typed 400s.
        for mangled in [
            r#"{"cache_slice":"","warm_entries":0}"#.to_string(),
            body.replace("cache_slice", "slice"),
            body.replace("warm_entries", "entries"),
        ] {
            let err = decode_body(&mangled, SnapshotTransfer::from_json).unwrap_err();
            assert_eq!(err.status, 400, "{mangled}");
        }
        let bad_b64 = body.replace(&base64_encode(&transfer.cache_slice), "not base64!");
        assert_eq!(
            decode_body(&bad_b64, SnapshotTransfer::from_json)
                .unwrap_err()
                .status,
            400
        );
    }
}
