//! Minimal JSON for the wire types — the offline stand-in for
//! `serde_json` (the build environment still has no registry access;
//! `crates/compat/serde`'s derives are no-ops for the same reason).
//! Implements exactly what the HTTP front needs: a [`Json`] value
//! tree, a strict recursive-descent parser with depth and size limits,
//! and a writer whose `f64` formatting is shortest-round-trip — two
//! distinct finite bit patterns never serialize to the same string, so
//! comparing encoded plans compares the plans byte-for-byte.

use std::fmt;

/// Nesting depth past which [`Json::parse`] rejects the document
/// (stack-overflow guard for adversarial input).
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Objects keep their key order (`Vec`, not a
/// map), so encoding is deterministic — the property the wire-level
/// byte-identity gates rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what was expected, and the byte offset it failed
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What the parser expected.
    pub expected: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Parses `text` as one JSON document (trailing non-whitespace is
    /// an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("end of document"));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` on non-objects and missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects fractions, negatives, and magnitudes of `2^53`
    /// and beyond — `2^53` itself is excluded because `2^53 + 1` on
    /// the wire rounds to it, so accepting it would silently corrupt
    /// unrepresentable input).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// [`Json::as_u64`], narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes into `out`. Non-finite numbers (which JSON cannot
    /// represent) serialize as `null`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_f64(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// `f64` → shortest round-trip decimal (Rust's `Display` guarantee);
/// non-finite → `null`.
fn write_f64(n: f64, out: &mut String) {
    if n.is_finite() {
        use fmt::Write;
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, expected: &'static str) -> JsonError {
        JsonError {
            expected,
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, literal: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(self.err(literal))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("shallower nesting"));
        }
        match self.bytes.get(self.pos) {
            Some(b'n') => self.expect_literal("null").map(|()| Json::Null),
            Some(b't') => self.expect_literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("',' or ']'"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("':'"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("',' or '}'"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if !self.eat(b'"') {
            return Err(self.err("'\"'"));
        }
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require the low half.
                                self.expect_literal("\\u")?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("a low surrogate"));
                                }
                                let c = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("a valid code point"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("a valid code point"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("a valid escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("no raw control characters")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits, returning their value. Leaves
    /// `pos` after the digits.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("four hex digits"))?;
        let mut value = 0u32;
        for &d in digits {
            let v = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("a hex digit"))?;
            value = (value << 4) | v;
        }
        self.pos += 4;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        // Integer part: "0" or [1-9][0-9]*.
        match self.bytes.get(self.pos) {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while let Some(b'0'..=b'9') = self.bytes.get(self.pos) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("a digit")),
        }
        if self.eat(b'.') {
            let mut any = false;
            while let Some(b'0'..=b'9') = self.bytes.get(self.pos) {
                self.pos += 1;
                any = true;
            }
            if !any {
                return Err(self.err("a fraction digit"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if !self.eat(b'+') {
                self.eat(b'-');
            }
            let mut any = false;
            while let Some(b'0'..=b'9') = self.bytes.get(self.pos) {
                self.pos += 1;
                any = true;
            }
            if !any {
                return Err(self.err("an exponent digit"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            expected: "a representable number",
            offset: start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str) -> String {
        Json::parse(text).expect(text).to_string()
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(round_trip("null"), "null");
        assert_eq!(round_trip("true"), "true");
        assert_eq!(round_trip("false"), "false");
        assert_eq!(round_trip("0"), "0");
        assert_eq!(round_trip("-1.5"), "-1.5");
        assert_eq!(round_trip("1e3"), "1000");
        assert_eq!(round_trip("\"a\\n\\\"b\\\"\""), "\"a\\n\\\"b\\\"\"");
    }

    #[test]
    fn containers_keep_order() {
        assert_eq!(
            round_trip("{\"b\": 1, \"a\": [2, {\"c\": null}]}"),
            "{\"b\":1,\"a\":[2,{\"c\":null}]}"
        );
        assert_eq!(round_trip("[]"), "[]");
        assert_eq!(round_trip("{}"), "{}");
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for &x in &[0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -0.0, 123.456e-7] {
            let mut out = String::new();
            write_f64(x, &mut out);
            let back: f64 = out.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {out}");
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("é😀".to_string())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone high surrogate");
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "tru",
            "\"\u{01}\"",
            "nulll",
            "[1] 2",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_cap_rejects_adversarial_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH / 2) + &"]".repeat(MAX_DEPTH / 2);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"s\":\"x\",\"n\":3,\"b\":true,\"a\":[1],\"f\":1.5}").unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_usize), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_u64), None, "fractional");
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        // 2^53 is excluded: 2^53 + 1 rounds to it on the wire, so
        // accepting it would silently truncate unrepresentable input.
        assert_eq!(Json::Num(9_007_199_254_740_992.0).as_u64(), None);
        assert_eq!(
            Json::Num(9_007_199_254_740_991.0).as_u64(),
            Some(9_007_199_254_740_991)
        );
    }
}
