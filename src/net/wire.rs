//! Wire-type mapping: plans and stats ⇄ JSON responses.
//!
//! Request parsing and the typed request/response structs live in
//! [`api`](super::api) (re-exported here for compatibility); this
//! module keeps the response encoders whose *bytes* are contracts.
//!
//! Plan encoding is the identity the network gates compare on:
//! [`plan_identity_json`] covers exactly the fields
//! [`Plan::divergence`](fc_core::Plan::divergence) covers (selection,
//! cost, goal, bit-exact objectives, strategy), with floats written
//! shortest-round-trip — so two plans encode to the same bytes iff
//! `divergence` reports `None`. The full [`plan_json`] adds the
//! diagnostics counters, which are observability, not plan content
//! (`divergence` ignores them; so do the gates).

use fc_core::planner::service::{QuotaUsage, ServiceStats, TenantId};
use fc_core::{CacheStats, Plan};

pub use super::api::{
    budget_field, budget_from_json, budgets_field, goal_json, spec_from_json, ApiError,
};
use super::json::Json;

/// The divergence-relevant fields of a plan (see the module docs):
/// equal encodings ⇔ [`Plan::divergence`](fc_core::Plan::divergence)
/// `None`.
pub fn plan_identity_json(plan: &Plan) -> Json {
    Json::obj([
        ("strategy", Json::Str(plan.strategy.clone())),
        ("goal", goal_json(plan.goal)),
        (
            "objects",
            Json::Arr(
                plan.selection
                    .objects()
                    .iter()
                    .map(|&o| Json::Num(o as f64))
                    .collect(),
            ),
        ),
        ("cost", Json::Num(plan.selection.cost() as f64)),
        ("before", Json::Num(plan.before)),
        ("after", Json::Num(plan.after)),
    ])
}

/// Full plan encoding: the identity fields plus the observability
/// diagnostics.
pub fn plan_json(plan: &Plan) -> Json {
    let Json::Obj(mut fields) = plan_identity_json(plan) else {
        unreachable!("plan_identity_json returns an object")
    };
    fields.push((
        "diagnostics".to_string(),
        Json::obj([
            (
                "engine_evals",
                Json::Num(plan.diagnostics.engine_evals as f64),
            ),
            ("candidates", Json::Num(plan.diagnostics.candidates as f64)),
            ("store_hits", Json::Num(plan.diagnostics.store_hits as f64)),
            (
                "store_misses",
                Json::Num(plan.diagnostics.store_misses as f64),
            ),
        ]),
    ));
    Json::Obj(fields)
}

/// `GET /v1/stats` body: the service counters and gauges, the shared
/// store's counters, and per-tenant saturation (every tenant with
/// in-flight work or an explicit quota policy).
pub fn stats_json(
    service: &ServiceStats,
    store: &CacheStats,
    tenants: &[(TenantId, QuotaUsage)],
) -> Json {
    Json::obj([
        (
            "service",
            Json::obj([
                ("submitted", Json::Num(service.submitted as f64)),
                ("completed", Json::Num(service.completed as f64)),
                ("inline", Json::Num(service.inline as f64)),
                ("interactive", Json::Num(service.interactive as f64)),
                ("bulk", Json::Num(service.bulk as f64)),
                ("panics", Json::Num(service.panics as f64)),
                ("cancelled", Json::Num(service.cancelled as f64)),
                ("quota_rejected", Json::Num(service.quota_rejected as f64)),
                (
                    "queued_interactive",
                    Json::Num(service.queued_interactive as f64),
                ),
                ("queued_bulk", Json::Num(service.queued_bulk as f64)),
                ("in_flight", Json::Num(service.in_flight as f64)),
                (
                    "running_interactive",
                    Json::Num(service.running_interactive as f64),
                ),
                ("running_bulk", Json::Num(service.running_bulk as f64)),
            ]),
        ),
        (
            "tenants",
            Json::Obj(
                tenants
                    .iter()
                    .map(|(tenant, usage)| {
                        (
                            tenant.name().to_string(),
                            Json::obj([
                                ("in_flight", Json::Num(usage.in_flight as f64)),
                                (
                                    "outstanding_evals",
                                    Json::Num(usage.outstanding_evals as f64),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "store",
            Json::obj([
                ("hits", Json::Num(store.hits as f64)),
                ("misses", Json::Num(store.misses as f64)),
                ("evictions", Json::Num(store.evictions as f64)),
                ("scoped_builds", Json::Num(store.scoped_builds as f64)),
                (
                    "scoped_build_evals",
                    Json::Num(store.scoped_build_evals as f64),
                ),
                ("invalidations", Json::Num(store.invalidations as f64)),
                ("entries", Json::Num(store.entries as f64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{Goal, Measure, Strategy};
    use fc_core::{Budget, CoreError};

    #[test]
    fn spec_parsing_covers_measures_goals_strategies() {
        let spec = spec_from_json(&Json::parse(r#"{"measure":"dup"}"#).unwrap()).unwrap();
        assert_eq!(spec.measure, Measure::Dup);
        assert_eq!(spec.goal, Goal::MinVar);
        assert_eq!(spec.strategy, Strategy::Auto);

        let spec = spec_from_json(
            &Json::parse(r#"{"measure":"bias","goal":{"maxpr":5.5},"strategy":"greedy"}"#).unwrap(),
        )
        .unwrap();
        assert!(matches!(spec.goal, Goal::MaxPr { tau } if tau == 5.5));
        assert_eq!(spec.strategy.key(), "greedy");

        let spec = spec_from_json(
            &Json::parse(r#"{"measure":"frag","goal":"minvar","strategy":"auto"}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(spec.strategy, Strategy::Auto);

        for bad in [
            r#"{}"#,
            r#"{"measure":"nope"}"#,
            r#"{"measure":"dup","goal":"nope"}"#,
            r#"{"measure":"dup","goal":{"maxpr":"x"}}"#,
            r#"{"measure":"dup","strategy":3}"#,
        ] {
            let err = spec_from_json(&Json::parse(bad).unwrap()).unwrap_err();
            assert_eq!(err.status, 400, "{bad}");
        }
    }

    #[test]
    fn budget_parsing() {
        assert_eq!(
            budget_from_json(&Json::Num(3.0), 10).unwrap(),
            Budget::absolute(3)
        );
        assert_eq!(
            budget_from_json(&Json::parse(r#"{"absolute":4}"#).unwrap(), 10).unwrap(),
            Budget::absolute(4)
        );
        assert_eq!(
            budget_from_json(&Json::parse(r#"{"fraction":0.5}"#).unwrap(), 10).unwrap(),
            Budget::absolute(5)
        );
        for bad in ["-1", "1.5", r#"{"fraction":"x"}"#, "\"x\""] {
            assert!(
                budget_from_json(&Json::parse(bad).unwrap(), 10).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    fn core_errors_map_to_statuses() {
        assert_eq!(
            ApiError::from(CoreError::QuotaExceeded {
                tenant: "t".into(),
                reason: "r".into()
            })
            .status,
            429
        );
        assert_eq!(
            ApiError::from(CoreError::WorkerPanicked { detail: "d".into() }).status,
            500
        );
        assert_eq!(
            ApiError::from(CoreError::UnknownStrategy { name: "n".into() }).status,
            400
        );
    }
}
