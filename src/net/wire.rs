//! Wire-type mapping: JSON request bodies ⇄ planner types, and plans ⇄
//! JSON responses.
//!
//! Plan encoding is the identity the network gates compare on:
//! [`plan_identity_json`] covers exactly the fields
//! [`Plan::divergence`](fc_core::Plan::divergence) covers (selection,
//! cost, goal, bit-exact objectives, strategy), with floats written
//! shortest-round-trip — so two plans encode to the same bytes iff
//! `divergence` reports `None`. The full [`plan_json`] adds the
//! diagnostics counters, which are observability, not plan content
//! (`divergence` ignores them; so do the gates).

use fc_core::planner::service::{QuotaUsage, ServiceStats, TenantId};
use fc_core::{Budget, CacheStats, CoreError, Plan};

use super::json::Json;
use crate::planner::{Goal, Measure, ObjectiveSpec};

/// A request that cannot be served, mapped to an HTTP status.
#[derive(Debug)]
pub struct ApiError {
    /// The response status code.
    pub status: u16,
    /// Human-readable detail (the response `error` field).
    pub message: String,
}

impl ApiError {
    /// A 400 with the given detail.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    /// A 404 with the given detail.
    pub fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
        }
    }

    /// The `{"error": …}` response body.
    pub fn body(&self) -> String {
        Json::obj([("error", Json::Str(self.message.clone()))]).to_string()
    }
}

impl From<CoreError> for ApiError {
    /// Maps solver/service errors onto statuses: quota exhaustion is
    /// `429` (retry after in-flight work resolves); a contained worker
    /// panic is `500`, as is `Cancelled` (a request the *server*
    /// abandoned while the client still waits — unreachable through
    /// the normal disconnect path, which never responds at all);
    /// everything else — bad strategies, bad objects, refused problem
    /// shapes — is a `400` request error.
    fn from(e: CoreError) -> Self {
        let status = match &e {
            CoreError::QuotaExceeded { .. } => 429,
            CoreError::WorkerPanicked { .. } | CoreError::Cancelled => 500,
            _ => 400,
        };
        Self {
            status,
            message: e.to_string(),
        }
    }
}

/// Parses the request body's `measure`/`goal`/`strategy` fields into
/// an [`ObjectiveSpec`]. `goal` defaults to MinVar (`"minvar"`); a
/// counterargument hunt is `{"maxpr": τ}`.
pub fn spec_from_json(body: &Json) -> Result<ObjectiveSpec, ApiError> {
    let measure = match body.get("measure").and_then(Json::as_str) {
        Some("bias") => Measure::Bias,
        Some("dup") => Measure::Dup,
        Some("frag") => Measure::Frag,
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "unknown measure {other:?} (expected \"bias\", \"dup\", or \"frag\")"
            )))
        }
        None => {
            return Err(ApiError::bad_request(
                "missing \"measure\" (\"bias\", \"dup\", or \"frag\")",
            ))
        }
    };
    let goal = match body.get("goal") {
        None => Goal::MinVar,
        Some(Json::Str(s)) if s == "minvar" => Goal::MinVar,
        Some(v) => match v.get("maxpr").and_then(Json::as_f64) {
            Some(tau) => Goal::MaxPr { tau },
            None => {
                return Err(ApiError::bad_request(
                    "bad \"goal\" (expected \"minvar\" or {\"maxpr\": τ})",
                ))
            }
        },
    };
    let mut spec = ObjectiveSpec::new(measure, goal);
    match body.get("strategy") {
        None => {}
        Some(Json::Str(name)) if name == "auto" => {}
        Some(Json::Str(name)) => spec = spec.with_strategy(name.clone()),
        Some(_) => {
            return Err(ApiError::bad_request(
                "bad \"strategy\" (expected a string)",
            ))
        }
    }
    Ok(spec)
}

/// Parses one budget: a bare number is [`Budget::absolute`];
/// `{"fraction": f}` resolves against the stream's total cleaning
/// cost.
pub fn budget_from_json(v: &Json, total_cost: u64) -> Result<Budget, ApiError> {
    if let Some(n) = v.as_u64() {
        return Ok(Budget::absolute(n));
    }
    if let Some(frac) = v.get("fraction").and_then(Json::as_f64) {
        return Budget::try_fraction(total_cost, frac).map_err(ApiError::from);
    }
    if let Some(n) = v.get("absolute").and_then(Json::as_u64) {
        return Ok(Budget::absolute(n));
    }
    Err(ApiError::bad_request(
        "bad budget (expected a non-negative integer, {\"absolute\": n}, or {\"fraction\": f})",
    ))
}

/// The required `budget` field of a recommend request.
pub fn budget_field(body: &Json, total_cost: u64) -> Result<Budget, ApiError> {
    match body.get("budget") {
        Some(v) => budget_from_json(v, total_cost),
        None => Err(ApiError::bad_request("missing \"budget\"")),
    }
}

/// The required `budgets` array of a sweep request.
pub fn budgets_field(body: &Json, total_cost: u64) -> Result<Vec<Budget>, ApiError> {
    match body.get("budgets").and_then(Json::as_array) {
        Some(items) if !items.is_empty() => items
            .iter()
            .map(|v| budget_from_json(v, total_cost))
            .collect(),
        Some(_) => Err(ApiError::bad_request("\"budgets\" must be non-empty")),
        None => Err(ApiError::bad_request("missing \"budgets\" (an array)")),
    }
}

fn goal_json(goal: Goal) -> Json {
    match goal {
        Goal::MinVar => Json::Str("minvar".to_string()),
        Goal::MaxPr { tau } => Json::obj([("maxpr", Json::Num(tau))]),
        // `Goal` is non-exhaustive upstream; an unknown goal cannot be
        // submitted through this front, so this arm is unreachable
        // today and merely future-proof.
        _ => Json::Str("unknown".to_string()),
    }
}

/// The divergence-relevant fields of a plan (see the module docs):
/// equal encodings ⇔ [`Plan::divergence`](fc_core::Plan::divergence)
/// `None`.
pub fn plan_identity_json(plan: &Plan) -> Json {
    Json::obj([
        ("strategy", Json::Str(plan.strategy.clone())),
        ("goal", goal_json(plan.goal)),
        (
            "objects",
            Json::Arr(
                plan.selection
                    .objects()
                    .iter()
                    .map(|&o| Json::Num(o as f64))
                    .collect(),
            ),
        ),
        ("cost", Json::Num(plan.selection.cost() as f64)),
        ("before", Json::Num(plan.before)),
        ("after", Json::Num(plan.after)),
    ])
}

/// Full plan encoding: the identity fields plus the observability
/// diagnostics.
pub fn plan_json(plan: &Plan) -> Json {
    let Json::Obj(mut fields) = plan_identity_json(plan) else {
        unreachable!("plan_identity_json returns an object")
    };
    fields.push((
        "diagnostics".to_string(),
        Json::obj([
            (
                "engine_evals",
                Json::Num(plan.diagnostics.engine_evals as f64),
            ),
            ("candidates", Json::Num(plan.diagnostics.candidates as f64)),
            ("store_hits", Json::Num(plan.diagnostics.store_hits as f64)),
            (
                "store_misses",
                Json::Num(plan.diagnostics.store_misses as f64),
            ),
        ]),
    ));
    Json::Obj(fields)
}

/// `GET /v1/stats` body: the service counters and gauges, the shared
/// store's counters, and per-tenant saturation (every tenant with
/// in-flight work or an explicit quota policy).
pub fn stats_json(
    service: &ServiceStats,
    store: &CacheStats,
    tenants: &[(TenantId, QuotaUsage)],
) -> Json {
    Json::obj([
        (
            "service",
            Json::obj([
                ("submitted", Json::Num(service.submitted as f64)),
                ("completed", Json::Num(service.completed as f64)),
                ("inline", Json::Num(service.inline as f64)),
                ("interactive", Json::Num(service.interactive as f64)),
                ("bulk", Json::Num(service.bulk as f64)),
                ("panics", Json::Num(service.panics as f64)),
                ("cancelled", Json::Num(service.cancelled as f64)),
                ("quota_rejected", Json::Num(service.quota_rejected as f64)),
                (
                    "queued_interactive",
                    Json::Num(service.queued_interactive as f64),
                ),
                ("queued_bulk", Json::Num(service.queued_bulk as f64)),
                ("in_flight", Json::Num(service.in_flight as f64)),
                (
                    "running_interactive",
                    Json::Num(service.running_interactive as f64),
                ),
                ("running_bulk", Json::Num(service.running_bulk as f64)),
            ]),
        ),
        (
            "tenants",
            Json::Obj(
                tenants
                    .iter()
                    .map(|(tenant, usage)| {
                        (
                            tenant.name().to_string(),
                            Json::obj([
                                ("in_flight", Json::Num(usage.in_flight as f64)),
                                (
                                    "outstanding_evals",
                                    Json::Num(usage.outstanding_evals as f64),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "store",
            Json::obj([
                ("hits", Json::Num(store.hits as f64)),
                ("misses", Json::Num(store.misses as f64)),
                ("evictions", Json::Num(store.evictions as f64)),
                ("scoped_builds", Json::Num(store.scoped_builds as f64)),
                (
                    "scoped_build_evals",
                    Json::Num(store.scoped_build_evals as f64),
                ),
                ("invalidations", Json::Num(store.invalidations as f64)),
                ("entries", Json::Num(store.entries as f64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Strategy;

    #[test]
    fn spec_parsing_covers_measures_goals_strategies() {
        let spec = spec_from_json(&Json::parse(r#"{"measure":"dup"}"#).unwrap()).unwrap();
        assert_eq!(spec.measure, Measure::Dup);
        assert_eq!(spec.goal, Goal::MinVar);
        assert_eq!(spec.strategy, Strategy::Auto);

        let spec = spec_from_json(
            &Json::parse(r#"{"measure":"bias","goal":{"maxpr":5.5},"strategy":"greedy"}"#).unwrap(),
        )
        .unwrap();
        assert!(matches!(spec.goal, Goal::MaxPr { tau } if tau == 5.5));
        assert_eq!(spec.strategy.key(), "greedy");

        let spec = spec_from_json(
            &Json::parse(r#"{"measure":"frag","goal":"minvar","strategy":"auto"}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(spec.strategy, Strategy::Auto);

        for bad in [
            r#"{}"#,
            r#"{"measure":"nope"}"#,
            r#"{"measure":"dup","goal":"nope"}"#,
            r#"{"measure":"dup","goal":{"maxpr":"x"}}"#,
            r#"{"measure":"dup","strategy":3}"#,
        ] {
            let err = spec_from_json(&Json::parse(bad).unwrap()).unwrap_err();
            assert_eq!(err.status, 400, "{bad}");
        }
    }

    #[test]
    fn budget_parsing() {
        assert_eq!(
            budget_from_json(&Json::Num(3.0), 10).unwrap(),
            Budget::absolute(3)
        );
        assert_eq!(
            budget_from_json(&Json::parse(r#"{"absolute":4}"#).unwrap(), 10).unwrap(),
            Budget::absolute(4)
        );
        assert_eq!(
            budget_from_json(&Json::parse(r#"{"fraction":0.5}"#).unwrap(), 10).unwrap(),
            Budget::absolute(5)
        );
        for bad in ["-1", "1.5", r#"{"fraction":"x"}"#, "\"x\""] {
            assert!(
                budget_from_json(&Json::parse(bad).unwrap(), 10).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    fn core_errors_map_to_statuses() {
        assert_eq!(
            ApiError::from(CoreError::QuotaExceeded {
                tenant: "t".into(),
                reason: "r".into()
            })
            .status,
            429
        );
        assert_eq!(
            ApiError::from(CoreError::WorkerPanicked { detail: "d".into() }).status,
            500
        );
        assert_eq!(
            ApiError::from(CoreError::UnknownStrategy { name: "n".into() }).status,
            400
        );
    }
}
