//! `fc::net` — the zero-dependency HTTP/1.1 network front.
//!
//! The ROADMAP's serving layer ends, until this module, at a library
//! boundary: [`PlannerService`](fc_core::PlannerService) and
//! [`ClaimStream`](crate::ClaimStream) give a *process* admission
//! control, quotas, cancellation, and surgical cache invalidation —
//! but the paper's setting (Sintos, Agarwal & Yang, VLDB 2019) is an
//! interactive *service*: fact-checkers iteratively pick data to
//! clean, reveal values, and re-ask, from outside the process. The
//! environment still allows no registry dependencies, so this front is
//! hand-rolled on `std::net` alone:
//!
//! * [`json`] — a minimal JSON codec (value tree, strict bounded
//!   parser, deterministic writer);
//! * [`api`] — the typed request/response structs every route, client,
//!   and replayer encodes and decodes through, plus the plan and stats
//!   response encoders whose bytes are the determinism gate;
//! * [`client`] — the matching minimal blocking client (examples,
//!   tests, and CI gates drive the server with it), including the
//!   typed [`ApiClient`];
//! * [`http`] — HTTP/1.1 framing: `Content-Length` bodies, keep-alive,
//!   chunked streamed responses, hard header/body limits, typed 4xx
//!   mapping for malformed input;
//! * [`PlannerServer`] — the accept loop, route table, per-request
//!   tenancy (`x-tenant` header), wire-native stream creation,
//!   disconnect-driven cancellation, graceful drain, and warm-boot
//!   snapshot restore;
//! * [`router`] — the consistent-hash shard front that spreads streams
//!   across N `PlannerServer` backends with health probes, drain, and
//!   bounded retry.
//!
//! Everything the serving layer guarantees in-process holds over the
//! wire: plans are byte-identical to in-process
//! [`PlannerService`](fc_core::PlannerService) results, quota
//! rejections are `429`s with nothing queued, a client hangup cancels
//! the request it was waiting on, and shutdown never drops a completed
//! plan.

pub mod api;
pub mod client;
pub mod http;
pub mod json;
pub mod router;
pub mod server;

pub use api::ApiError;
pub use client::{ApiClient, ClientError, ClientPool, ClientPools};
pub use router::{RouterConfig, RouterHandle, RouterServer};
pub use server::{PlannerServer, ServerConfig, ServerHandle};
