//! `fc::net` — the zero-dependency HTTP/1.1 network front.
//!
//! The ROADMAP's serving layer ends, until this module, at a library
//! boundary: [`PlannerService`](fc_core::PlannerService) and
//! [`ClaimStream`](crate::ClaimStream) give a *process* admission
//! control, quotas, cancellation, and surgical cache invalidation —
//! but the paper's setting (Sintos, Agarwal & Yang, VLDB 2019) is an
//! interactive *service*: fact-checkers iteratively pick data to
//! clean, reveal values, and re-ask, from outside the process. The
//! environment still allows no registry dependencies, so this front is
//! hand-rolled on `std::net` alone:
//!
//! * [`json`] — a minimal JSON codec (value tree, strict bounded
//!   parser, deterministic writer);
//! * [`client`] — the matching minimal blocking client (examples,
//!   tests, and CI gates drive the server with it);
//! * [`http`] — HTTP/1.1 framing: `Content-Length` bodies, keep-alive,
//!   hard header/body limits, typed 4xx mapping for malformed input;
//! * [`wire`] — JSON ⇄ planner types, including the plan encoding
//!   whose bytes are the determinism gate;
//! * [`PlannerServer`] — the accept loop, route table, per-request
//!   tenancy (`x-tenant` header), disconnect-driven cancellation, and
//!   graceful drain.
//!
//! Everything the serving layer guarantees in-process holds over the
//! wire: plans are byte-identical to in-process
//! [`PlannerService`](fc_core::PlannerService) results, quota
//! rejections are `429`s with nothing queued, a client hangup cancels
//! the request it was waiting on, and shutdown never drops a completed
//! plan.

pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod wire;

pub use server::{PlannerServer, ServerConfig, ServerHandle};
