//! A minimal blocking HTTP/1.1 client for the front —
//! `Content-Length` and chunked response framing, no redirects, no
//! TLS. This is the counterpart the examples, integration tests, CI
//! gates, and the load harness drive the server with (the environment
//! has no `curl` guarantee and no registry client crates); it is
//! deliberately small, not a general HTTP client.
//!
//! Two tiers: the free functions ([`post`], [`get`], [`request`]) open
//! a fresh connection per request — fine for one-shot smoke checks;
//! [`Conn`] holds one keep-alive connection across requests, and
//! [`ClientPool`] parks idle [`Conn`]s for reuse across calls (and
//! threads), which is what a replayer issuing thousands of requests
//! needs to avoid paying connect latency — and burning ephemeral
//! ports — per request.
//!
//! Streamed sweeps have a third shape: [`SweepStream`] holds a
//! dedicated (never pooled) connection to `POST /v1/sweep?stream=1`
//! and yields each plan as its chunk arrives, so a caller can act on
//! the first budget point while later ones are still solving. The
//! buffered readers also decode chunked responses — by concatenating
//! every chunk — which is exactly the byte-identity gate: a streamed
//! sweep read through [`post`] must equal the buffered response.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use super::api::{
    AdoptRequest, ApiError, CleanRequest, CleanResponse, CreateStreamRequest, PlanView,
    RecommendRequest, SnapshotTransfer, StatsResponse, StreamInfo, SweepRequest,
};
use super::http::ERROR_TRAILER;
use super::json::Json;

/// Read timeout applied by [`read_response`] when the socket has none.
const DEFAULT_RESPONSE_TIMEOUT: Duration = Duration::from_secs(120);

/// Longest acceptable chunk-size line (hex digits); a `usize` is at
/// most 16 nibbles, so anything longer is garbage, not a big chunk.
const MAX_CHUNK_SIZE_LINE: usize = 16;

/// Largest single chunk payload accepted (matches the order of the
/// server's own body cap; a hostile size line must not make the client
/// allocate unboundedly).
const MAX_CHUNK_SIZE: usize = 1 << 26;

/// Longest acceptable trailer line after the terminal chunk.
const MAX_TRAILER_LINE: usize = 1024;

/// Writes one request on `sock` (keep-alive framing: the connection
/// stays usable for [`read_response`] and further requests). `headers`
/// are extra headers, e.g. `[("x-tenant", "alice")]`.
pub fn write_request(
    sock: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: fc\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    sock.write_all(head.as_bytes())?;
    sock.write_all(body.as_bytes())
}

/// Reads one framed response off `reader`: (status, body, close) where
/// `close` reports a `connection: close` header — the server will not
/// serve another request on this connection. Chunked responses are
/// decoded by concatenating every chunk (and always report `close`:
/// the server ends the connection after a stream); a mid-stream error
/// trailer surfaces as an [`io::ErrorKind::InvalidData`] error, since
/// the body it interrupted is incomplete.
fn read_framed_response(reader: &mut impl BufRead) -> io::Result<(u16, String, bool)> {
    let mut raw: Vec<u8> = Vec::new();
    loop {
        if let Some(response) = parse_framed_response(&raw)? {
            return Ok(response);
        }
        // The server answers in lockstep (no pipelining), so consuming
        // everything buffered never eats into a next response.
        let eof = raw_eof_error(&raw);
        fill(reader, &mut raw, eof)?;
    }
}

/// One blocking read appended onto `raw`; EOF maps to `eof` (callers
/// phrase it for their framing position).
fn fill(reader: &mut impl BufRead, raw: &mut Vec<u8>, eof: &str) -> io::Result<()> {
    loop {
        match reader.fill_buf() {
            Ok([]) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    eof.to_string(),
                ))
            }
            Ok(chunk) => {
                raw.extend_from_slice(chunk);
                let n = chunk.len();
                reader.consume(n);
                return Ok(());
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// EOF phrasing for the buffered reader: a close before any bytes is
/// the stale-keep-alive signal pools retry on; a close mid-response is
/// a harder failure.
fn raw_eof_error(raw: &[u8]) -> &'static str {
    if raw.is_empty() {
        "connection closed before response"
    } else {
        "connection closed mid-response"
    }
}

/// Reads one response from `sock`: returns (status, body). Applies a
/// generous read timeout when the caller has not set one.
///
/// The internal read buffer is discarded afterwards, so this is for
/// one-response-then-close use; a connection serving *multiple*
/// responses must hold its buffer across reads — use [`Conn`].
pub fn read_response(sock: &mut TcpStream) -> io::Result<(u16, String)> {
    if sock.read_timeout()?.is_none() {
        sock.set_read_timeout(Some(DEFAULT_RESPONSE_TIMEOUT))?;
    }
    let mut reader = BufReader::new(sock.try_clone()?);
    let (status, body, _close) = read_framed_response(&mut reader)?;
    Ok((status, body))
}

/// One keep-alive connection: request/response exchanges in lockstep,
/// with the read buffer held across responses so framing never loses
/// bytes between exchanges.
#[derive(Debug)]
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    close: bool,
}

impl Conn {
    /// Connects to `addr`. `timeout` bounds every read and write on
    /// the connection (default: a generous 120s on reads, unbounded
    /// writes).
    pub fn connect(addr: impl ToSocketAddrs, timeout: Option<Duration>) -> io::Result<Self> {
        let sock = TcpStream::connect(addr)?;
        sock.set_read_timeout(timeout.or(Some(DEFAULT_RESPONSE_TIMEOUT)))?;
        sock.set_write_timeout(timeout)?;
        sock.set_nodelay(true)?;
        let reader = BufReader::new(sock.try_clone()?);
        Ok(Self {
            reader,
            writer: sock,
            close: false,
        })
    }

    /// One request/response exchange; returns (status, body).
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> io::Result<(u16, String)> {
        write_request(&mut self.writer, method, path, headers, body)?;
        let (status, body, close) = read_framed_response(&mut self.reader)?;
        self.close = close;
        Ok((status, body))
    }

    /// Whether the server will accept another request on this
    /// connection (no `connection: close` seen yet).
    pub fn reusable(&self) -> bool {
        !self.close
    }

    /// Like [`Conn::send`], but while waiting for the response the
    /// socket is polled every `poll` and `alive` is consulted; when it
    /// reports `false` the exchange is abandoned and `Ok(None)` is
    /// returned. The connection must then be **dropped**, not reused:
    /// the response is still in flight, and — more importantly —
    /// closing the socket is the signal that propagates a downstream
    /// hangup to the server, whose own disconnect probe cancels the
    /// request. This is how a routing front relays
    /// cancellation-on-disconnect instead of absorbing it.
    pub fn send_with_probe(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
        poll: Duration,
        alive: &mut dyn FnMut() -> bool,
    ) -> io::Result<Option<(u16, String)>> {
        write_request(&mut self.writer, method, path, headers, body)?;
        let overall = self
            .writer
            .read_timeout()?
            .unwrap_or(DEFAULT_RESPONSE_TIMEOUT);
        let deadline = Instant::now() + overall;
        // Short read timeouts turn the blocking read into a poll loop;
        // the original timeout is restored before returning the
        // connection to normal use.
        self.writer.set_read_timeout(Some(poll))?;
        let result = self.read_response_probing(deadline, alive);
        let restore = self.writer.set_read_timeout(Some(overall));
        if let Some((_, _, close)) = result.as_ref().ok().and_then(|r| r.as_ref()) {
            self.close = *close || restore.is_err();
        }
        result.map(|r| r.map(|(status, body, _)| (status, body)))
    }

    /// Accumulates raw bytes until a full framed response parses,
    /// probing `alive` on every read timeout.
    fn read_response_probing(
        &mut self,
        deadline: Instant,
        alive: &mut dyn FnMut() -> bool,
    ) -> io::Result<Option<(u16, String, bool)>> {
        let mut raw: Vec<u8> = Vec::new();
        loop {
            if let Some(response) = parse_framed_response(&raw)? {
                return Ok(Some(response));
            }
            match self.reader.fill_buf() {
                Ok([]) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before response",
                    ))
                }
                Ok(chunk) => {
                    raw.extend_from_slice(chunk);
                    let n = chunk.len();
                    self.reader.consume(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if !alive() {
                        return Ok(None);
                    }
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "response timed out",
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// A parsed response head: everything before the body bytes. Shared
/// with the router, which relays response framing it did not author.
#[derive(Debug)]
pub(crate) struct Head {
    pub(crate) status: u16,
    pub(crate) content_length: usize,
    pub(crate) chunked: bool,
    pub(crate) close: bool,
    /// Offset of the first body byte in the raw buffer.
    pub(crate) body_start: usize,
}

/// Attempts to parse a response head from `raw`: `Ok(None)` when the
/// blank line has not arrived yet.
pub(crate) fn parse_head(raw: &[u8]) -> io::Result<Option<Head>> {
    let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("malformed status line"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    let mut chunked = false;
    let mut close = false;
    for line in lines {
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(|_| bad("bad content-length"))?;
        } else if let Some(v) = lower.strip_prefix("transfer-encoding:") {
            chunked = v.trim() == "chunked";
        } else if let Some(v) = lower.strip_prefix("connection:") {
            close = v.trim() == "close";
        }
    }
    Ok(Some(Head {
        status,
        content_length,
        chunked,
        close,
        body_start: head_end + 4,
    }))
}

/// Attempts to parse one complete framed response from `raw`:
/// `Ok(None)` when more bytes are needed, `Ok(Some((status, body,
/// close)))` on success, and the same typed errors as the blocking
/// reader on malformed framing. A chunked body is concatenated whole
/// (and forces `close` — the server ends the connection after a
/// stream); its error trailer, if any, becomes an
/// [`io::ErrorKind::InvalidData`] error.
fn parse_framed_response(raw: &[u8]) -> io::Result<Option<(u16, String, bool)>> {
    let Some(head) = parse_head(raw)? else {
        return Ok(None);
    };
    if head.chunked {
        return match parse_chunked_body(&raw[head.body_start..])? {
            None => Ok(None),
            Some((_, Some(error))) => Err(bad(&format!("mid-stream error: {error}"))),
            Some((body, None)) => Ok(Some((head.status, body, true))),
        };
    }
    if raw.len() < head.body_start + head.content_length {
        return Ok(None);
    }
    let body = std::str::from_utf8(&raw[head.body_start..head.body_start + head.content_length])
        .map_err(|_| bad("non-UTF-8 body"))?;
    Ok(Some((head.status, body.to_string(), head.close)))
}

/// One frame of a chunked response body.
#[derive(Debug, PartialEq)]
pub(crate) enum ChunkFrame {
    /// A data chunk's payload.
    Data(Vec<u8>),
    /// The zero-length terminal chunk, with the error trailer when the
    /// server aborted the stream mid-way.
    End { error: Option<String> },
}

/// Attempts to parse one chunk frame from `raw`: `Ok(None)` when more
/// bytes are needed, otherwise the frame plus how many bytes it
/// consumed. Rejects garbage or oversized size lines *before* the
/// line terminator arrives, so a hostile peer cannot stall or balloon
/// the client.
pub(crate) fn parse_chunk_frame(raw: &[u8]) -> io::Result<Option<(ChunkFrame, usize)>> {
    let Some(line_end) = find_crlf(raw) else {
        if raw.len() > MAX_CHUNK_SIZE_LINE {
            return Err(bad("chunk size line too long"));
        }
        return Ok(None);
    };
    if line_end > MAX_CHUNK_SIZE_LINE {
        return Err(bad("chunk size line too long"));
    }
    let line = std::str::from_utf8(&raw[..line_end]).map_err(|_| bad("bad chunk size"))?;
    if line.is_empty() || !line.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(bad("bad chunk size"));
    }
    let size = usize::from_str_radix(line, 16).map_err(|_| bad("bad chunk size"))?;
    if size > MAX_CHUNK_SIZE {
        return Err(bad("chunk too large"));
    }
    let data_start = line_end + 2;
    if size == 0 {
        return parse_trailers(raw, data_start);
    }
    let end = data_start + size;
    if raw.len() < end + 2 {
        return Ok(None);
    }
    if &raw[end..end + 2] != b"\r\n" {
        return Err(bad("chunk missing terminator"));
    }
    Ok(Some((
        ChunkFrame::Data(raw[data_start..end].to_vec()),
        end + 2,
    )))
}

/// Parses the trailer section after a terminal chunk (zero or more
/// header lines, then a blank line), capturing the error trailer.
fn parse_trailers(raw: &[u8], mut at: usize) -> io::Result<Option<(ChunkFrame, usize)>> {
    let mut error = None;
    loop {
        let Some(line_end) = find_crlf(&raw[at..]) else {
            if raw.len() - at > MAX_TRAILER_LINE {
                return Err(bad("trailer line too long"));
            }
            return Ok(None);
        };
        if line_end > MAX_TRAILER_LINE {
            return Err(bad("trailer line too long"));
        }
        let line =
            std::str::from_utf8(&raw[at..at + line_end]).map_err(|_| bad("non-UTF-8 trailer"))?;
        at += line_end + 2;
        if line.is_empty() {
            return Ok(Some((ChunkFrame::End { error }, at)));
        }
        let prefix = format!("{ERROR_TRAILER}:");
        if line.to_ascii_lowercase().starts_with(&prefix) {
            error = Some(line[prefix.len()..].trim().to_string());
        }
    }
}

/// Position of the first `\r\n` in `raw`.
fn find_crlf(raw: &[u8]) -> Option<usize> {
    raw.windows(2).position(|w| w == b"\r\n")
}

/// Attempts to parse a whole chunked body from `raw`: `Ok(None)` when
/// more bytes are needed, otherwise the concatenated payload and the
/// error trailer (if the stream was aborted).
fn parse_chunked_body(raw: &[u8]) -> io::Result<Option<(String, Option<String>)>> {
    let mut at = 0;
    let mut body: Vec<u8> = Vec::new();
    loop {
        match parse_chunk_frame(&raw[at..])? {
            None => return Ok(None),
            Some((ChunkFrame::Data(data), used)) => {
                body.extend_from_slice(&data);
                at += used;
            }
            Some((ChunkFrame::End { error }, _)) => {
                let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
                return Ok(Some((body, error)));
            }
        }
    }
}

/// An in-flight streamed sweep (`POST /v1/sweep?stream=1`): iterate to
/// receive each budget point's plan as its chunk arrives — ascending
/// budget order, first point available while later ones are still
/// solving. Runs on a dedicated connection (never pooled: the server
/// closes it after the stream), and dropping the iterator mid-stream
/// closes that connection, which the server's disconnect probe turns
/// into cancellation of the remaining points.
///
/// A mid-stream server failure arrives as the error trailer and is
/// yielded as one final `Err`; after any `Err` (or the clean end) the
/// iterator is fused.
#[derive(Debug)]
pub struct SweepStream {
    reader: BufReader<TcpStream>,
    raw: Vec<u8>,
    prologue_seen: bool,
    epilogue_seen: bool,
    done: bool,
}

impl SweepStream {
    /// Opens a dedicated connection to `addr` and submits `request`
    /// with `stream=1`. A refusal (non-2xx, delivered buffered) is
    /// decoded and returned here, so a constructed stream is live.
    pub fn open(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
        request: &SweepRequest,
        tenant: Option<&str>,
    ) -> Result<Self, ClientError> {
        let sock = TcpStream::connect(addr)?;
        sock.set_read_timeout(timeout.or(Some(DEFAULT_RESPONSE_TIMEOUT)))?;
        sock.set_write_timeout(timeout)?;
        sock.set_nodelay(true)?;
        let mut writer = sock.try_clone()?;
        let headers: &[(&str, &str)] = match tenant {
            Some(tenant) => &[("x-tenant", tenant)],
            None => &[],
        };
        write_request(
            &mut writer,
            "POST",
            "/v1/sweep?stream=1",
            headers,
            &request.encode(),
        )?;
        let mut reader = BufReader::new(sock);
        let mut raw: Vec<u8> = Vec::new();
        let head = loop {
            if let Some(head) = parse_head(&raw)? {
                break head;
            }
            fill(&mut reader, &mut raw, "connection closed before response")?;
        };
        if !(200..300).contains(&head.status) {
            // Refusals are sent up front with an ordinary buffered body.
            loop {
                if let Some((status, body, _)) = parse_framed_response(&raw)? {
                    let message = Json::parse(&body)
                        .ok()
                        .as_ref()
                        .and_then(|json| json.get("error"))
                        .and_then(Json::as_str)
                        .unwrap_or("unexplained error")
                        .to_string();
                    return Err(ClientError::Api(ApiError { status, message }));
                }
                fill(&mut reader, &mut raw, "connection closed mid-response")?;
            }
        }
        if !head.chunked {
            return Err(ClientError::Decode(
                "streamed sweep response is not chunked".to_string(),
            ));
        }
        raw.drain(..head.body_start);
        Ok(Self {
            reader,
            raw,
            prologue_seen: false,
            epilogue_seen: false,
            done: false,
        })
    }
}

/// Decodes the error trailer's `"{status} {message}"` payload into the
/// typed service error.
fn trailer_error(trailer: &str) -> ClientError {
    if let Some((status, message)) = trailer.split_once(' ') {
        if let Ok(status) = status.parse::<u16>() {
            return ClientError::Api(ApiError {
                status,
                message: message.to_string(),
            });
        }
    }
    ClientError::Decode(format!("stream aborted: {trailer}"))
}

impl Iterator for SweepStream {
    type Item = Result<PlanView, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let frame = match parse_chunk_frame(&self.raw) {
                Err(e) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
                Ok(None) => {
                    let filled = fill(
                        &mut self.reader,
                        &mut self.raw,
                        "connection closed mid-stream",
                    );
                    if let Err(e) = filled {
                        self.done = true;
                        return Some(Err(e.into()));
                    }
                    continue;
                }
                Ok(Some((frame, used))) => {
                    self.raw.drain(..used);
                    frame
                }
            };
            match frame {
                ChunkFrame::End {
                    error: Some(trailer),
                } => {
                    self.done = true;
                    return Some(Err(trailer_error(&trailer)));
                }
                ChunkFrame::End { error: None } => {
                    self.done = true;
                    if !self.epilogue_seen {
                        return Some(Err(ClientError::Decode(
                            "stream ended before its epilogue".to_string(),
                        )));
                    }
                    return None;
                }
                ChunkFrame::Data(data) => {
                    let Ok(text) = String::from_utf8(data) else {
                        self.done = true;
                        return Some(Err(ClientError::Decode("non-UTF-8 chunk".to_string())));
                    };
                    if !self.prologue_seen {
                        if text != "{\"plans\":[" {
                            self.done = true;
                            return Some(Err(ClientError::Decode(format!(
                                "unexpected stream prologue: {text}"
                            ))));
                        }
                        self.prologue_seen = true;
                        continue;
                    }
                    if text == "]}" {
                        self.epilogue_seen = true;
                        continue;
                    }
                    if self.epilogue_seen {
                        self.done = true;
                        return Some(Err(ClientError::Decode(
                            "data chunk after the epilogue".to_string(),
                        )));
                    }
                    let point = text.strip_prefix(',').unwrap_or(&text);
                    let result = Json::parse(point)
                        .map_err(|e| ClientError::Decode(format!("undecodable plan chunk: {e}")))
                        .and_then(|json| {
                            PlanView::from_json(&json).map_err(|e| ClientError::Decode(e.message))
                        });
                    if result.is_err() {
                        self.done = true;
                    }
                    return Some(result);
                }
            }
        }
    }
}

/// A keep-alive connection pool over one server address: requests
/// reuse a parked [`Conn`] when one is idle, connect otherwise, and
/// park the connection back afterwards. Shareable across threads
/// (each in-flight request holds its connection exclusively; the lock
/// guards only the idle list, never I/O).
///
/// A request that fails on a *reused* connection is retried once on a
/// fresh one — the server reaps idle keep-alive connections at its
/// read timeout, so a stale-connection error is expected, not
/// exceptional. Caveat: if the server executed the request but died
/// mid-response, the retry re-executes it; acceptable for this
/// bench/test client, whose requests are safe to repeat.
#[derive(Debug)]
pub struct ClientPool {
    addr: SocketAddr,
    timeout: Option<Duration>,
    max_idle: usize,
    idle: Mutex<Vec<Conn>>,
}

impl ClientPool {
    /// A pool over `addr` (resolved once, up front).
    pub fn new(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        Ok(Self {
            addr,
            timeout: None,
            max_idle: 16,
            idle: Mutex::new(Vec::new()),
        })
    }

    /// Bounds every read and write on pooled connections.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Caps parked idle connections (default 16); beyond it, finished
    /// connections are closed instead of parked.
    pub fn with_max_idle(mut self, max_idle: usize) -> Self {
        self.max_idle = max_idle;
        self
    }

    /// The resolved address this pool connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently parked idle.
    pub fn idle_connections(&self) -> usize {
        self.idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// One request on a pooled connection; returns (status, body).
    /// See the type docs for the stale-keep-alive retry semantics.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> io::Result<(u16, String)> {
        let reused = self
            .idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        if let Some(mut conn) = reused {
            if let Ok(response) = conn.send(method, path, headers, body) {
                self.park(conn);
                return Ok(response);
            }
            // Stale keep-alive (server reaped it while parked): fall
            // through to a fresh connection.
        }
        let mut conn = Conn::connect(self.addr, self.timeout)?;
        let response = conn.send(method, path, headers, body)?;
        self.park(conn);
        Ok(response)
    }

    /// `POST` a JSON body on a pooled connection.
    pub fn post(
        &self,
        path: &str,
        json: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<(u16, String)> {
        self.request("POST", path, headers, json)
    }

    /// `GET` on a pooled connection.
    pub fn get(&self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, &[], "")
    }

    /// [`ClientPool::request`] with downstream-liveness probing
    /// ([`Conn::send_with_probe`]): `Ok(None)` means `alive` reported
    /// the downstream client gone — the upstream connection is dropped
    /// (not parked), closing the socket so the server's disconnect
    /// probe cancels the request. Only safe for requests that may
    /// re-execute (the stale-keep-alive retry applies here too).
    pub fn request_with_probe(
        &self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
        poll: Duration,
        alive: &mut dyn FnMut() -> bool,
    ) -> io::Result<Option<(u16, String)>> {
        let reused = self
            .idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        if let Some(mut conn) = reused {
            match conn.send_with_probe(method, path, headers, body, poll, alive) {
                Ok(Some(response)) => {
                    self.park(conn);
                    return Ok(Some(response));
                }
                // Downstream gone mid-exchange: drop the connection to
                // propagate the hangup upstream.
                Ok(None) => return Ok(None),
                // Stale keep-alive: fall through to a fresh connection.
                Err(_) => {}
            }
        }
        let mut conn = Conn::connect(self.addr, self.timeout)?;
        match conn.send_with_probe(method, path, headers, body, poll, alive)? {
            Some(response) => {
                self.park(conn);
                Ok(Some(response))
            }
            None => Ok(None),
        }
    }

    fn park(&self, conn: Conn) {
        if !conn.reusable() {
            return;
        }
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        if idle.len() < self.max_idle {
            idle.push(conn);
        }
    }
}

/// A registry of [`ClientPool`]s keyed by **resolved** socket address,
/// so spellings of the same backend (`localhost:p`, `127.0.0.1:p`) map
/// to one pool instead of holding duplicate idle sockets. An address
/// resolving to several socket addresses claims all of them: whichever
/// spelling arrives first wins, and later spellings that share any
/// resolved address reuse its pool.
#[derive(Debug, Default)]
pub struct ClientPools {
    timeout: Option<Duration>,
    pools: Mutex<HashMap<SocketAddr, Arc<ClientPool>>>,
}

impl ClientPools {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds reads and writes on every pool created by this registry.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// The pool for `addr`, created on first use. Two addresses that
    /// share any resolved [`SocketAddr`] get the same pool.
    pub fn pool(&self, addr: impl ToSocketAddrs) -> io::Result<Arc<ClientPool>> {
        let resolved: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if resolved.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved empty",
            ));
        }
        let mut pools = self.pools.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pool) = resolved.iter().find_map(|a| pools.get(a)) {
            return Ok(Arc::clone(pool));
        }
        let mut pool = ClientPool::new(resolved[0])?;
        if let Some(timeout) = self.timeout {
            pool = pool.with_timeout(timeout);
        }
        let pool = Arc::new(pool);
        for a in resolved {
            pools.insert(a, Arc::clone(&pool));
        }
        Ok(pool)
    }

    /// Pools currently registered (distinct pools, not distinct keys).
    pub fn len(&self) -> usize {
        let pools = self.pools.lock().unwrap_or_else(PoisonError::into_inner);
        let mut seen: Vec<*const ClientPool> = pools.values().map(Arc::as_ptr).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Whether no pool has been created yet.
    pub fn is_empty(&self) -> bool {
        self.pools
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }
}

/// What a typed [`ApiClient`] call can fail with: transport trouble,
/// a structured error response from the service, or a `200` whose body
/// did not decode as the expected type (a contract violation, not a
/// user error).
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing, or reading failed.
    Io(io::Error),
    /// The service answered with a non-2xx structured error.
    Api(ApiError),
    /// The response body did not match the expected shape.
    Decode(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Api(e) => write!(f, "service error ({}): {}", e.status, e.message),
            ClientError::Decode(what) => write!(f, "undecodable response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The typed client over the [`api`](super::api) surface: requests are
/// built from the typed structs and responses decoded back into them,
/// so callers never assemble JSON by hand (the raw [`post`]/[`get`]
/// tier stays public for malformed-input tests). Runs over a shared
/// [`ClientPool`], so clones and threads reuse keep-alive connections.
#[derive(Debug, Clone)]
pub struct ApiClient {
    pool: Arc<ClientPool>,
}

impl ApiClient {
    /// A client over its own pool to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self::over(Arc::new(ClientPool::new(addr)?)))
    }

    /// A client over an existing (possibly shared) pool.
    pub fn over(pool: Arc<ClientPool>) -> Self {
        Self { pool }
    }

    /// The underlying pool (e.g. to inspect idle connections).
    pub fn pool(&self) -> &Arc<ClientPool> {
        &self.pool
    }

    fn exchange(
        &self,
        method: &str,
        path: &str,
        tenant: Option<&str>,
        body: &str,
    ) -> Result<Json, ClientError> {
        let headers: &[(&str, &str)] = match tenant {
            Some(tenant) => &[("x-tenant", tenant)],
            None => &[],
        };
        let (status, text) = self.pool.request(method, path, headers, body)?;
        let json = Json::parse(&text)
            .map_err(|e| ClientError::Decode(format!("{status} body is not JSON: {e}")))?;
        if !(200..300).contains(&status) {
            let message = json
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unexplained error")
                .to_string();
            return Err(ClientError::Api(ApiError { status, message }));
        }
        Ok(json)
    }

    /// `POST /v1/recommend` — one plan at one budget (the target
    /// stream rides in the body).
    pub fn recommend(
        &self,
        request: &RecommendRequest,
        tenant: Option<&str>,
    ) -> Result<PlanView, ClientError> {
        let json = self.exchange("POST", "/v1/recommend", tenant, &request.encode())?;
        PlanView::from_json(&json).map_err(|e| ClientError::Decode(e.message))
    }

    /// `POST /v1/sweep` — one plan per budget.
    pub fn sweep(
        &self,
        request: &SweepRequest,
        tenant: Option<&str>,
    ) -> Result<Vec<PlanView>, ClientError> {
        let json = self.exchange("POST", "/v1/sweep", tenant, &request.encode())?;
        json.get("plans")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Decode("sweep response missing plans".to_string()))?
            .iter()
            .map(|p| PlanView::from_json(p).map_err(|e| ClientError::Decode(e.message)))
            .collect()
    }

    /// `POST /v1/sweep?stream=1` — the same sweep, streamed: yields
    /// each budget point's plan as it completes (ascending budget) on
    /// a dedicated connection. Dropping the iterator early cancels the
    /// points still solving server-side.
    pub fn sweep_streaming(
        &self,
        request: &SweepRequest,
        tenant: Option<&str>,
    ) -> Result<SweepStream, ClientError> {
        SweepStream::open(self.pool.addr(), self.pool.timeout, request, tenant)
    }

    /// `POST /v1/streams` — create a stream from an uploaded dataset;
    /// answers the created stream's description.
    pub fn create_stream(&self, request: &CreateStreamRequest) -> Result<StreamInfo, ClientError> {
        let body = request.encode().map_err(ClientError::Api)?;
        let json = self.exchange("POST", "/v1/streams", None, &body)?;
        StreamInfo::from_json(&json).map_err(|e| ClientError::Decode(e.message))
    }

    /// `GET /v1/streams/{id}` — describe one registered stream.
    pub fn stream_info(&self, id: &str) -> Result<StreamInfo, ClientError> {
        let json = self.exchange("GET", &format!("/v1/streams/{id}"), None, "")?;
        StreamInfo::from_json(&json).map_err(|e| ClientError::Decode(e.message))
    }

    /// `DELETE /v1/streams/{id}` — drop a stream from the registry
    /// (in-flight solves finish; cached results stay warm for a
    /// re-created identical dataset).
    pub fn delete_stream(&self, id: &str) -> Result<(), ClientError> {
        self.exchange("DELETE", &format!("/v1/streams/{id}"), None, "")?;
        Ok(())
    }

    /// `POST /v1/streams/{stream}/clean` — reveal cleaned values.
    pub fn clean(
        &self,
        stream: &str,
        request: &CleanRequest,
        tenant: Option<&str>,
    ) -> Result<CleanResponse, ClientError> {
        let path = format!("/v1/streams/{stream}/clean");
        let json = self.exchange("POST", &path, tenant, &request.encode())?;
        CleanResponse::from_json(&json).map_err(|e| ClientError::Decode(e.message))
    }

    /// `GET /v1/streams/{id}/snapshot` — the stream's definition plus
    /// its warm per-stream cache slice, ready to [`adopt`] on a peer.
    ///
    /// [`adopt`]: ApiClient::adopt
    pub fn snapshot(&self, id: &str) -> Result<SnapshotTransfer, ClientError> {
        let json = self.exchange("GET", &format!("/v1/streams/{id}/snapshot"), None, "")?;
        SnapshotTransfer::from_json(&json).map_err(|e| ClientError::Decode(e.message))
    }

    /// `POST /v1/streams/{id}/adopt` — install a replicated stream
    /// from a peer's [`snapshot`](ApiClient::snapshot) without
    /// re-uploading the dataset. Answers how many warm entries were
    /// restored; adopting onto an id that already hosts the same
    /// definition merges the slice idempotently.
    pub fn adopt(&self, id: &str, transfer: &SnapshotTransfer) -> Result<usize, ClientError> {
        let body = AdoptRequest {
            transfer: transfer.clone(),
        }
        .encode()
        .map_err(ClientError::Api)?;
        let json = self.exchange("POST", &format!("/v1/streams/{id}/adopt"), None, &body)?;
        json.get("restored_entries")
            .and_then(Json::as_usize)
            .ok_or_else(|| ClientError::Decode("adopt response missing restored_entries".into()))
    }

    /// `GET /v1/stats` — service, store, and tenant counters.
    pub fn stats(&self) -> Result<StatsResponse, ClientError> {
        let json = self.exchange("GET", "/v1/stats", None, "")?;
        StatsResponse::from_json(&json).map_err(|e| ClientError::Decode(e.message))
    }

    /// `GET /v1/streams` — registered stream names.
    pub fn streams(&self) -> Result<Vec<String>, ClientError> {
        let json = self.exchange("GET", "/v1/streams", None, "")?;
        json.get("streams")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Decode("streams response missing streams".to_string()))?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ClientError::Decode("non-string stream name".to_string()))
            })
            .collect()
    }
}

/// One request on a fresh connection; returns (status, body).
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> io::Result<(u16, String)> {
    let mut sock = TcpStream::connect(addr)?;
    write_request(&mut sock, method, path, headers, body)?;
    read_response(&mut sock)
}

/// `POST` a JSON body on a fresh connection.
pub fn post(
    addr: impl ToSocketAddrs,
    path: &str,
    json: &str,
    headers: &[(&str, &str)],
) -> io::Result<(u16, String)> {
    request(addr, "POST", path, headers, json)
}

/// `GET` on a fresh connection.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<(u16, String)> {
    request(addr, "GET", path, &[], "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_normalize_address_spellings() {
        let pools = ClientPools::new();
        // Port 9 (discard) — never connected to, only resolved.
        let a = pools.pool(("127.0.0.1", 9)).unwrap();
        let b = pools.pool("127.0.0.1:9").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same resolved addr must share a pool");
        assert_eq!(pools.len(), 1);

        // `localhost` shares the pool iff it resolves to 127.0.0.1
        // (dual-stack resolvers may add ::1 — still the same pool, now
        // keyed under both).
        let localhost: Vec<SocketAddr> = match ("localhost", 9u16).to_socket_addrs() {
            Ok(addrs) => addrs.collect(),
            Err(_) => return, // no resolver in this environment
        };
        if localhost.iter().any(|a| a.ip().is_loopback()) {
            let c = pools.pool(("localhost", 9)).unwrap();
            if localhost.contains(&a.addr()) {
                assert!(
                    Arc::ptr_eq(&a, &c),
                    "localhost must reuse the 127.0.0.1 pool"
                );
                assert_eq!(pools.len(), 1);
            }
        }

        let other = pools.pool("127.0.0.1:10").unwrap();
        assert!(!Arc::ptr_eq(&a, &other));
        assert_eq!(pools.len(), 2);
    }

    #[test]
    fn parse_framed_response_is_incremental() {
        let full = b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\nconnection: close\r\n\r\nhello";
        for cut in 0..full.len() {
            assert!(
                parse_framed_response(&full[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must ask for more"
            );
        }
        let (status, body, close) = parse_framed_response(full).unwrap().unwrap();
        assert_eq!((status, body.as_str(), close), (200, "hello", true));

        // Trailing bytes from a pipelined next response don't confuse it.
        let mut extra = full.to_vec();
        extra.extend_from_slice(b"HTTP/1.1 2");
        let (status, body, _) = parse_framed_response(&extra).unwrap().unwrap();
        assert_eq!((status, body.as_str()), (200, "hello"));

        for bad in [
            &b"BROKEN\r\n\r\n"[..],
            &b"HTTP/1.1 abc OK\r\n\r\n"[..],
            &b"HTTP/1.1 200 OK\r\ncontent-length: x\r\n\r\n"[..],
        ] {
            assert_eq!(
                parse_framed_response(bad).unwrap_err().kind(),
                io::ErrorKind::InvalidData
            );
        }
    }

    /// A full chunked response as the server writes it.
    fn chunked_response(chunks: &[&str], trailer: Option<&str>) -> Vec<u8> {
        let mut raw = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\
            trailer: x-fc-error\r\nconnection: close\r\n\r\n"
            .to_vec();
        for chunk in chunks {
            raw.extend_from_slice(format!("{:x}\r\n{chunk}\r\n", chunk.len()).as_bytes());
        }
        raw.extend_from_slice(b"0\r\n");
        if let Some(error) = trailer {
            raw.extend_from_slice(format!("x-fc-error: {error}\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        raw
    }

    #[test]
    fn chunked_response_concatenates_and_forces_close() {
        let raw = chunked_response(&["{\"plans\":[", "{\"x\":1}", ",{\"x\":2}", "]}"], None);
        // Every strict prefix asks for more — a truncated chunk body
        // or missing terminal chunk never parses as complete.
        for cut in 0..raw.len() {
            assert!(
                parse_framed_response(&raw[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must ask for more"
            );
        }
        let (status, body, close) = parse_framed_response(&raw).unwrap().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"plans\":[{\"x\":1},{\"x\":2}]}");
        assert!(close, "chunked responses always close the connection");
    }

    #[test]
    fn chunked_error_trailer_surfaces_as_typed_failure() {
        let raw = chunked_response(&["{\"plans\":[", "{\"x\":1}"], Some("500 solver exploded"));
        let err = parse_framed_response(&raw).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("500 solver exploded"));

        // The trailer decoder recovers the structured service error.
        match trailer_error("429 tenant over quota") {
            ClientError::Api(e) => {
                assert_eq!((e.status, e.message.as_str()), (429, "tenant over quota"));
            }
            other => panic!("expected Api error, got {other}"),
        }
        assert!(matches!(
            trailer_error("not a status"),
            ClientError::Decode(_)
        ));
    }

    #[test]
    fn chunk_size_line_abuse_is_rejected() {
        // Garbage size line.
        assert_eq!(
            parse_chunk_frame(b"zz\r\nhi\r\n").unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Empty size line.
        assert_eq!(
            parse_chunk_frame(b"\r\n").unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Oversized size line is rejected even before its CRLF arrives,
        // so a hostile peer cannot stall the reader with an endless line.
        let long = vec![b'f'; MAX_CHUNK_SIZE_LINE + 1];
        assert_eq!(
            parse_chunk_frame(&long).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // A syntactically valid but enormous chunk size is refused.
        assert_eq!(
            parse_chunk_frame(b"ffffffffffff\r\n").unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Chunk data must end with CRLF.
        assert_eq!(
            parse_chunk_frame(b"2\r\nhiXX").unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn terminal_chunk_parses_with_and_without_trailer() {
        let (frame, used) = parse_chunk_frame(b"0\r\n\r\n").unwrap().unwrap();
        assert_eq!((frame, used), (ChunkFrame::End { error: None }, 5));

        let raw = b"0\r\nx-fc-error: 503 backend drained\r\n\r\n";
        let (frame, used) = parse_chunk_frame(raw).unwrap().unwrap();
        assert_eq!(used, raw.len());
        assert_eq!(
            frame,
            ChunkFrame::End {
                error: Some("503 backend drained".to_string())
            }
        );

        // Unknown trailers are tolerated and skipped.
        let raw = b"0\r\nx-other: 1\r\n\r\n";
        let (frame, _) = parse_chunk_frame(raw).unwrap().unwrap();
        assert_eq!(frame, ChunkFrame::End { error: None });

        // An unterminated trailer section keeps asking for more bytes.
        assert!(parse_chunk_frame(b"0\r\nx-fc-error: 500 x")
            .unwrap()
            .is_none());
    }
}
