//! A minimal blocking HTTP/1.1 client for the front —
//! `Content-Length` framing, no redirects, no TLS. This is the
//! counterpart the examples, integration tests, CI gates, and the load
//! harness drive the server with (the environment has no `curl`
//! guarantee and no registry client crates); it is deliberately small,
//! not a general HTTP client.
//!
//! Two tiers: the free functions ([`post`], [`get`], [`request`]) open
//! a fresh connection per request — fine for one-shot smoke checks;
//! [`Conn`] holds one keep-alive connection across requests, and
//! [`ClientPool`] parks idle [`Conn`]s for reuse across calls (and
//! threads), which is what a replayer issuing thousands of requests
//! needs to avoid paying connect latency — and burning ephemeral
//! ports — per request.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Read timeout applied by [`read_response`] when the socket has none.
const DEFAULT_RESPONSE_TIMEOUT: Duration = Duration::from_secs(120);

/// Writes one request on `sock` (keep-alive framing: the connection
/// stays usable for [`read_response`] and further requests). `headers`
/// are extra headers, e.g. `[("x-tenant", "alice")]`.
pub fn write_request(
    sock: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: fc\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    sock.write_all(head.as_bytes())?;
    sock.write_all(body.as_bytes())
}

/// Reads one framed response off `reader`: (status, body, close) where
/// `close` reports a `connection: close` header — the server will not
/// serve another request on this connection.
fn read_framed_response(reader: &mut impl BufRead) -> io::Result<(u16, String, bool)> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before response",
        ));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(|_| bad("bad content-length"))?;
        } else if let Some(v) = lower.strip_prefix("connection:") {
            close = v.trim() == "close";
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|body| (status, body, close))
        .map_err(|_| bad("non-UTF-8 body"))
}

/// Reads one response from `sock`: returns (status, body). Applies a
/// generous read timeout when the caller has not set one.
///
/// The internal read buffer is discarded afterwards, so this is for
/// one-response-then-close use; a connection serving *multiple*
/// responses must hold its buffer across reads — use [`Conn`].
pub fn read_response(sock: &mut TcpStream) -> io::Result<(u16, String)> {
    if sock.read_timeout()?.is_none() {
        sock.set_read_timeout(Some(DEFAULT_RESPONSE_TIMEOUT))?;
    }
    let mut reader = BufReader::new(sock.try_clone()?);
    let (status, body, _close) = read_framed_response(&mut reader)?;
    Ok((status, body))
}

/// One keep-alive connection: request/response exchanges in lockstep,
/// with the read buffer held across responses so framing never loses
/// bytes between exchanges.
#[derive(Debug)]
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    close: bool,
}

impl Conn {
    /// Connects to `addr`. `timeout` bounds every read and write on
    /// the connection (default: a generous 120s on reads, unbounded
    /// writes).
    pub fn connect(addr: impl ToSocketAddrs, timeout: Option<Duration>) -> io::Result<Self> {
        let sock = TcpStream::connect(addr)?;
        sock.set_read_timeout(timeout.or(Some(DEFAULT_RESPONSE_TIMEOUT)))?;
        sock.set_write_timeout(timeout)?;
        sock.set_nodelay(true)?;
        let reader = BufReader::new(sock.try_clone()?);
        Ok(Self {
            reader,
            writer: sock,
            close: false,
        })
    }

    /// One request/response exchange; returns (status, body).
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> io::Result<(u16, String)> {
        write_request(&mut self.writer, method, path, headers, body)?;
        let (status, body, close) = read_framed_response(&mut self.reader)?;
        self.close = close;
        Ok((status, body))
    }

    /// Whether the server will accept another request on this
    /// connection (no `connection: close` seen yet).
    pub fn reusable(&self) -> bool {
        !self.close
    }
}

/// A keep-alive connection pool over one server address: requests
/// reuse a parked [`Conn`] when one is idle, connect otherwise, and
/// park the connection back afterwards. Shareable across threads
/// (each in-flight request holds its connection exclusively; the lock
/// guards only the idle list, never I/O).
///
/// A request that fails on a *reused* connection is retried once on a
/// fresh one — the server reaps idle keep-alive connections at its
/// read timeout, so a stale-connection error is expected, not
/// exceptional. Caveat: if the server executed the request but died
/// mid-response, the retry re-executes it; acceptable for this
/// bench/test client, whose requests are safe to repeat.
#[derive(Debug)]
pub struct ClientPool {
    addr: SocketAddr,
    timeout: Option<Duration>,
    max_idle: usize,
    idle: Mutex<Vec<Conn>>,
}

impl ClientPool {
    /// A pool over `addr` (resolved once, up front).
    pub fn new(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        Ok(Self {
            addr,
            timeout: None,
            max_idle: 16,
            idle: Mutex::new(Vec::new()),
        })
    }

    /// Bounds every read and write on pooled connections.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Caps parked idle connections (default 16); beyond it, finished
    /// connections are closed instead of parked.
    pub fn with_max_idle(mut self, max_idle: usize) -> Self {
        self.max_idle = max_idle;
        self
    }

    /// Connections currently parked idle.
    pub fn idle_connections(&self) -> usize {
        self.idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// One request on a pooled connection; returns (status, body).
    /// See the type docs for the stale-keep-alive retry semantics.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> io::Result<(u16, String)> {
        let reused = self
            .idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        if let Some(mut conn) = reused {
            if let Ok(response) = conn.send(method, path, headers, body) {
                self.park(conn);
                return Ok(response);
            }
            // Stale keep-alive (server reaped it while parked): fall
            // through to a fresh connection.
        }
        let mut conn = Conn::connect(self.addr, self.timeout)?;
        let response = conn.send(method, path, headers, body)?;
        self.park(conn);
        Ok(response)
    }

    /// `POST` a JSON body on a pooled connection.
    pub fn post(
        &self,
        path: &str,
        json: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<(u16, String)> {
        self.request("POST", path, headers, json)
    }

    /// `GET` on a pooled connection.
    pub fn get(&self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, &[], "")
    }

    fn park(&self, conn: Conn) {
        if !conn.reusable() {
            return;
        }
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        if idle.len() < self.max_idle {
            idle.push(conn);
        }
    }
}

/// One request on a fresh connection; returns (status, body).
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> io::Result<(u16, String)> {
    let mut sock = TcpStream::connect(addr)?;
    write_request(&mut sock, method, path, headers, body)?;
    read_response(&mut sock)
}

/// `POST` a JSON body on a fresh connection.
pub fn post(
    addr: impl ToSocketAddrs,
    path: &str,
    json: &str,
    headers: &[(&str, &str)],
) -> io::Result<(u16, String)> {
    request(addr, "POST", path, headers, json)
}

/// `GET` on a fresh connection.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<(u16, String)> {
    request(addr, "GET", path, &[], "")
}
