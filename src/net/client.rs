//! A minimal blocking HTTP/1.1 client for the front — one connection,
//! `Content-Length` framing, no redirects, no TLS. This is the
//! counterpart the examples, integration tests, and CI gates drive the
//! server with (the environment has no `curl` guarantee and no
//! registry client crates); it is deliberately small, not a general
//! HTTP client.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Read timeout applied by [`read_response`] when the socket has none.
const DEFAULT_RESPONSE_TIMEOUT: Duration = Duration::from_secs(120);

/// Writes one request on `sock` (keep-alive framing: the connection
/// stays usable for [`read_response`] and further requests). `headers`
/// are extra headers, e.g. `[("x-tenant", "alice")]`.
pub fn write_request(
    sock: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: fc\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    sock.write_all(head.as_bytes())?;
    sock.write_all(body.as_bytes())
}

/// Reads one response from `sock`: returns (status, body). Applies a
/// generous read timeout when the caller has not set one.
pub fn read_response(sock: &mut TcpStream) -> io::Result<(u16, String)> {
    if sock.read_timeout()?.is_none() {
        sock.set_read_timeout(Some(DEFAULT_RESPONSE_TIMEOUT))?;
    }
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let mut reader = BufReader::new(sock.try_clone()?);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(|_| bad("bad content-length"))?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|body| (status, body))
        .map_err(|_| bad("non-UTF-8 body"))
}

/// One request on a fresh connection; returns (status, body).
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> io::Result<(u16, String)> {
    let mut sock = TcpStream::connect(addr)?;
    write_request(&mut sock, method, path, headers, body)?;
    read_response(&mut sock)
}

/// `POST` a JSON body on a fresh connection.
pub fn post(
    addr: impl ToSocketAddrs,
    path: &str,
    json: &str,
    headers: &[(&str, &str)],
) -> io::Result<(u16, String)> {
    request(addr, "POST", path, headers, json)
}

/// `GET` on a fresh connection.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<(u16, String)> {
    request(addr, "GET", path, &[], "")
}
