//! A minimal blocking HTTP/1.1 client for the front —
//! `Content-Length` framing, no redirects, no TLS. This is the
//! counterpart the examples, integration tests, CI gates, and the load
//! harness drive the server with (the environment has no `curl`
//! guarantee and no registry client crates); it is deliberately small,
//! not a general HTTP client.
//!
//! Two tiers: the free functions ([`post`], [`get`], [`request`]) open
//! a fresh connection per request — fine for one-shot smoke checks;
//! [`Conn`] holds one keep-alive connection across requests, and
//! [`ClientPool`] parks idle [`Conn`]s for reuse across calls (and
//! threads), which is what a replayer issuing thousands of requests
//! needs to avoid paying connect latency — and burning ephemeral
//! ports — per request.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use super::api::{
    ApiError, CleanRequest, CleanResponse, PlanView, RecommendRequest, StatsResponse, SweepRequest,
};
use super::json::Json;

/// Read timeout applied by [`read_response`] when the socket has none.
const DEFAULT_RESPONSE_TIMEOUT: Duration = Duration::from_secs(120);

/// Writes one request on `sock` (keep-alive framing: the connection
/// stays usable for [`read_response`] and further requests). `headers`
/// are extra headers, e.g. `[("x-tenant", "alice")]`.
pub fn write_request(
    sock: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: fc\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    sock.write_all(head.as_bytes())?;
    sock.write_all(body.as_bytes())
}

/// Reads one framed response off `reader`: (status, body, close) where
/// `close` reports a `connection: close` header — the server will not
/// serve another request on this connection.
fn read_framed_response(reader: &mut impl BufRead) -> io::Result<(u16, String, bool)> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before response",
        ));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(|_| bad("bad content-length"))?;
        } else if let Some(v) = lower.strip_prefix("connection:") {
            close = v.trim() == "close";
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|body| (status, body, close))
        .map_err(|_| bad("non-UTF-8 body"))
}

/// Reads one response from `sock`: returns (status, body). Applies a
/// generous read timeout when the caller has not set one.
///
/// The internal read buffer is discarded afterwards, so this is for
/// one-response-then-close use; a connection serving *multiple*
/// responses must hold its buffer across reads — use [`Conn`].
pub fn read_response(sock: &mut TcpStream) -> io::Result<(u16, String)> {
    if sock.read_timeout()?.is_none() {
        sock.set_read_timeout(Some(DEFAULT_RESPONSE_TIMEOUT))?;
    }
    let mut reader = BufReader::new(sock.try_clone()?);
    let (status, body, _close) = read_framed_response(&mut reader)?;
    Ok((status, body))
}

/// One keep-alive connection: request/response exchanges in lockstep,
/// with the read buffer held across responses so framing never loses
/// bytes between exchanges.
#[derive(Debug)]
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    close: bool,
}

impl Conn {
    /// Connects to `addr`. `timeout` bounds every read and write on
    /// the connection (default: a generous 120s on reads, unbounded
    /// writes).
    pub fn connect(addr: impl ToSocketAddrs, timeout: Option<Duration>) -> io::Result<Self> {
        let sock = TcpStream::connect(addr)?;
        sock.set_read_timeout(timeout.or(Some(DEFAULT_RESPONSE_TIMEOUT)))?;
        sock.set_write_timeout(timeout)?;
        sock.set_nodelay(true)?;
        let reader = BufReader::new(sock.try_clone()?);
        Ok(Self {
            reader,
            writer: sock,
            close: false,
        })
    }

    /// One request/response exchange; returns (status, body).
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> io::Result<(u16, String)> {
        write_request(&mut self.writer, method, path, headers, body)?;
        let (status, body, close) = read_framed_response(&mut self.reader)?;
        self.close = close;
        Ok((status, body))
    }

    /// Whether the server will accept another request on this
    /// connection (no `connection: close` seen yet).
    pub fn reusable(&self) -> bool {
        !self.close
    }

    /// Like [`Conn::send`], but while waiting for the response the
    /// socket is polled every `poll` and `alive` is consulted; when it
    /// reports `false` the exchange is abandoned and `Ok(None)` is
    /// returned. The connection must then be **dropped**, not reused:
    /// the response is still in flight, and — more importantly —
    /// closing the socket is the signal that propagates a downstream
    /// hangup to the server, whose own disconnect probe cancels the
    /// request. This is how a routing front relays
    /// cancellation-on-disconnect instead of absorbing it.
    pub fn send_with_probe(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
        poll: Duration,
        alive: &mut dyn FnMut() -> bool,
    ) -> io::Result<Option<(u16, String)>> {
        write_request(&mut self.writer, method, path, headers, body)?;
        let overall = self
            .writer
            .read_timeout()?
            .unwrap_or(DEFAULT_RESPONSE_TIMEOUT);
        let deadline = Instant::now() + overall;
        // Short read timeouts turn the blocking read into a poll loop;
        // the original timeout is restored before returning the
        // connection to normal use.
        self.writer.set_read_timeout(Some(poll))?;
        let result = self.read_response_probing(deadline, alive);
        let restore = self.writer.set_read_timeout(Some(overall));
        if let Some((_, _, close)) = result.as_ref().ok().and_then(|r| r.as_ref()) {
            self.close = *close || restore.is_err();
        }
        result.map(|r| r.map(|(status, body, _)| (status, body)))
    }

    /// Accumulates raw bytes until a full framed response parses,
    /// probing `alive` on every read timeout.
    fn read_response_probing(
        &mut self,
        deadline: Instant,
        alive: &mut dyn FnMut() -> bool,
    ) -> io::Result<Option<(u16, String, bool)>> {
        let mut raw: Vec<u8> = Vec::new();
        loop {
            if let Some(response) = parse_framed_response(&raw)? {
                return Ok(Some(response));
            }
            match self.reader.fill_buf() {
                Ok([]) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before response",
                    ))
                }
                Ok(chunk) => {
                    raw.extend_from_slice(chunk);
                    let n = chunk.len();
                    self.reader.consume(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if !alive() {
                        return Ok(None);
                    }
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "response timed out",
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Attempts to parse one complete framed response from `raw`:
/// `Ok(None)` when more bytes are needed, `Ok(Some((status, body,
/// close)))` on success, and the same typed errors as the blocking
/// reader on malformed framing.
fn parse_framed_response(raw: &[u8]) -> io::Result<Option<(u16, String, bool)>> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("malformed status line"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(|_| bad("bad content-length"))?;
        } else if let Some(v) = lower.strip_prefix("connection:") {
            close = v.trim() == "close";
        }
    }
    let body_start = head_end + 4;
    if raw.len() < body_start + content_length {
        return Ok(None);
    }
    let body = std::str::from_utf8(&raw[body_start..body_start + content_length])
        .map_err(|_| bad("non-UTF-8 body"))?;
    Ok(Some((status, body.to_string(), close)))
}

/// A keep-alive connection pool over one server address: requests
/// reuse a parked [`Conn`] when one is idle, connect otherwise, and
/// park the connection back afterwards. Shareable across threads
/// (each in-flight request holds its connection exclusively; the lock
/// guards only the idle list, never I/O).
///
/// A request that fails on a *reused* connection is retried once on a
/// fresh one — the server reaps idle keep-alive connections at its
/// read timeout, so a stale-connection error is expected, not
/// exceptional. Caveat: if the server executed the request but died
/// mid-response, the retry re-executes it; acceptable for this
/// bench/test client, whose requests are safe to repeat.
#[derive(Debug)]
pub struct ClientPool {
    addr: SocketAddr,
    timeout: Option<Duration>,
    max_idle: usize,
    idle: Mutex<Vec<Conn>>,
}

impl ClientPool {
    /// A pool over `addr` (resolved once, up front).
    pub fn new(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        Ok(Self {
            addr,
            timeout: None,
            max_idle: 16,
            idle: Mutex::new(Vec::new()),
        })
    }

    /// Bounds every read and write on pooled connections.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Caps parked idle connections (default 16); beyond it, finished
    /// connections are closed instead of parked.
    pub fn with_max_idle(mut self, max_idle: usize) -> Self {
        self.max_idle = max_idle;
        self
    }

    /// The resolved address this pool connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently parked idle.
    pub fn idle_connections(&self) -> usize {
        self.idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// One request on a pooled connection; returns (status, body).
    /// See the type docs for the stale-keep-alive retry semantics.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> io::Result<(u16, String)> {
        let reused = self
            .idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        if let Some(mut conn) = reused {
            if let Ok(response) = conn.send(method, path, headers, body) {
                self.park(conn);
                return Ok(response);
            }
            // Stale keep-alive (server reaped it while parked): fall
            // through to a fresh connection.
        }
        let mut conn = Conn::connect(self.addr, self.timeout)?;
        let response = conn.send(method, path, headers, body)?;
        self.park(conn);
        Ok(response)
    }

    /// `POST` a JSON body on a pooled connection.
    pub fn post(
        &self,
        path: &str,
        json: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<(u16, String)> {
        self.request("POST", path, headers, json)
    }

    /// `GET` on a pooled connection.
    pub fn get(&self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, &[], "")
    }

    /// [`ClientPool::request`] with downstream-liveness probing
    /// ([`Conn::send_with_probe`]): `Ok(None)` means `alive` reported
    /// the downstream client gone — the upstream connection is dropped
    /// (not parked), closing the socket so the server's disconnect
    /// probe cancels the request. Only safe for requests that may
    /// re-execute (the stale-keep-alive retry applies here too).
    pub fn request_with_probe(
        &self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
        poll: Duration,
        alive: &mut dyn FnMut() -> bool,
    ) -> io::Result<Option<(u16, String)>> {
        let reused = self
            .idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        if let Some(mut conn) = reused {
            match conn.send_with_probe(method, path, headers, body, poll, alive) {
                Ok(Some(response)) => {
                    self.park(conn);
                    return Ok(Some(response));
                }
                // Downstream gone mid-exchange: drop the connection to
                // propagate the hangup upstream.
                Ok(None) => return Ok(None),
                // Stale keep-alive: fall through to a fresh connection.
                Err(_) => {}
            }
        }
        let mut conn = Conn::connect(self.addr, self.timeout)?;
        match conn.send_with_probe(method, path, headers, body, poll, alive)? {
            Some(response) => {
                self.park(conn);
                Ok(Some(response))
            }
            None => Ok(None),
        }
    }

    fn park(&self, conn: Conn) {
        if !conn.reusable() {
            return;
        }
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        if idle.len() < self.max_idle {
            idle.push(conn);
        }
    }
}

/// A registry of [`ClientPool`]s keyed by **resolved** socket address,
/// so spellings of the same backend (`localhost:p`, `127.0.0.1:p`) map
/// to one pool instead of holding duplicate idle sockets. An address
/// resolving to several socket addresses claims all of them: whichever
/// spelling arrives first wins, and later spellings that share any
/// resolved address reuse its pool.
#[derive(Debug, Default)]
pub struct ClientPools {
    timeout: Option<Duration>,
    pools: Mutex<HashMap<SocketAddr, Arc<ClientPool>>>,
}

impl ClientPools {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds reads and writes on every pool created by this registry.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// The pool for `addr`, created on first use. Two addresses that
    /// share any resolved [`SocketAddr`] get the same pool.
    pub fn pool(&self, addr: impl ToSocketAddrs) -> io::Result<Arc<ClientPool>> {
        let resolved: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if resolved.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved empty",
            ));
        }
        let mut pools = self.pools.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pool) = resolved.iter().find_map(|a| pools.get(a)) {
            return Ok(Arc::clone(pool));
        }
        let mut pool = ClientPool::new(resolved[0])?;
        if let Some(timeout) = self.timeout {
            pool = pool.with_timeout(timeout);
        }
        let pool = Arc::new(pool);
        for a in resolved {
            pools.insert(a, Arc::clone(&pool));
        }
        Ok(pool)
    }

    /// Pools currently registered (distinct pools, not distinct keys).
    pub fn len(&self) -> usize {
        let pools = self.pools.lock().unwrap_or_else(PoisonError::into_inner);
        let mut seen: Vec<*const ClientPool> = pools.values().map(Arc::as_ptr).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Whether no pool has been created yet.
    pub fn is_empty(&self) -> bool {
        self.pools
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }
}

/// What a typed [`ApiClient`] call can fail with: transport trouble,
/// a structured error response from the service, or a `200` whose body
/// did not decode as the expected type (a contract violation, not a
/// user error).
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing, or reading failed.
    Io(io::Error),
    /// The service answered with a non-2xx structured error.
    Api(ApiError),
    /// The response body did not match the expected shape.
    Decode(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Api(e) => write!(f, "service error ({}): {}", e.status, e.message),
            ClientError::Decode(what) => write!(f, "undecodable response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The typed client over the [`api`](super::api) surface: requests are
/// built from the typed structs and responses decoded back into them,
/// so callers never assemble JSON by hand (the raw [`post`]/[`get`]
/// tier stays public for malformed-input tests). Runs over a shared
/// [`ClientPool`], so clones and threads reuse keep-alive connections.
#[derive(Debug, Clone)]
pub struct ApiClient {
    pool: Arc<ClientPool>,
}

impl ApiClient {
    /// A client over its own pool to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self::over(Arc::new(ClientPool::new(addr)?)))
    }

    /// A client over an existing (possibly shared) pool.
    pub fn over(pool: Arc<ClientPool>) -> Self {
        Self { pool }
    }

    /// The underlying pool (e.g. to inspect idle connections).
    pub fn pool(&self) -> &Arc<ClientPool> {
        &self.pool
    }

    fn exchange(
        &self,
        method: &str,
        path: &str,
        tenant: Option<&str>,
        body: &str,
    ) -> Result<Json, ClientError> {
        let headers: &[(&str, &str)] = match tenant {
            Some(tenant) => &[("x-tenant", tenant)],
            None => &[],
        };
        let (status, text) = self.pool.request(method, path, headers, body)?;
        let json = Json::parse(&text)
            .map_err(|e| ClientError::Decode(format!("{status} body is not JSON: {e}")))?;
        if !(200..300).contains(&status) {
            let message = json
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unexplained error")
                .to_string();
            return Err(ClientError::Api(ApiError { status, message }));
        }
        Ok(json)
    }

    /// `POST /v1/recommend` — one plan at one budget (the target
    /// stream rides in the body).
    pub fn recommend(
        &self,
        request: &RecommendRequest,
        tenant: Option<&str>,
    ) -> Result<PlanView, ClientError> {
        let json = self.exchange("POST", "/v1/recommend", tenant, &request.encode())?;
        PlanView::from_json(&json).map_err(|e| ClientError::Decode(e.message))
    }

    /// `POST /v1/sweep` — one plan per budget.
    pub fn sweep(
        &self,
        request: &SweepRequest,
        tenant: Option<&str>,
    ) -> Result<Vec<PlanView>, ClientError> {
        let json = self.exchange("POST", "/v1/sweep", tenant, &request.encode())?;
        json.get("plans")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Decode("sweep response missing plans".to_string()))?
            .iter()
            .map(|p| PlanView::from_json(p).map_err(|e| ClientError::Decode(e.message)))
            .collect()
    }

    /// `POST /v1/streams/{stream}/clean` — reveal cleaned values.
    pub fn clean(
        &self,
        stream: &str,
        request: &CleanRequest,
        tenant: Option<&str>,
    ) -> Result<CleanResponse, ClientError> {
        let path = format!("/v1/streams/{stream}/clean");
        let json = self.exchange("POST", &path, tenant, &request.encode())?;
        CleanResponse::from_json(&json).map_err(|e| ClientError::Decode(e.message))
    }

    /// `GET /v1/stats` — service, store, and tenant counters.
    pub fn stats(&self) -> Result<StatsResponse, ClientError> {
        let json = self.exchange("GET", "/v1/stats", None, "")?;
        StatsResponse::from_json(&json).map_err(|e| ClientError::Decode(e.message))
    }

    /// `GET /v1/streams` — registered stream names.
    pub fn streams(&self) -> Result<Vec<String>, ClientError> {
        let json = self.exchange("GET", "/v1/streams", None, "")?;
        json.get("streams")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Decode("streams response missing streams".to_string()))?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ClientError::Decode("non-string stream name".to_string()))
            })
            .collect()
    }
}

/// One request on a fresh connection; returns (status, body).
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> io::Result<(u16, String)> {
    let mut sock = TcpStream::connect(addr)?;
    write_request(&mut sock, method, path, headers, body)?;
    read_response(&mut sock)
}

/// `POST` a JSON body on a fresh connection.
pub fn post(
    addr: impl ToSocketAddrs,
    path: &str,
    json: &str,
    headers: &[(&str, &str)],
) -> io::Result<(u16, String)> {
    request(addr, "POST", path, headers, json)
}

/// `GET` on a fresh connection.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<(u16, String)> {
    request(addr, "GET", path, &[], "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_normalize_address_spellings() {
        let pools = ClientPools::new();
        // Port 9 (discard) — never connected to, only resolved.
        let a = pools.pool(("127.0.0.1", 9)).unwrap();
        let b = pools.pool("127.0.0.1:9").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same resolved addr must share a pool");
        assert_eq!(pools.len(), 1);

        // `localhost` shares the pool iff it resolves to 127.0.0.1
        // (dual-stack resolvers may add ::1 — still the same pool, now
        // keyed under both).
        let localhost: Vec<SocketAddr> = match ("localhost", 9u16).to_socket_addrs() {
            Ok(addrs) => addrs.collect(),
            Err(_) => return, // no resolver in this environment
        };
        if localhost.iter().any(|a| a.ip().is_loopback()) {
            let c = pools.pool(("localhost", 9)).unwrap();
            if localhost.contains(&a.addr()) {
                assert!(
                    Arc::ptr_eq(&a, &c),
                    "localhost must reuse the 127.0.0.1 pool"
                );
                assert_eq!(pools.len(), 1);
            }
        }

        let other = pools.pool("127.0.0.1:10").unwrap();
        assert!(!Arc::ptr_eq(&a, &other));
        assert_eq!(pools.len(), 2);
    }

    #[test]
    fn parse_framed_response_is_incremental() {
        let full = b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\nconnection: close\r\n\r\nhello";
        for cut in 0..full.len() {
            assert!(
                parse_framed_response(&full[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must ask for more"
            );
        }
        let (status, body, close) = parse_framed_response(full).unwrap().unwrap();
        assert_eq!((status, body.as_str(), close), (200, "hello", true));

        // Trailing bytes from a pipelined next response don't confuse it.
        let mut extra = full.to_vec();
        extra.extend_from_slice(b"HTTP/1.1 2");
        let (status, body, _) = parse_framed_response(&extra).unwrap().unwrap();
        assert_eq!((status, body.as_str()), (200, "hello"));

        for bad in [
            &b"BROKEN\r\n\r\n"[..],
            &b"HTTP/1.1 abc OK\r\n\r\n"[..],
            &b"HTTP/1.1 200 OK\r\ncontent-length: x\r\n\r\n"[..],
        ] {
            assert_eq!(
                parse_framed_response(bad).unwrap_err().kind(),
                io::ErrorKind::InvalidData
            );
        }
    }
}
