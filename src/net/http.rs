//! Hand-rolled HTTP/1.1 framing on `std::io` — request parsing with
//! hard limits, and response writing. No registry crates, no async
//! runtime: the front runs on blocking sockets, which is exactly what
//! the hand-rolled-future serving layer beneath it expects.
//!
//! The parser is deliberately strict and bounded — this is the
//! process's network-facing edge:
//!
//! * the request line + headers must fit in
//!   [`MAX_HEADER_BYTES`] (`431` otherwise);
//! * bodies are framed by `Content-Length` only (chunked encoding is
//!   refused with `501`), must be declared (`411`), and must fit the
//!   server's body cap (`413`) **before** a byte of body is read;
//! * truncated requests (client hangs up mid-headers or mid-body) are
//!   typed `400`s, so the connection handler can answer what is
//!   answerable and close — never tear down the listener.
//!
//! ## Streamed responses
//!
//! *Responses* may additionally be written with `Transfer-Encoding:
//! chunked` framing ([`write_chunked_head`] / [`write_chunk`] /
//! [`finish_chunked`]) — the server uses this to stream sweep budget
//! points as they complete. Connection-reuse discipline is explicit: a
//! chunked response **always** carries `Connection: close` and the
//! connection is torn down after the terminal chunk. Keep-alive after a
//! stream would make the next response's framing depend on the client
//! having parsed every chunk boundary correctly; closing makes the
//! boundary unmistakable (and lets an abandoned stream double as the
//! cancellation signal). Mid-stream errors — after the status line is
//! long gone — are reported in the terminating trailer section as an
//! `x-fc-error` trailer; [`finish_chunked`] writes it.

use std::io::{self, BufRead, Write};

/// Cap on the request line + headers, bytes.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The method verb, as sent (e.g. `GET`).
    pub method: String,
    /// The request target, path + optional query, as sent.
    pub target: String,
    /// Headers, names lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
}

impl Request {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (query stripped).
    pub fn path(&self) -> &str {
        self.target.split(['?', '#']).next().unwrap_or("")
    }

    /// The value of query parameter `name` (`""` for a bare flag like
    /// `?stream`); `None` when absent. No percent-decoding — the
    /// parameters this front defines are plain tokens.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let query = self.target.split('#').next().unwrap_or("");
        let (_, query) = query.split_once('?')?;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before the first byte of a request — the client is
    /// simply done with the connection. Not an error to report.
    Closed,
    /// The socket idled past its read timeout between requests (no
    /// request bytes consumed). The handler decides whether to keep
    /// waiting or reap the connection.
    IdleTimeout,
    /// An I/O failure mid-request (reset, mid-request timeout).
    Io(io::Error),
    /// A malformed or unacceptable request. `status`/`reason` map
    /// straight onto the 4xx/5xx response; the connection must close
    /// afterwards (framing is unknown past the error point).
    Malformed {
        /// Response status code.
        status: u16,
        /// Short machine-readable slug (also the response `error`
        /// field).
        reason: &'static str,
    },
}

impl HttpError {
    fn malformed(status: u16, reason: &'static str) -> Self {
        Self::Malformed { status, reason }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Closed => write!(f, "connection closed"),
            Self::IdleTimeout => write!(f, "idle timeout"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Malformed { status, reason } => write!(f, "{status} {reason}"),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one request. `max_body` caps the declared `Content-Length`.
///
/// Timeout semantics: a timeout before the first byte is
/// [`HttpError::IdleTimeout`] (the connection is merely idle); a
/// timeout after is a `408` [`HttpError::Malformed`] — the client
/// started a request and stalled.
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let head = read_head(reader)?;
    let mut lines = head.split(|&b| b == b'\n').map(|line| {
        // Tolerate bare-LF clients; strict CRLF is the common case.
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        std::str::from_utf8(line)
    });

    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::malformed(400, "empty request"))?
        .map_err(|_| HttpError::malformed(400, "request line is not UTF-8"))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => return Err(HttpError::malformed(400, "malformed request line")),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::malformed(400, "malformed method"));
    }
    let http10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        _ => return Err(HttpError::malformed(505, "http version not supported")),
    };

    let mut headers = Vec::new();
    for line in lines {
        let line = line.map_err(|_| HttpError::malformed(400, "header is not UTF-8"))?;
        if line.is_empty() {
            continue; // the terminating blank line
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::malformed(400, "malformed header"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::malformed(400, "malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let header = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let connection = header("connection").unwrap_or("").to_ascii_lowercase();
    let close = connection.split(',').any(|t| t.trim() == "close")
        || (http10 && !connection.split(',').any(|t| t.trim() == "keep-alive"));

    if header("transfer-encoding").is_some() {
        return Err(HttpError::malformed(501, "transfer-encoding not supported"));
    }
    let body = match header("content-length") {
        Some(value) => {
            let declared: usize = value
                .trim()
                .parse()
                .map_err(|_| HttpError::malformed(400, "malformed content-length"))?;
            if declared > max_body {
                // Reject on the declaration — never buffer an oversized
                // body just to refuse it.
                return Err(HttpError::malformed(413, "body too large"));
            }
            let mut body = vec![0u8; declared];
            reader.read_exact(&mut body).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    HttpError::malformed(400, "truncated body")
                } else if is_timeout(&e) {
                    HttpError::malformed(408, "body read timed out")
                } else {
                    HttpError::Io(e)
                }
            })?;
            body
        }
        None if matches!(method, "POST" | "PUT" | "PATCH") => {
            return Err(HttpError::malformed(411, "content-length required"));
        }
        None => Vec::new(),
    };

    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
        close,
    })
}

/// Reads up to and including the blank line terminating the header
/// block, capped at [`MAX_HEADER_BYTES`].
fn read_head(reader: &mut impl BufRead) -> Result<Vec<u8>, HttpError> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                return Err(if head.is_empty() {
                    HttpError::Closed
                } else {
                    HttpError::malformed(400, "truncated headers")
                });
            }
            Ok(_) => {
                head.push(byte[0]);
                if head.len() > MAX_HEADER_BYTES {
                    return Err(HttpError::malformed(431, "headers too large"));
                }
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    return Ok(head);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                return Err(if head.is_empty() {
                    HttpError::IdleTimeout
                } else {
                    HttpError::malformed(408, "headers read timed out")
                });
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// The standard reason phrase for the status codes this front emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes one `application/json` response with `Content-Length`
/// framing; `close` adds `Connection: close`.
pub fn write_response(w: &mut impl Write, status: u16, body: &str, close: bool) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n{}\r\n",
        status,
        reason_phrase(status),
        body.len(),
        if close { "connection: close\r\n" } else { "" },
    )?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Name of the trailer carrying a mid-stream error (see
/// [`finish_chunked`]).
pub const ERROR_TRAILER: &str = "x-fc-error";

/// Starts a `Transfer-Encoding: chunked` response. Always closes the
/// connection after the stream (see the [module docs](self) for the
/// keep-alive discipline) and declares the [`ERROR_TRAILER`] so clients
/// know to look for it. Flushed immediately: the client sees the status
/// line before the first chunk's data exists.
pub fn write_chunked_head(w: &mut impl Write, status: u16) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\n\
         transfer-encoding: chunked\r\ntrailer: {ERROR_TRAILER}\r\nconnection: close\r\n\r\n",
        status,
        reason_phrase(status),
    )?;
    w.flush()
}

/// Writes one chunk (hex size line, data, CRLF) and flushes, so each
/// budget point is on the wire the moment it completes. Empty data is
/// skipped — a zero-length chunk would terminate the stream; that is
/// [`finish_chunked`]'s job.
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked response: the zero-length chunk, then the
/// trailer section. A mid-stream failure — the status line already said
/// `200` — is conveyed as an [`ERROR_TRAILER`] trailer (newlines
/// stripped: a trailer value must stay on its line). A client that
/// concatenates chunk bodies without reading trailers still never sees
/// a half-valid document silently: the stream ends mid-JSON.
pub fn finish_chunked(w: &mut impl Write, error: Option<&str>) -> io::Result<()> {
    w.write_all(b"0\r\n")?;
    if let Some(message) = error {
        let clean: String = message
            .chars()
            .map(|c| if c == '\r' || c == '\n' { ' ' } else { c })
            .collect();
        write!(w, "{ERROR_TRAILER}: {clean}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /v1/recommend?x=1 HTTP/1.1\r\nHost: h\r\nX-Tenant: alice\r\n\
              Content-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/recommend?x=1");
        assert_eq!(req.path(), "/v1/recommend");
        assert_eq!(req.header("x-tenant"), Some("alice"));
        assert_eq!(req.header("X-TENANT"), Some("alice"));
        assert_eq!(req.body, b"body");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_semantics() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.close);
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(req.close, "HTTP/1.0 defaults to close");
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!req.close);
    }

    #[test]
    fn malformed_requests_map_to_statuses() {
        let status = |raw: &[u8]| match parse(raw) {
            Err(HttpError::Malformed { status, .. }) => status,
            other => panic!("expected Malformed, got {other:?}"),
        };
        assert_eq!(status(b"garbage\r\n\r\n"), 400);
        assert_eq!(status(b"GET noslash HTTP/1.1\r\n\r\n"), 400);
        assert_eq!(status(b"get / HTTP/1.1\r\n\r\n"), 400, "lowercase method");
        assert_eq!(status(b"GET / HTTP/2.0\r\n\r\n"), 505);
        assert_eq!(status(b"GET / HTTP/1.1\r\nbad header\r\n\r\n"), 400);
        assert_eq!(status(b"POST / HTTP/1.1\r\n\r\n"), 411);
        assert_eq!(
            status(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            400
        );
        assert_eq!(
            status(b"POST / HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n"),
            413
        );
        assert_eq!(
            status(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            400,
            "over-declared body (client sent fewer bytes than declared)"
        );
        assert_eq!(
            status(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            501
        );
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_BYTES)
        );
        assert_eq!(status(huge.as_bytes()), 431);
    }

    #[test]
    fn eof_before_and_mid_request_differ() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
        assert!(matches!(
            parse(b"GET / HT"),
            Err(HttpError::Malformed { status: 400, .. })
        ));
    }

    #[test]
    fn query_params_parse_without_disturbing_the_path() {
        let req = parse(b"POST /v1/sweep?stream=1&x=a%20b HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}")
            .unwrap();
        assert_eq!(req.path(), "/v1/sweep");
        assert_eq!(req.query_param("stream"), Some("1"));
        assert_eq!(req.query_param("x"), Some("a%20b"), "no percent-decoding");
        assert_eq!(req.query_param("missing"), None);
        let req = parse(b"GET /v1/stats?stream HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("stream"), Some(""), "bare flag");
        let req = parse(b"GET /v1/stats HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("stream"), None);
    }

    #[test]
    fn chunked_writer_frames_and_always_closes() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200).unwrap();
        write_chunk(&mut out, b"{\"plans\":[").unwrap();
        write_chunk(&mut out, b"").unwrap(); // skipped, not terminal
        write_chunk(&mut out, b"]}").unwrap();
        finish_chunked(&mut out, None).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(
            text.contains("connection: close\r\n"),
            "chunked responses must close: {text}"
        );
        assert!(text.contains(&format!("trailer: {ERROR_TRAILER}\r\n")));
        let (_, body) = text.split_once("\r\n\r\n").unwrap();
        assert_eq!(body, "a\r\n{\"plans\":[\r\n2\r\n]}\r\n0\r\n\r\n");
    }

    #[test]
    fn chunked_error_trailer_is_newline_safe() {
        let mut out = Vec::new();
        finish_chunked(&mut out, Some("solver failed\r\nx-sneaky: yes")).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            format!("0\r\n{ERROR_TRAILER}: solver failed  x-sneaky: yes\r\n\r\n"),
            "newlines in the message cannot forge extra trailers"
        );
    }

    #[test]
    fn response_writer_frames_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        write_response(&mut out, 429, "{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("429 Too Many Requests"));
    }
}
