//! `fc::net::router` — the consistent-hash shard front.
//!
//! One [`PlannerServer`](super::PlannerServer) scales until one box
//! saturates; past that, the paper's interactive workload shards
//! naturally *by stream* — every recommend/sweep/clean names the
//! claim stream it operates on, and streams share nothing but the
//! cache store. [`RouterServer`] exploits that: it speaks the same
//! HTTP surface as a backend and consistent-hashes each request's
//! stream id onto one of N backends, so a fact-checker's session
//! sticks to one replica (warm scoped tables, warm benefits) while
//! the fleet shares the load.
//!
//! ## Routing and failure semantics
//!
//! * **Consistent hashing with virtual nodes** — each backend owns
//!   [`VNODES`] points on a 64-bit FNV-1a ring; a stream maps to the
//!   first point at or after its own hash. Adding or removing one
//!   backend moves only the streams that hashed to it.
//! * **Health probes** — a prober thread `GET`s `/v1/health` on every
//!   backend each [`RouterConfig::probe_interval`] (falling back to
//!   `/v1/stats` for backends without the health route). A probe
//!   failure marks the backend unhealthy; a later success restores it.
//! * **Drain / rotate** — a backend is *draining* when the operator
//!   flags it on the router (`POST /v1/admin/backends/{name}/drain`)
//!   or the backend advertises it (`draining: true` in its health
//!   body). Draining backends receive no new streams — requests
//!   rehash to the next live replica — but keep finishing whatever is
//!   in flight on them, and cleans still broadcast to them so their
//!   state stays byte-identical for an undrain.
//! * **Bounded retry for idempotent reads** — recommend, sweep, and
//!   the `GET` routes are safe to re-execute, so a transport error
//!   marks the backend unhealthy and retries the next distinct
//!   replica on the ring, each backend at most once. Cleans are
//!   mutations: they are **broadcast** to every healthy backend (so
//!   replicas stay byte-identical) and never retried; divergent
//!   outcomes surface as `502`.
//! * **Cancellation relays** — while a solve is in flight upstream the
//!   router probes its own client socket; a hangup drops the upstream
//!   connection, which the backend's disconnect probe turns into a
//!   cancel. The router never absorbs a disconnect.
//! * **Streamed sweeps pass through unbuffered** — `POST
//!   /v1/sweep?stream=1` is relayed chunk by chunk on a dedicated
//!   upstream connection: each budget point's chunk is forwarded (and
//!   flushed) the moment it arrives, so time-to-first-point through
//!   the router tracks the backend's, not the whole sweep. Failover
//!   happens only *before* response bytes reach the client; once the
//!   stream has started, an upstream failure is surfaced on the error
//!   trailer, and a client hangup mid-stream drops the upstream
//!   connection so the backend cancels the points still solving.
//! * **Stream lifecycle is ring-routed** — `POST /v1/streams` hashes
//!   the uploaded dataset's `id` onto the ring, so a created stream
//!   lands exactly where later solves for it will route; if that
//!   replica dies, re-creating the stream lands on the next one — the
//!   same replica the solves now route to. `GET`/`DELETE
//!   /v1/streams/{id}` follow the same order (without replication,
//!   deletes broadcast fleet-wide, since failovers may have left
//!   copies on several replicas).
//! * **Per-stream replication** — with
//!   [`RouterConfig::replication_factor`] `>= 2`, each stream's home
//!   is a *replica set*: the first R distinct, usable backends of its
//!   ring walk. Creates fan out to the whole set (unanimity required;
//!   a `409` member holding an identical-definition leftover copy is
//!   reconciled via an empty-slice adopt, any other divergence is a
//!   `502`), cleans scope to it, deletes reach the set plus every
//!   known straggler copy and leave a tombstone, and reads prefer the
//!   primary but fail over to secondaries that already host the
//!   stream — same session, byte-identical plans, no recreate
//!   round-trip. A background repair pass (or `POST /v1/admin/repair`
//!   for a synchronous one) re-replicates under-replicated streams
//!   onto the next ring successor and re-warms cold secondaries by
//!   relaying `GET /v1/streams/{id}/snapshot` bodies into `POST
//!   /v1/streams/{id}/adopt` — so a failover lands on a warm replica
//!   (`store_misses == 0`). The pass prefers in-set donors, purges
//!   lingering copies of tombstoned (deleted) streams instead of
//!   adopting them back, and backs off a re-warm that restored
//!   nothing (a capacity-bound target) until the donor grows warmer.
//!   Replication expects ring-governed placement: streams enter the
//!   fleet through the router, not by pre-installing them on
//!   arbitrary backends.
//!
//! Aggregate observability: `GET /v1/stats` sums the per-backend
//! stats into the single-box shape (sums preserve the invariants the
//! load harness checks), and `GET /v1/topology` reports the ring.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fc_core::planner::Fnv1a;

use super::api::{ApiError, StatsResponse};
use super::client::{
    parse_chunk_frame, parse_head, write_request, ChunkFrame, ClientPool, ClientPools, Conn,
};
use super::http::{
    finish_chunked, read_request, write_chunk, write_chunked_head, write_response, HttpError,
    Request,
};
use super::json::Json;
use super::server::{client_connected, LiveConnections};

/// Virtual nodes per backend on the hash ring: enough that removing
/// one backend spreads its streams across the survivors instead of
/// dumping them on one neighbour.
pub const VNODES: usize = 64;

/// Tuning knobs for a [`RouterServer`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RouterConfig {
    /// Cap on a request body's declared `Content-Length` (`413` past
    /// it). Default: 256 KiB.
    pub max_body_bytes: usize,
    /// Cap on concurrently served client connections (`503` past it).
    /// Default: 64.
    pub max_connections: usize,
    /// Client-side socket read/write timeout (doubles as the
    /// keep-alive idle timeout, as on the backend). Default: 5s.
    pub read_timeout: Duration,
    /// Bounds reads and writes on upstream (backend) connections —
    /// effectively the longest solve the router will wait out.
    /// Default: 120s.
    pub upstream_timeout: Duration,
    /// How often an in-flight upstream wait probes the *client* socket
    /// for disconnect. Default: 50ms.
    pub disconnect_poll: Duration,
    /// Health-probe cadence (and the worst-case latency for noticing a
    /// dead or drained backend without traffic). Default: 250ms.
    pub probe_interval: Duration,
    /// How many distinct ring backends host each stream. `1` (the
    /// default) is the classic one-stream-one-host placement; `2+`
    /// fans stream creates out to a replica set, scopes mutations to
    /// it, and arms the background repair pass that re-replicates and
    /// re-warms under-replicated streams via snapshot transfer.
    pub replication_factor: usize,
    /// Background repair-pass cadence (only runs with
    /// `replication_factor >= 2`; `POST /v1/admin/repair` forces a
    /// synchronous pass regardless). Default: 1s.
    pub repair_interval: Duration,
}

impl RouterConfig {
    /// The default configuration (see the field docs).
    pub fn new() -> Self {
        Self {
            max_body_bytes: 256 * 1024,
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            upstream_timeout: Duration::from_secs(120),
            disconnect_poll: Duration::from_millis(50),
            probe_interval: Duration::from_millis(250),
            replication_factor: 1,
            repair_interval: Duration::from_secs(1),
        }
    }

    /// Sets the body-size cap.
    pub fn with_max_body_bytes(mut self, bytes: usize) -> Self {
        self.max_body_bytes = bytes;
        self
    }

    /// Sets the concurrent-connection cap.
    pub fn with_max_connections(mut self, connections: usize) -> Self {
        self.max_connections = connections;
        self
    }

    /// Sets the client-side socket timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the upstream socket timeout.
    pub fn with_upstream_timeout(mut self, timeout: Duration) -> Self {
        self.upstream_timeout = timeout;
        self
    }

    /// Sets the client disconnect-probe cadence.
    pub fn with_disconnect_poll(mut self, poll: Duration) -> Self {
        self.disconnect_poll = poll;
        self
    }

    /// Sets the health-probe cadence.
    pub fn with_probe_interval(mut self, interval: Duration) -> Self {
        self.probe_interval = interval;
        self
    }

    /// Sets the per-stream replication factor (clamped to at least 1;
    /// values past the fleet size degrade to the fleet size).
    pub fn with_replication_factor(mut self, replicas: usize) -> Self {
        self.replication_factor = replicas.max(1);
        self
    }

    /// Sets the background repair-pass cadence.
    pub fn with_repair_interval(mut self, interval: Duration) -> Self {
        self.repair_interval = interval;
        self
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One upstream backend: its keep-alive pool plus live health state.
struct Backend {
    name: String,
    addr: SocketAddr,
    pool: Arc<ClientPool>,
    /// Cleared by a transport failure or failed probe, restored by the
    /// next successful probe. Starts optimistic.
    healthy: AtomicBool,
    /// Operator-set on the router (`/v1/admin/backends/{name}/drain`).
    draining: AtomicBool,
    /// The backend's own advisory drain flag, read off its health
    /// probe.
    advertised_draining: AtomicBool,
    /// Per-stream residency off the last health probe: `(stream id,
    /// warm entry count)` for every stream the backend hosts. The
    /// repair pass reads this to spot under-replicated or cold
    /// replicas; `/v1/topology` surfaces it to operators.
    residency: Mutex<Vec<(String, u64)>>,
}

impl Backend {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed) || self.advertised_draining.load(Ordering::Relaxed)
    }

    /// Eligible for *new* streams: healthy and not draining.
    fn available(&self) -> bool {
        self.healthy.load(Ordering::Relaxed) && !self.draining()
    }
}

/// Shared state of a running router.
struct RouterCtx {
    backends: Vec<Backend>,
    /// ring point → backend index.
    ring: BTreeMap<u64, usize>,
    config: RouterConfig,
    shutdown: AtomicBool,
    live: LiveConnections,
    /// Wakes the prober early on shutdown.
    prober_bed: (Mutex<bool>, Condvar),
    /// Wakes the repair thread early on shutdown.
    repair_bed: (Mutex<bool>, Condvar),
    /// Streams deleted while replication is on. The repair pass
    /// consults these so a copy the delete could not reach (a member
    /// dead at delete time, revived later; a straggler outside the
    /// current set) is purged rather than re-replicated — without the
    /// tombstone the pass would use the leftover copy as a donor and
    /// silently resurrect the stream. A tombstone is dropped when the
    /// id is re-created, or once a fully-healthy fleet reports no
    /// copy left.
    tombstones: Mutex<BTreeSet<String>>,
    /// Re-warm attempts that made no progress: `(stream id, target
    /// backend name)` → the donor's warm count when an adopt-merge
    /// restored nothing. A target whose store is at capacity can
    /// never catch up to the donor (restores don't evict), so without
    /// this memo the pass would re-fetch and re-adopt the full
    /// snapshot every interval, forever. Retried only once the donor
    /// has grown warmer than the recorded level.
    repair_stalls: Mutex<BTreeMap<(String, String), u64>>,
}

impl RouterCtx {
    /// Backend indices in ring order starting at `key`'s hash point —
    /// the try order for idempotent requests. Every backend appears
    /// exactly once; availability is checked at *try* time, not here,
    /// so health flips between routing and forwarding still land on
    /// the next replica.
    fn route_order(&self, key: &str) -> Vec<usize> {
        let mut h = Fnv1a::new();
        h.write_str(key);
        let point = mix64(h.finish());
        let mut order = Vec::with_capacity(self.backends.len());
        for &idx in self
            .ring
            .range(point..)
            .chain(self.ring.range(..point))
            .map(|(_, idx)| idx)
        {
            if !order.contains(&idx) {
                order.push(idx);
                if order.len() == self.backends.len() {
                    break;
                }
            }
        }
        order
    }

    /// The stream's *effective replica set*: the first
    /// `replication_factor` distinct backends of the ring walk that are
    /// currently usable — available ones first, then (to keep the set
    /// full through a drain) draining-but-healthy ones. A dead member
    /// is skipped, so its slot falls to the next ring successor — the
    /// same backend the repair pass re-replicates onto.
    fn replica_set(&self, order: &[usize]) -> Vec<usize> {
        let want = self.config.replication_factor.min(self.backends.len());
        let mut set: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&idx| self.backends[idx].available())
            .take(want)
            .collect();
        if set.len() < want {
            for &idx in order {
                if set.len() == want {
                    break;
                }
                if !set.contains(&idx) && self.backends[idx].healthy.load(Ordering::Relaxed) {
                    set.push(idx);
                }
            }
        }
        set
    }

    /// Whether per-stream replication is on (`replication_factor >=
    /// 2`). With it off, mutations keep the legacy fleet-wide
    /// broadcast: without ring-governed placement, failover recreates
    /// can strand stream copies on any backend.
    fn replicated(&self) -> bool {
        self.config.replication_factor >= 2
    }
}

/// FNV-1a has weak avalanche on short inputs — a backend's 64 vnode
/// points would cluster on the ring. A splitmix64-style finalizer over
/// the digest spreads them; both ring points and stream keys go
/// through it, so placement stays consistent.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Ring points for one backend's virtual nodes.
fn vnode_points(name: &str) -> impl Iterator<Item = u64> + '_ {
    (0..VNODES as u64).map(move |v| {
        let mut h = Fnv1a::new();
        h.write_str(name);
        h.write_u64(v);
        mix64(h.finish())
    })
}

/// The routing front: builder for a running [`RouterHandle`]. Register
/// backends by name and address, then [`RouterServer::serve`].
///
/// | route | behaviour |
/// |---|---|
/// | `POST /v1/recommend`, `/v1/sweep` | hash the body's stream id → forward, retrying the next replica on transport error |
/// | `POST /v1/sweep?stream=1` | same routing, relayed chunk-by-chunk as points complete upstream |
/// | `POST /v1/streams` | hash the body's `id` → create on that replica (next one if it is down); with replication, fan out to the whole replica set |
/// | `GET /v1/streams/{id}` | relayed from the stream's replica (ring order, failing over to secondaries) |
/// | `DELETE /v1/streams/{id}` | broadcast to the stream's replica set plus known straggler copies (fleet-wide without replication); unanimous `404` relays as `404`; tombstoned for the repair pass |
/// | `POST /v1/streams/{id}/clean` | broadcast to the stream's replica set (fleet-wide without replication); `502` on divergent outcomes |
/// | `GET /v1/stats` | per-backend stats summed into the single-box shape |
/// | `GET /v1/streams` | relayed from the first live backend |
/// | `GET /v1/topology` | the ring: backends, health, drain flags, per-stream residency |
/// | `GET /v1/health` | router liveness + live-backend count + replication factor |
/// | `POST /v1/admin/backends/{name}/drain` (`/undrain`) | flip the router-side drain flag |
/// | `POST /v1/admin/repair` | run one synchronous repair pass; answers its transfer report |
///
/// See the [module docs](self) for routing and failure semantics.
pub struct RouterServer {
    backends: Vec<(String, String)>,
    config: RouterConfig,
}

impl RouterServer {
    /// A router with no backends yet (serve requires at least one).
    pub fn new() -> Self {
        Self {
            backends: Vec::new(),
            config: RouterConfig::new(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: RouterConfig) -> Self {
        self.config = config;
        self
    }

    /// Registers a backend under `name` (the ring identity — keep it
    /// stable across that backend's restarts so its streams rehash
    /// back to it) at `addr`.
    pub fn with_backend(mut self, name: impl Into<String>, addr: impl Into<String>) -> Self {
        self.backends.push((name.into(), addr.into()));
        self
    }

    /// Binds `addr` and starts the accept loop and the health prober
    /// on background threads.
    pub fn serve(self, addr: impl ToSocketAddrs) -> io::Result<RouterHandle> {
        if self.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let pools = ClientPools::new().with_timeout(self.config.upstream_timeout);
        let mut backends = Vec::with_capacity(self.backends.len());
        let mut ring = BTreeMap::new();
        for (idx, (name, addr)) in self.backends.into_iter().enumerate() {
            if backends.iter().any(|b: &Backend| b.name == name) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate backend name {name:?}"),
                ));
            }
            let pool = pools.pool(addr.as_str())?;
            for point in vnode_points(&name) {
                // Collisions across backends are astronomically rare
                // with 64-bit points; first insertion wins.
                ring.entry(point).or_insert(idx);
            }
            backends.push(Backend {
                name,
                addr: pool.addr(),
                pool,
                healthy: AtomicBool::new(true),
                draining: AtomicBool::new(false),
                advertised_draining: AtomicBool::new(false),
                residency: Mutex::new(Vec::new()),
            });
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let ctx = Arc::new(RouterCtx {
            backends,
            ring,
            config: self.config,
            shutdown: AtomicBool::new(false),
            live: LiveConnections::default(),
            prober_bed: (Mutex::new(false), Condvar::new()),
            repair_bed: (Mutex::new(false), Condvar::new()),
            tombstones: Mutex::new(BTreeSet::new()),
            repair_stalls: Mutex::new(BTreeMap::new()),
        });
        let accept_ctx = Arc::clone(&ctx);
        let accept = std::thread::Builder::new()
            .name("fc-router-accept".into())
            .spawn(move || accept_loop(listener, accept_ctx))?;
        let probe_ctx = Arc::clone(&ctx);
        let prober = std::thread::Builder::new()
            .name("fc-router-probe".into())
            .spawn(move || prober_loop(&probe_ctx))?;
        let repair_ctx = Arc::clone(&ctx);
        let repairer = std::thread::Builder::new()
            .name("fc-router-repair".into())
            .spawn(move || repairer_loop(&repair_ctx))?;
        Ok(RouterHandle {
            addr,
            ctx,
            accept: Some(accept),
            prober: Some(prober),
            repairer: Some(repairer),
        })
    }
}

impl Default for RouterServer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for RouterServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterServer")
            .field("backends", &self.backends)
            .field("config", &self.config)
            .finish()
    }
}

/// A running router: its bound address plus graceful shutdown.
/// Dropping the handle shuts it down (draining in-flight relays).
pub struct RouterHandle {
    addr: SocketAddr,
    ctx: Arc<RouterCtx>,
    accept: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    repairer: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs one synchronous repair pass (the same thing `POST
    /// /v1/admin/repair` does over the wire): re-probes the fleet,
    /// then re-replicates and re-warms every under-replicated stream
    /// via snapshot transfer. Answers the pass's report.
    pub fn repair(&self) -> Json {
        repair_pass(&self.ctx)
    }

    /// Flips the router-side drain flag for `name`; `false` if no such
    /// backend. (The HTTP admin route does the same over the wire.)
    pub fn set_draining(&self, name: &str, draining: bool) -> bool {
        match self.ctx.backends.iter().find(|b| b.name == name) {
            Some(backend) => {
                backend.draining.store(draining, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Graceful shutdown: stop accepting, drain in-flight relays, stop
    /// the prober.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        self.ctx.live.wait_drained();
        for bed_pair in [&self.ctx.prober_bed, &self.ctx.repair_bed] {
            let (bed, alarm) = bed_pair;
            *bed.lock().unwrap_or_else(PoisonError::into_inner) = true;
            alarm.notify_all();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        if let Some(repairer) = self.repairer.take() {
            let _ = repairer.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for RouterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterHandle")
            .field("addr", &self.addr)
            .field("live_connections", &*self.ctx.live.lock())
            .finish()
    }
}

/// Probes every backend, sleeps, repeats; exits on shutdown. Probes
/// run on fresh short-timeout connections, never the relay pools, so a
/// wedged pool connection cannot blind the prober.
fn prober_loop(ctx: &RouterCtx) {
    loop {
        for backend in &ctx.backends {
            probe_backend(backend, ctx.config.read_timeout);
        }
        let (bed, alarm) = &ctx.prober_bed;
        let mut asleep = bed.lock().unwrap_or_else(PoisonError::into_inner);
        while !*asleep {
            let (next, timed_out) = alarm
                .wait_timeout(asleep, ctx.config.probe_interval)
                .unwrap_or_else(PoisonError::into_inner);
            asleep = next;
            if timed_out.timed_out() {
                break;
            }
        }
        if *asleep || ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// One health probe: `GET /v1/health`, falling back to `/v1/stats` on
/// backends without the health route. A `200` marks healthy, updates
/// the advertised drain flag, and refreshes the backend's per-stream
/// residency; anything else marks unhealthy.
fn probe_backend(backend: &Backend, timeout: Duration) {
    let exchange = Conn::connect(backend.addr, Some(timeout)).and_then(|mut conn| {
        match conn.send("GET", "/v1/health", &[], "")? {
            (404, _) => conn
                .send("GET", "/v1/stats", &[], "")
                .map(|(s, b)| (s, b, false)),
            (status, body) => Ok((status, body, true)),
        }
    });
    match exchange {
        Ok((200, body, has_health)) => {
            let health = has_health.then(|| Json::parse(&body).ok()).flatten();
            let advertised = health
                .as_ref()
                .and_then(|j| j.get("draining").and_then(Json::as_bool))
                .unwrap_or(false);
            backend
                .advertised_draining
                .store(advertised, Ordering::Relaxed);
            let residency = health
                .as_ref()
                .and_then(|j| j.get("streams").and_then(Json::as_array))
                .unwrap_or_default()
                .iter()
                .filter_map(|s| {
                    let id = s.get("id").and_then(Json::as_str)?;
                    let warm = s.get("warm_entries").and_then(Json::as_u64)?;
                    Some((id.to_string(), warm))
                })
                .collect();
            *backend
                .residency
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = residency;
            backend.healthy.store(true, Ordering::Relaxed);
        }
        _ => {
            backend.healthy.store(false, Ordering::Relaxed);
            // Drop the stale residency vector too, so `/v1/topology`
            // stops reporting streams as resident on a dead backend;
            // the next successful probe rebuilds it.
            backend
                .residency
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clear();
        }
    }
}

/// Runs a repair pass each `repair_interval` while replication is on;
/// exits on shutdown.
fn repairer_loop(ctx: &RouterCtx) {
    loop {
        let (bed, alarm) = &ctx.repair_bed;
        let mut asleep = bed.lock().unwrap_or_else(PoisonError::into_inner);
        while !*asleep {
            let (next, timed_out) = alarm
                .wait_timeout(asleep, ctx.config.repair_interval)
                .unwrap_or_else(PoisonError::into_inner);
            asleep = next;
            if timed_out.timed_out() {
                break;
            }
        }
        if *asleep || ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        drop(asleep);
        if ctx.replicated() {
            let _ = repair_pass(ctx);
        }
    }
}

/// One repair pass: re-probe the fleet for a current health/residency
/// view, then for every hosted stream bring its effective replica set
/// up to strength — a member that lacks the stream adopts a snapshot
/// from the warmest holder (re-replication after a host loss), and a
/// member that hosts it colder than the donor adopts the same slice as
/// an idempotent merge (re-warming, so a later failover serves with
/// `store_misses == 0`). Copies of *deleted* streams (tombstoned by
/// the router's `DELETE`) are purged from whoever still holds them
/// rather than re-replicated, and a re-warm that restored nothing is
/// not retried until the donor grows warmer. Answers a report of what
/// moved.
fn repair_pass(ctx: &RouterCtx) -> Json {
    for backend in &ctx.backends {
        probe_backend(backend, ctx.config.read_timeout);
    }
    // stream id → healthy holders as (backend index, warm entries).
    let mut hosts: BTreeMap<String, Vec<(usize, u64)>> = BTreeMap::new();
    for (idx, backend) in ctx.backends.iter().enumerate() {
        if !backend.healthy.load(Ordering::Relaxed) {
            continue;
        }
        let residency = backend
            .residency
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        for (id, warm) in residency {
            hosts.entry(id).or_default().push((idx, warm));
        }
    }
    // Settle tombstones against the fresh residency view. A tombstone
    // is forgotten only once *every* backend answered its probe and
    // none reports a copy — while any member is unreachable it may
    // still hold one, and forgetting early would let that copy
    // resurrect the stream on revival.
    let fleet_healthy = ctx
        .backends
        .iter()
        .all(|b| b.healthy.load(Ordering::Relaxed));
    let tombstoned: BTreeSet<String> = {
        let mut tombs = ctx
            .tombstones
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if fleet_healthy {
            tombs.retain(|id| hosts.contains_key(id));
        }
        tombs.clone()
    };
    ctx.repair_stalls
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .retain(|(id, _), _| hosts.contains_key(id) && !tombstoned.contains(id));
    let mut transfers: Vec<Json> = Vec::new();
    let mut purges: Vec<Json> = Vec::new();
    let mut conflicts: Vec<Json> = Vec::new();
    let mut failures: Vec<Json> = Vec::new();
    let failure = |step: &str, id: &str, backend: &Backend, status: Option<u16>, body: &str| {
        Json::obj([
            ("step", Json::Str(step.to_string())),
            ("stream", Json::Str(id.to_string())),
            ("backend", Json::Str(backend.name.clone())),
            (
                "status",
                status.map_or(Json::Str("transport".into()), |s| Json::Num(f64::from(s))),
            ),
            ("detail", Json::Str(body.chars().take(200).collect())),
        ])
    };
    for (id, holders) in &hosts {
        if !ctx.replicated() {
            break;
        }
        if tombstoned.contains(id) {
            // The stream was deleted; every surviving copy is a
            // leftover the delete could not reach. Purge it instead of
            // using it as a donor.
            for &(holder, _) in holders {
                let backend = &ctx.backends[holder];
                match backend
                    .pool
                    .request("DELETE", &format!("/v1/streams/{id}"), &[], "")
                {
                    Ok((200 | 404, _)) => purges.push(Json::obj([
                        ("stream", Json::Str(id.clone())),
                        ("backend", Json::Str(backend.name.clone())),
                    ])),
                    Ok((status, body)) => {
                        failures.push(failure("purge", id.as_str(), backend, Some(status), &body));
                    }
                    Err(_) => {
                        backend.healthy.store(false, Ordering::Relaxed);
                        failures.push(failure("purge", id.as_str(), backend, None, ""));
                    }
                }
            }
            continue;
        }
        let order = ctx.route_order(id);
        let targets = ctx.replica_set(&order);
        // Donor: the warmest *in-set* holder, ring order breaking ties
        // — so the primary donates unless a secondary is strictly
        // warmer, and a straggler copy outside the set (which scoped
        // mutations no longer reach) never donates over a live member.
        // Only when no set member hosts the stream at all — the true
        // host-loss case — does an out-of-set copy donate.
        let in_set: Vec<(usize, u64)> = holders
            .iter()
            .copied()
            .filter(|(idx, _)| targets.contains(idx))
            .collect();
        let candidates: &[(usize, u64)] = if in_set.is_empty() { holders } else { &in_set };
        let donor_warm = candidates.iter().map(|&(_, warm)| warm).max().unwrap_or(0);
        let Some(&donor) = order
            .iter()
            .filter_map(|idx| candidates.iter().find(|(h, _)| h == idx))
            .find(|(_, warm)| *warm == donor_warm)
            .map(|(idx, _)| idx)
        else {
            continue;
        };
        // The snapshot is fetched once, lazily, and adopted verbatim —
        // the adopt body *is* the snapshot body.
        let mut snapshot: Option<String> = None;
        for &target in &targets {
            let resident_warm = holders.iter().find(|(idx, _)| *idx == target);
            let stall_key = (id.clone(), ctx.backends[target].name.clone());
            let needs = match resident_warm {
                None => true,
                // A re-warm recorded as stalled is skipped until the
                // donor has grown warmer — a target at store capacity
                // can never catch up, and re-adopting the same
                // snapshot every interval is unbounded churn.
                Some(&(_, warm)) => {
                    warm < donor_warm
                        && ctx
                            .repair_stalls
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .get(&stall_key)
                            .is_none_or(|&at| donor_warm > at)
                }
            };
            if !needs || target == donor {
                continue;
            }
            let body = match &snapshot {
                Some(body) => body,
                None => match ctx.backends[donor]
                    .pool
                    .get(&format!("/v1/streams/{id}/snapshot"))
                {
                    Ok((200, body)) => snapshot.insert(body),
                    Ok((status, body)) => {
                        failures.push(failure(
                            "snapshot",
                            id.as_str(),
                            &ctx.backends[donor],
                            Some(status),
                            &body,
                        ));
                        break;
                    }
                    Err(_) => {
                        ctx.backends[donor].healthy.store(false, Ordering::Relaxed);
                        failures.push(failure(
                            "snapshot",
                            id.as_str(),
                            &ctx.backends[donor],
                            None,
                            "",
                        ));
                        break;
                    }
                },
            };
            match ctx.backends[target].pool.request(
                "POST",
                &format!("/v1/streams/{id}/adopt"),
                &[],
                body,
            ) {
                Ok((status @ (200 | 201), response)) => {
                    let restored = Json::parse(&response)
                        .ok()
                        .and_then(|j| j.get("restored_entries").and_then(Json::as_u64))
                        .unwrap_or(0);
                    // An adopt-merge that restored nothing is a
                    // stalled transfer: note the donor's warm level so
                    // the pass stops retrying until the donor grows
                    // past it.
                    let mut stalls = ctx
                        .repair_stalls
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    if status == 200 && restored == 0 {
                        stalls.insert(stall_key.clone(), donor_warm);
                    } else {
                        stalls.remove(&stall_key);
                    }
                    drop(stalls);
                    transfers.push(Json::obj([
                        ("stream", Json::Str(id.clone())),
                        ("from", Json::Str(ctx.backends[donor].name.clone())),
                        ("to", Json::Str(ctx.backends[target].name.clone())),
                        ("installed", Json::Bool(status == 201)),
                        ("restored_entries", Json::Num(restored as f64)),
                    ]));
                }
                Ok((409, body)) => {
                    conflicts.push(failure(
                        "adopt",
                        id.as_str(),
                        &ctx.backends[target],
                        Some(409),
                        &body,
                    ));
                }
                Ok((status, body)) => {
                    failures.push(failure(
                        "adopt",
                        id.as_str(),
                        &ctx.backends[target],
                        Some(status),
                        &body,
                    ));
                }
                Err(_) => {
                    ctx.backends[target].healthy.store(false, Ordering::Relaxed);
                    failures.push(failure(
                        "adopt",
                        id.as_str(),
                        &ctx.backends[target],
                        None,
                        "",
                    ));
                }
            }
        }
    }
    Json::obj([
        (
            "replication_factor",
            Json::Num(ctx.config.replication_factor as f64),
        ),
        ("streams_seen", Json::Num(hosts.len() as f64)),
        ("transfers", Json::Arr(transfers)),
        ("purges", Json::Arr(purges)),
        ("conflicts", Json::Arr(conflicts)),
        ("failures", Json::Arr(failures)),
    ])
}

/// RAII claim on a connection slot (see the server's twin): released
/// on drop so panicking handlers cannot wedge the drain.
struct ConnSlot(Arc<RouterCtx>);

impl ConnSlot {
    fn try_claim(ctx: &Arc<RouterCtx>) -> Option<Self> {
        ctx.live
            .try_enter(ctx.config.max_connections)
            .then(|| Self(Arc::clone(ctx)))
    }
}

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.live.exit();
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<RouterCtx>) {
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(sock) = stream else { continue };
        let Some(slot) = ConnSlot::try_claim(&ctx) else {
            let body = ApiError {
                status: 503,
                message: "connection limit reached".into(),
            }
            .body();
            let mut sock = sock;
            let _ = sock.set_write_timeout(Some(Duration::from_millis(250)));
            let _ = write_response(&mut sock, 503, &body, true);
            continue;
        };
        let conn_ctx = Arc::clone(&ctx);
        let _ = std::thread::Builder::new()
            .name("fc-router-conn".into())
            .spawn(move || {
                let _slot = slot;
                handle_connection(sock, &conn_ctx);
            });
    }
}

fn handle_connection(sock: TcpStream, ctx: &RouterCtx) {
    let _ = sock.set_read_timeout(Some(ctx.config.read_timeout));
    let _ = sock.set_write_timeout(Some(ctx.config.read_timeout));
    let _ = sock.set_nodelay(true);
    let Ok(read_half) = sock.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = sock;
    loop {
        let request = match read_request(&mut reader, ctx.config.max_body_bytes) {
            Ok(request) => request,
            Err(HttpError::Closed) | Err(HttpError::Io(_)) | Err(HttpError::IdleTimeout) => return,
            Err(HttpError::Malformed { status, reason }) => {
                let body = ApiError {
                    status,
                    message: reason.to_string(),
                }
                .body();
                let _ = write_response(&mut writer, status, &body, true);
                return;
            }
        };
        let close_after = request.close || ctx.shutdown.load(Ordering::SeqCst);
        match dispatch(ctx, &request, &writer) {
            Outcome::Respond { status, body } => {
                if write_response(&mut writer, status, &body, close_after).is_err() {
                    return;
                }
            }
            // A relayed chunked response declared `connection: close`;
            // the exchange owns the connection to its end.
            Outcome::Streamed => return,
            Outcome::ClientGone => return,
        }
        if close_after {
            return;
        }
    }
}

enum Outcome {
    Respond {
        status: u16,
        body: String,
    },
    /// The route relayed a chunked response itself; the connection
    /// closes with the stream.
    Streamed,
    ClientGone,
}

impl Outcome {
    fn ok(body: Json) -> Self {
        Self::Respond {
            status: 200,
            body: body.to_string(),
        }
    }
}

impl From<ApiError> for Outcome {
    fn from(e: ApiError) -> Self {
        Self::Respond {
            status: e.status,
            body: e.body(),
        }
    }
}

fn dispatch(ctx: &RouterCtx, request: &Request, sock: &TcpStream) -> Outcome {
    let path = request.path().to_string();
    let segments: Vec<&str> = path.strip_prefix('/').unwrap_or(&path).split('/').collect();
    let method = request.method.as_str();
    match (method, segments.as_slice()) {
        ("GET", ["v1", "stats"]) => relay_stats(ctx),
        ("GET", ["v1", "streams"]) => relay_get(ctx, "/v1/streams"),
        ("GET", ["v1", "topology"]) => topology(ctx),
        ("GET", ["v1", "health"]) => Outcome::ok(Json::obj([
            ("ok", Json::Bool(true)),
            (
                "backends_live",
                Json::Num(ctx.backends.iter().filter(|b| b.available()).count() as f64),
            ),
            ("backends", Json::Num(ctx.backends.len() as f64)),
            (
                "replication_factor",
                Json::Num(ctx.config.replication_factor as f64),
            ),
        ])),
        ("POST", ["v1", "recommend" | "sweep"]) => relay_solve(ctx, request, &path, sock),
        ("POST", ["v1", "streams"]) => relay_create_stream(ctx, request),
        ("GET", ["v1", "streams", id]) => relay_stream_scoped(ctx, "GET", id, &path),
        ("DELETE", ["v1", "streams", id]) => relay_delete_stream(ctx, request, id, &path),
        ("POST", ["v1", "streams", id, "clean"]) => relay_clean(ctx, request, id, &path),
        ("POST", ["v1", "admin", "backends", name, "drain"]) => set_drain(ctx, name, true),
        ("POST", ["v1", "admin", "backends", name, "undrain"]) => set_drain(ctx, name, false),
        ("POST", ["v1", "admin", "repair"]) => Outcome::ok(repair_pass(ctx)),
        (_, ["v1", "stats" | "streams" | "recommend" | "sweep" | "health" | "topology"])
        | (_, ["v1", "streams", _])
        | (_, ["v1", "streams", _, "clean"])
        | (_, ["v1", "admin", "repair"])
        | (_, ["v1", "admin", "backends", _, "drain" | "undrain"]) => ApiError {
            status: 405,
            message: format!("method {method} not allowed on {path}"),
        }
        .into(),
        _ => ApiError::not_found(format!("no route for {path}")).into(),
    }
}

/// `GET /v1/topology`: the ring as the operator sees it, including
/// each backend's per-stream residency from its last health probe —
/// the view the repair pass acts on, so under-replication is visible
/// where it is fixed.
fn topology(ctx: &RouterCtx) -> Outcome {
    Outcome::ok(Json::obj([
        ("vnodes_per_backend", Json::Num(VNODES as f64)),
        (
            "replication_factor",
            Json::Num(ctx.config.replication_factor as f64),
        ),
        (
            "backends",
            Json::Arr(
                ctx.backends
                    .iter()
                    .map(|b| {
                        let residency = b
                            .residency
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .iter()
                            .map(|(id, warm)| {
                                Json::obj([
                                    ("id", Json::Str(id.clone())),
                                    ("warm_entries", Json::Num(*warm as f64)),
                                ])
                            })
                            .collect();
                        Json::obj([
                            ("name", Json::Str(b.name.clone())),
                            ("addr", Json::Str(b.addr.to_string())),
                            ("healthy", Json::Bool(b.healthy.load(Ordering::Relaxed))),
                            ("draining", Json::Bool(b.draining())),
                            (
                                "drained_by_operator",
                                Json::Bool(b.draining.load(Ordering::Relaxed)),
                            ),
                            ("streams", Json::Arr(residency)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]))
}

fn set_drain(ctx: &RouterCtx, name: &str, draining: bool) -> Outcome {
    match ctx.backends.iter().find(|b| b.name == name) {
        Some(backend) => {
            backend.draining.store(draining, Ordering::Relaxed);
            Outcome::ok(Json::obj([
                ("name", Json::Str(backend.name.clone())),
                ("draining", Json::Bool(draining)),
            ]))
        }
        None => ApiError::not_found(format!("no backend named {name:?}")).into(),
    }
}

/// The stream id a request body names in `field` (the ring key):
/// `"stream"` on solves, `"id"` on stream creation — the same value,
/// so a created stream lands on the replica its solves route to. A
/// body the router cannot read keys as `""` — it still forwards, and
/// the backend produces the canonical `400`/`404`, byte-identical to
/// single-box.
fn stream_key(body: &[u8], field: &str) -> String {
    std::str::from_utf8(body)
        .ok()
        .and_then(|text| Json::parse(text).ok())
        .and_then(|json| json.get(field).and_then(Json::as_str).map(str::to_string))
        .unwrap_or_default()
}

/// Forwards an idempotent request along `order`, trying each live
/// backend at most once; a transport error marks the backend unhealthy
/// and moves on. The fallback pass admits draining (but healthy)
/// backends rather than failing the request — drain is a preference,
/// not a partition.
fn forward_idempotent(
    ctx: &RouterCtx,
    order: &[usize],
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
    alive: &mut dyn FnMut() -> bool,
) -> Result<Option<(u16, String)>, ApiError> {
    for admit_draining in [false, true] {
        for &idx in order {
            let backend = &ctx.backends[idx];
            let eligible = if admit_draining {
                backend.healthy.load(Ordering::Relaxed) && backend.draining()
            } else {
                backend.available()
            };
            if !eligible {
                continue;
            }
            match backend.pool.request_with_probe(
                method,
                path,
                headers,
                body,
                ctx.config.disconnect_poll,
                alive,
            ) {
                Ok(response) => return Ok(response),
                Err(_) => backend.healthy.store(false, Ordering::Relaxed),
            }
        }
    }
    Err(ApiError::unavailable("no live backend"))
}

fn relay_solve(ctx: &RouterCtx, request: &Request, path: &str, sock: &TcpStream) -> Outcome {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return ApiError::bad_request("body is not UTF-8").into();
    };
    let key = stream_key(&request.body, "stream");
    let order = ctx.route_order(&key);
    let tenant = request.header("x-tenant");
    let headers: Vec<(&str, &str)> = tenant.map(|t| ("x-tenant", t)).into_iter().collect();
    if request.query_param("stream").is_some() {
        return relay_solve_streamed(ctx, &order, path, &headers, body, sock);
    }
    let mut alive = || client_connected(sock);
    match forward_idempotent(ctx, &order, "POST", path, &headers, body, &mut alive) {
        Ok(Some((status, body))) => Outcome::Respond { status, body },
        Ok(None) => Outcome::ClientGone,
        Err(e) => e.into(),
    }
}

/// What one backend attempt of a streamed relay produced.
enum StreamRelay {
    /// The exchange ran to a decision — possibly after response bytes
    /// already reached the client, so no other replica may be tried.
    Done(Outcome),
    /// Transport trouble before any downstream bytes: safe to mark the
    /// backend unhealthy and try the next replica.
    Retry,
}

/// Relays `POST {path}?stream=1` chunk by chunk: the backend's chunks
/// are forwarded (and flushed) as they arrive, so the client holds the
/// first budget point while later ones are still solving upstream.
/// Replica failover stops the moment response bytes go downstream;
/// from then on an upstream failure becomes an error trailer, and a
/// client hangup drops the upstream connection (the cancellation
/// relay).
fn relay_solve_streamed(
    ctx: &RouterCtx,
    order: &[usize],
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
    sock: &TcpStream,
) -> Outcome {
    let target = format!("{path}?stream=1");
    for admit_draining in [false, true] {
        for &idx in order {
            let backend = &ctx.backends[idx];
            let eligible = if admit_draining {
                backend.healthy.load(Ordering::Relaxed) && backend.draining()
            } else {
                backend.available()
            };
            if !eligible {
                continue;
            }
            match stream_from_backend(ctx, backend, &target, headers, body, sock) {
                StreamRelay::Done(outcome) => return outcome,
                StreamRelay::Retry => backend.healthy.store(false, Ordering::Relaxed),
            }
        }
    }
    ApiError::unavailable("no live backend").into()
}

/// One streamed-relay attempt against `backend`, on a fresh dedicated
/// connection (never pooled: the backend closes it after the stream,
/// and dropping it mid-way is how cancellation propagates).
fn stream_from_backend(
    ctx: &RouterCtx,
    backend: &Backend,
    target: &str,
    headers: &[(&str, &str)],
    body: &str,
    sock: &TcpStream,
) -> StreamRelay {
    let prepared = TcpStream::connect(backend.addr).and_then(|upstream| {
        // The short read timeout turns reads into a poll loop so the
        // client socket is probed for disconnect between chunks.
        upstream.set_read_timeout(Some(ctx.config.disconnect_poll))?;
        upstream.set_write_timeout(Some(ctx.config.read_timeout))?;
        upstream.set_nodelay(true)?;
        let mut writer = upstream.try_clone()?;
        write_request(&mut writer, "POST", target, headers, body)?;
        Ok(upstream)
    });
    let Ok(upstream) = prepared else {
        return StreamRelay::Retry;
    };
    let deadline = Instant::now() + ctx.config.upstream_timeout;
    let mut reader = BufReader::new(upstream);
    let mut raw: Vec<u8> = Vec::new();
    let head = loop {
        match parse_head(&raw) {
            Ok(Some(head)) => break head,
            Ok(None) => {}
            Err(_) => return StreamRelay::Retry,
        }
        match fill_probing(&mut reader, &mut raw, sock, deadline) {
            Ok(true) => {}
            Ok(false) => return StreamRelay::Done(Outcome::ClientGone),
            Err(_) => return StreamRelay::Retry,
        }
    };
    raw.drain(..head.body_start);
    if !head.chunked {
        // A refusal (quota, bad request, …) arrives buffered; relay it
        // as such — the keep-alive loop stays usable.
        while raw.len() < head.content_length {
            match fill_probing(&mut reader, &mut raw, sock, deadline) {
                Ok(true) => {}
                Ok(false) => return StreamRelay::Done(Outcome::ClientGone),
                Err(_) => return StreamRelay::Retry,
            }
        }
        raw.truncate(head.content_length);
        let Ok(body) = String::from_utf8(raw) else {
            return StreamRelay::Retry;
        };
        return StreamRelay::Done(Outcome::Respond {
            status: head.status,
            body,
        });
    }
    let mut w = sock;
    if write_chunked_head(&mut w, head.status).is_err() {
        return StreamRelay::Done(Outcome::ClientGone);
    }
    loop {
        let frame = match parse_chunk_frame(&raw) {
            // Upstream framing broke mid-stream; the head is already
            // downstream, so surface the abort on the trailer.
            Err(_) => {
                let _ = finish_chunked(&mut w, Some("502 upstream stream broke"));
                return StreamRelay::Done(Outcome::Streamed);
            }
            Ok(None) => {
                match fill_probing(&mut reader, &mut raw, sock, deadline) {
                    Ok(true) => {}
                    Ok(false) => return StreamRelay::Done(Outcome::ClientGone),
                    Err(_) => {
                        let _ = finish_chunked(&mut w, Some("502 upstream failed mid-stream"));
                        return StreamRelay::Done(Outcome::Streamed);
                    }
                }
                continue;
            }
            Ok(Some((frame, used))) => {
                raw.drain(..used);
                frame
            }
        };
        match frame {
            ChunkFrame::Data(data) => {
                if write_chunk(&mut w, &data).is_err() {
                    // Client gone mid-stream: dropping the upstream
                    // connection cancels the points still solving.
                    return StreamRelay::Done(Outcome::ClientGone);
                }
            }
            ChunkFrame::End { error } => {
                let _ = finish_chunked(&mut w, error.as_deref());
                return StreamRelay::Done(Outcome::Streamed);
            }
        }
    }
}

/// One read appended onto `raw`, probing the client socket on every
/// read timeout: `Ok(true)` got bytes, `Ok(false)` client gone,
/// `Err` upstream EOF/transport failure or overall deadline.
fn fill_probing(
    reader: &mut BufReader<TcpStream>,
    raw: &mut Vec<u8>,
    sock: &TcpStream,
    deadline: Instant,
) -> io::Result<bool> {
    loop {
        match reader.fill_buf() {
            Ok([]) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "upstream closed mid-stream",
                ))
            }
            Ok(chunk) => {
                raw.extend_from_slice(chunk);
                let n = chunk.len();
                reader.consume(n);
                return Ok(true);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if !client_connected(sock) {
                    return Ok(false);
                }
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "upstream response timed out",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// `POST /v1/streams`: create the uploaded stream on the replica its
/// `id` hashes to — the same replica later solves route to — falling
/// over to the next one when it is down (which is also where the
/// solves will have moved). With `replication_factor >= 2` the create
/// fans out to the whole effective replica set: each member installs
/// the stream, so reads can fail over to a secondary without a
/// recreate round-trip. Unanimity is required (the canonical `400`/
/// `409` included); divergent replica answers are a `502`. A member
/// that drops mid-fan-out is skipped — the create still succeeds on
/// the survivors, and the repair pass restores full strength. One
/// divergence self-heals instead of festering: a `409` member amid
/// `201`s may hold an identical-definition leftover copy (a partial
/// create, ring churn), so it is probed with an empty-slice adopt —
/// the backend's definition-equality gate answers `200` for an
/// identical copy, which counts as success, and `409` for a genuine
/// conflict, which stays a `502`.
fn relay_create_stream(ctx: &RouterCtx, request: &Request) -> Outcome {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return ApiError::bad_request("body is not UTF-8").into();
    };
    let key = stream_key(&request.body, "id");
    let order = ctx.route_order(&key);
    if !ctx.replicated() {
        let mut alive = || true;
        return match forward_idempotent(ctx, &order, "POST", "/v1/streams", &[], body, &mut alive) {
            Ok(Some((status, body))) => Outcome::Respond { status, body },
            Ok(None) => unreachable!("alive() is constant true"),
            Err(e) => e.into(),
        };
    }
    let want = ctx.config.replication_factor.min(ctx.backends.len());
    let mut responses: Vec<(usize, u16, String)> = Vec::new();
    // Walk the ring past transport failures: a dead member's slot
    // falls to the next successor, keeping the set at full strength
    // when enough backends survive.
    for admit_draining in [false, true] {
        for &idx in &order {
            if responses.len() == want {
                break;
            }
            let backend = &ctx.backends[idx];
            let eligible = if admit_draining {
                backend.healthy.load(Ordering::Relaxed) && backend.draining()
            } else {
                backend.available()
            };
            if !eligible {
                continue;
            }
            match backend.pool.request("POST", "/v1/streams", &[], body) {
                Ok((status, response)) => responses.push((idx, status, response)),
                Err(_) => backend.healthy.store(false, Ordering::Relaxed),
            }
        }
    }
    let Some(&(_, first_status, ref first_body)) = responses.first() else {
        return ApiError::unavailable("no live backend").into();
    };
    let unanimous = responses
        .iter()
        .all(|&(_, status, _)| status == first_status);
    // A mixed 201/409 fan-out need not be a dead end: each 409 member
    // may hold an identical-definition leftover copy, so probe it with
    // an empty-slice adopt. A 200 merge proves the copy matches — the
    // member effectively hosts the created stream, so the create as a
    // whole converges instead of answering 502 to every retry forever.
    let reconciled = !unanimous
        && responses.iter().all(|&(_, s, _)| matches!(s, 201 | 409))
        && match Json::parse(body).ok() {
            None => false,
            Some(definition) => {
                let adopt_body = Json::obj([
                    ("definition", definition),
                    ("cache_slice", Json::Str(String::new())),
                    ("warm_entries", Json::Num(0.0)),
                ])
                .to_string();
                responses
                    .iter()
                    .filter(|&&(_, s, _)| s == 409)
                    .all(|&(idx, _, _)| {
                        matches!(
                            ctx.backends[idx].pool.request(
                                "POST",
                                &format!("/v1/streams/{key}/adopt"),
                                &[],
                                &adopt_body,
                            ),
                            Ok((200, _))
                        )
                    })
            }
        };
    if unanimous || reconciled {
        let (status, response) = responses
            .iter()
            .find(|&&(_, s, _)| s == 201)
            .map_or((first_status, first_body.clone()), |&(_, s, ref b)| {
                (s, b.clone())
            });
        // A live stream and a tombstone cannot coexist — the repair
        // pass would purge what the client just created.
        if status == 201 || status == 409 {
            ctx.tombstones
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&key);
        }
        return Outcome::Respond {
            status,
            body: response,
        };
    }
    ApiError::bad_gateway("replicas diverged creating the stream").into()
}

/// Scoped `GET /v1/streams/{id}`: relayed along the stream's ring
/// order, so it lands on the replica that hosts it.
fn relay_stream_scoped(ctx: &RouterCtx, method: &str, id: &str, path: &str) -> Outcome {
    let order = ctx.route_order(id);
    let mut alive = || true;
    match forward_idempotent(ctx, &order, method, path, &[], "", &mut alive) {
        Ok(Some((status, body))) => Outcome::Respond { status, body },
        Ok(None) => unreachable!("alive() is constant true"),
        Err(e) => e.into(),
    }
}

/// `DELETE /v1/streams/{id}`: with replication on, scoped to the
/// stream's effective replica set *plus* any healthy backend whose
/// last probe reported a copy — ring churn (a create fanned out while
/// a member was down, a revived host) can strand copies outside the
/// current set, and a copy the delete misses would be re-replicated
/// by the repair pass, resurrecting the stream. Without replication
/// the legacy fleet-wide broadcast stays. Either way, `404`s from set
/// members that missed the create are tolerated as long as every
/// hosting member agreed — but when *no* member hosts the stream the
/// unanimous `404` is relayed as a real `404`, never a silent
/// success. A successful replicated delete is tombstoned so the
/// repair pass purges copies on members it could not reach (dead now,
/// back later) instead of adopting them back.
fn relay_delete_stream(ctx: &RouterCtx, request: &Request, id: &str, path: &str) -> Outcome {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return ApiError::bad_request("body is not UTF-8").into();
    };
    let targets = delete_targets(ctx, id);
    let outcome = broadcast(ctx, &targets, "DELETE", path, &[], body, true);
    if ctx.replicated() {
        if let Outcome::Respond {
            status: 200..=299, ..
        } = outcome
        {
            ctx.tombstones
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(id.to_string());
        }
    }
    outcome
}

/// The backends a `DELETE` on `id` must reach (see
/// [`relay_delete_stream`]): the mutation targets, widened — when
/// replicated — by every healthy backend whose probed residency shows
/// the stream.
fn delete_targets(ctx: &RouterCtx, id: &str) -> Vec<usize> {
    let mut targets = mutation_targets(ctx, id);
    if ctx.replicated() {
        for (idx, backend) in ctx.backends.iter().enumerate() {
            if targets.contains(&idx) || !backend.healthy.load(Ordering::Relaxed) {
                continue;
            }
            let hosts_it = backend
                .residency
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .any(|(resident, _)| resident == id);
            if hosts_it {
                targets.push(idx);
            }
        }
    }
    targets
}

/// Relays a `GET` from the first live backend (ring order from the
/// path, so repeated calls stick while the fleet is stable).
fn relay_get(ctx: &RouterCtx, path: &str) -> Outcome {
    let order = ctx.route_order(path);
    let mut alive = || true;
    match forward_idempotent(ctx, &order, "GET", path, &[], "", &mut alive) {
        Ok(Some((status, body))) => Outcome::Respond { status, body },
        Ok(None) => unreachable!("alive() is constant true"),
        Err(e) => e.into(),
    }
}

/// Cleans are mutations: broadcast to the stream's mutation targets —
/// the effective replica set with replication on, every healthy
/// backend (draining included, so a drained backend stays
/// byte-identical for its undrain) without. Never retried; divergent
/// replica outcomes are a `502`, not a guess.
fn relay_clean(ctx: &RouterCtx, request: &Request, id: &str, path: &str) -> Outcome {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return ApiError::bad_request("body is not UTF-8").into();
    };
    let tenant = request.header("x-tenant");
    let headers: Vec<(&str, &str)> = tenant.map(|t| ("x-tenant", t)).into_iter().collect();
    let targets = mutation_targets(ctx, id);
    broadcast(ctx, &targets, "POST", path, &headers, body, false)
}

/// The backends a mutation on `id` must reach: the effective replica
/// set under ring-governed placement (`replication_factor >= 2`), or
/// every backend without it (copies may then live anywhere, so only a
/// fleet-wide broadcast keeps replicas byte-identical).
fn mutation_targets(ctx: &RouterCtx, id: &str) -> Vec<usize> {
    if ctx.replicated() {
        ctx.replica_set(&ctx.route_order(id))
    } else {
        (0..ctx.backends.len()).collect()
    }
}

/// Broadcasts a mutation to the healthy members of `targets`, never
/// retrying. A unanimous answer (success or the same canonical
/// rejection) is relayed as-is; anything else is a `502` — except
/// that, with `tolerate_not_found`, `404`s from replicas that simply
/// don't host the target are ignored as long as every replica that
/// *does* host it agreed. A unanimous `404` (nobody hosts it) is
/// relayed as the `404` it is.
fn broadcast(
    ctx: &RouterCtx,
    targets: &[usize],
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
    tolerate_not_found: bool,
) -> Outcome {
    let mut responses: Vec<(u16, String)> = Vec::new();
    for &idx in targets {
        let backend = &ctx.backends[idx];
        if !backend.healthy.load(Ordering::Relaxed) {
            continue;
        }
        match backend.pool.request(method, path, headers, body) {
            Ok(response) => responses.push(response),
            Err(_) => backend.healthy.store(false, Ordering::Relaxed),
        }
    }
    let Some((first_status, first_body)) = responses.first().cloned() else {
        return ApiError::unavailable("no live backend").into();
    };
    if responses.iter().all(|(status, _)| *status == first_status) {
        // Unanimous — success or the same canonical rejection.
        return Outcome::Respond {
            status: first_status,
            body: first_body,
        };
    }
    if tolerate_not_found {
        let hosts: Vec<&(u16, String)> = responses
            .iter()
            .filter(|(status, _)| *status != 404)
            .collect();
        if let Some(((status, body), rest)) = hosts.split_first() {
            if rest.iter().all(|(s, _)| s == status) {
                return Outcome::Respond {
                    status: *status,
                    body: body.clone(),
                };
            }
        }
    }
    ApiError::bad_gateway("replicas diverged applying the mutation").into()
}

/// `GET /v1/stats`: sums every live backend's stats into one
/// single-box-shaped body. Sums preserve the per-backend invariants
/// (e.g. `completed + cancelled + panics ≤ submitted`), so harness
/// checks written against one server hold against the fleet.
fn relay_stats(ctx: &RouterCtx) -> Outcome {
    let mut aggregate: Option<StatsResponse> = None;
    for backend in &ctx.backends {
        if !backend.healthy.load(Ordering::Relaxed) {
            continue;
        }
        let (status, body) = match backend.pool.get("/v1/stats") {
            Ok(response) => response,
            Err(_) => {
                backend.healthy.store(false, Ordering::Relaxed);
                continue;
            }
        };
        if status != 200 {
            continue;
        }
        let stats = Json::parse(&body)
            .ok()
            .and_then(|json| StatsResponse::from_json(&json).ok());
        let Some(stats) = stats else {
            return ApiError::bad_gateway(format!(
                "backend {} returned undecodable stats",
                backend.name
            ))
            .into();
        };
        match aggregate.as_mut() {
            Some(total) => total.absorb(&stats),
            None => aggregate = Some(stats),
        }
    }
    match aggregate {
        Some(total) => Outcome::ok(total.to_json()),
        None => ApiError::unavailable("no live backend").into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ctx(names: &[&str]) -> RouterCtx {
        let pools = ClientPools::new();
        let mut backends = Vec::new();
        let mut ring = BTreeMap::new();
        for (idx, name) in names.iter().enumerate() {
            // Port 9 (discard): resolved, never connected to.
            let pool = pools.pool(("127.0.0.1", 9)).unwrap();
            for point in vnode_points(name) {
                ring.entry(point).or_insert(idx);
            }
            backends.push(Backend {
                name: name.to_string(),
                addr: pool.addr(),
                pool,
                healthy: AtomicBool::new(true),
                draining: AtomicBool::new(false),
                advertised_draining: AtomicBool::new(false),
                residency: Mutex::new(Vec::new()),
            });
        }
        RouterCtx {
            backends,
            ring,
            config: RouterConfig::new(),
            shutdown: AtomicBool::new(false),
            live: LiveConnections::default(),
            prober_bed: (Mutex::new(false), Condvar::new()),
            repair_bed: (Mutex::new(false), Condvar::new()),
            tombstones: Mutex::new(BTreeSet::new()),
            repair_stalls: Mutex::new(BTreeMap::new()),
        }
    }

    #[test]
    fn route_order_is_stable_and_covers_every_backend() {
        let ctx = test_ctx(&["a", "b", "c"]);
        for key in ["s0", "s1", "claims", ""] {
            let order = ctx.route_order(key);
            assert_eq!(order.len(), 3, "{key}: every backend appears");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "{key}: each exactly once");
            assert_eq!(order, ctx.route_order(key), "{key}: deterministic");
        }
    }

    #[test]
    fn streams_spread_across_backends() {
        let ctx = test_ctx(&["a", "b", "c"]);
        let mut first_choice = [0usize; 3];
        for i in 0..200 {
            first_choice[ctx.route_order(&format!("stream-{i}"))[0]] += 1;
        }
        for (idx, count) in first_choice.iter().enumerate() {
            assert!(
                *count > 0,
                "backend {idx} never first across 200 streams: {first_choice:?}"
            );
        }
    }

    #[test]
    fn removing_a_backend_only_moves_its_own_streams() {
        let full = test_ctx(&["a", "b", "c"]);
        let reduced = test_ctx(&["a", "b"]);
        for i in 0..100 {
            let key = format!("stream-{i}");
            let before = full.route_order(&key)[0];
            let after = reduced.route_order(&key)[0];
            if before != 2 {
                assert_eq!(
                    before, after,
                    "{key}: removing c must not move streams off a/b"
                );
            }
        }
    }

    #[test]
    fn replica_set_takes_ring_successors_and_skips_the_dead() {
        let mut ctx = test_ctx(&["a", "b", "c"]);
        ctx.config.replication_factor = 2;
        let order = ctx.route_order("stream-x");
        let set = ctx.replica_set(&order);
        assert_eq!(set, order[..2].to_vec(), "first two ring backends");

        // The primary dies: its slot falls to the next ring successor,
        // exactly where the repair pass re-replicates.
        ctx.backends[order[0]]
            .healthy
            .store(false, Ordering::Relaxed);
        assert_eq!(ctx.replica_set(&order), order[1..].to_vec());

        // A draining (but healthy) member still fills the set when
        // nothing better is available.
        ctx.backends[order[0]]
            .healthy
            .store(true, Ordering::Relaxed);
        ctx.backends[order[1]]
            .draining
            .store(true, Ordering::Relaxed);
        let through_drain = ctx.replica_set(&order);
        assert_eq!(through_drain[0], order[0]);
        assert_eq!(through_drain.len(), 2);

        // Factor past the fleet size degrades to the fleet.
        ctx.config.replication_factor = 9;
        ctx.backends[order[1]]
            .draining
            .store(false, Ordering::Relaxed);
        assert_eq!(ctx.replica_set(&order).len(), 3);
    }

    #[test]
    fn mutation_targets_scope_to_the_set_only_when_replicated() {
        let mut ctx = test_ctx(&["a", "b", "c"]);
        assert_eq!(
            mutation_targets(&ctx, "stream-x"),
            vec![0, 1, 2],
            "without replication mutations stay fleet-wide"
        );
        ctx.config.replication_factor = 2;
        let order = ctx.route_order("stream-x");
        assert_eq!(mutation_targets(&ctx, "stream-x"), order[..2].to_vec());
    }

    #[test]
    fn delete_targets_widen_to_known_straggler_copies() {
        let mut ctx = test_ctx(&["a", "b", "c"]);
        ctx.config.replication_factor = 2;
        let order = ctx.route_order("stream-x");
        let set = ctx.replica_set(&order);
        let outsider = order[2];
        assert!(!set.contains(&outsider));

        // No residency anywhere: the delete stays scoped to the set.
        assert_eq!(delete_targets(&ctx, "stream-x"), set);

        // A healthy out-of-set backend reporting a copy is included —
        // a copy the delete misses would resurrect via repair.
        *ctx.backends[outsider]
            .residency
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = vec![("stream-x".to_string(), 3)];
        let widened = delete_targets(&ctx, "stream-x");
        assert!(widened.contains(&outsider), "straggler copy is reached");
        assert_eq!(widened.len(), set.len() + 1);
        // ...but only for the stream it actually hosts: another
        // stream's delete stays scoped to that stream's own set.
        assert_eq!(
            delete_targets(&ctx, "stream-y"),
            ctx.replica_set(&ctx.route_order("stream-y"))
        );

        // A dead backend is not a target (the tombstone covers it).
        ctx.backends[outsider]
            .healthy
            .store(false, Ordering::Relaxed);
        assert!(!delete_targets(&ctx, "stream-x").contains(&outsider));

        // Without replication, deletes stay fleet-wide.
        ctx.config.replication_factor = 1;
        assert_eq!(delete_targets(&ctx, "stream-x"), vec![0, 1, 2]);
    }

    #[test]
    fn drain_flags_gate_availability_not_membership() {
        let ctx = test_ctx(&["a", "b"]);
        assert!(ctx.backends[0].available());
        ctx.backends[0].draining.store(true, Ordering::Relaxed);
        assert!(!ctx.backends[0].available());
        assert!(ctx.backends[0].healthy.load(Ordering::Relaxed));
        ctx.backends[0].draining.store(false, Ordering::Relaxed);
        ctx.backends[0]
            .advertised_draining
            .store(true, Ordering::Relaxed);
        assert!(!ctx.backends[0].available(), "advertised drain also gates");
        // Ring membership is unchanged: the stream still *hashes* to
        // it; skipping happens at try time.
        assert_eq!(ctx.route_order("x").len(), 2);
    }
}
