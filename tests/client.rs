//! Direct tests for `fc::net::client` — previously exercised only
//! through server round-trips. Mock servers speaking raw bytes pin
//! down the client's own behavior: malformed responses are typed
//! errors (not panics or hangs), `Conn` keep-alive reuse really reuses
//! one TCP connection, timeouts fire, and `ClientPool` parks, reuses,
//! and retires connections as documented.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fact_clean::net::client::{self, ClientPool, Conn};

/// Boots a raw-byte mock server; `serve` is called once per accepted
/// connection with (connection index, socket). Returns the address
/// and the accepted-connection counter. The accept thread is detached
/// (reaped at process exit, as is usual for test fixtures).
fn mock_server<F>(serve: F) -> (SocketAddr, Arc<AtomicUsize>)
where
    F: Fn(usize, TcpStream) + Send + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let accepted = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&accepted);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(sock) = stream else { continue };
            let index = counter.fetch_add(1, Ordering::SeqCst);
            serve(index, sock);
        }
    });
    (addr, accepted)
}

/// Reads one request off `sock` (headers + `Content-Length` body);
/// returns false on close/error.
fn consume_request(sock: &mut TcpStream) -> bool {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        match sock.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => return false,
        }
    }
    let text = String::from_utf8_lossy(&head).to_ascii_lowercase();
    let length: usize = text
        .lines()
        .find_map(|line| line.strip_prefix("content-length:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    length == 0 || sock.read_exact(&mut body).is_ok()
}

fn respond_with(raw: &'static str) -> impl Fn(usize, TcpStream) + Send + 'static {
    move |_, mut sock| {
        if consume_request(&mut sock) {
            let _ = sock.write_all(raw.as_bytes());
        }
    }
}

fn expect_err(result: io::Result<(u16, String)>, kinds: &[ErrorKind], what: &str) {
    match result {
        Ok((status, body)) => panic!("{what}: expected an error, got {status} {body:?}"),
        Err(e) => assert!(
            kinds.contains(&e.kind()),
            "{what}: unexpected error kind {:?} ({e})",
            e.kind()
        ),
    }
}

// ------------------------------------------------- malformed responses

#[test]
fn garbage_status_line_is_invalid_data() {
    let (addr, _) = mock_server(respond_with("not http at all\r\n\r\n"));
    expect_err(
        client::get(addr, "/"),
        &[ErrorKind::InvalidData],
        "garbage status line",
    );
}

#[test]
fn unparseable_content_length_is_invalid_data() {
    let (addr, _) = mock_server(respond_with(
        "HTTP/1.1 200 OK\r\ncontent-length: many\r\n\r\n",
    ));
    expect_err(
        client::get(addr, "/"),
        &[ErrorKind::InvalidData],
        "bad content-length",
    );
}

#[test]
fn truncated_body_is_unexpected_eof() {
    // Claims 10 body bytes, sends 3, closes.
    let (addr, _) = mock_server(respond_with(
        "HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nabc",
    ));
    expect_err(
        client::get(addr, "/"),
        &[ErrorKind::UnexpectedEof],
        "truncated body",
    );
}

#[test]
fn close_before_response_is_unexpected_eof() {
    // The mock must read the request before closing: dropping a socket
    // with unread data provokes an RST (ConnectionReset) rather than
    // the clean FIN → EOF this test pins down.
    let (addr, _) = mock_server(|_, mut sock| {
        consume_request(&mut sock);
    });
    expect_err(
        client::get(addr, "/"),
        &[ErrorKind::UnexpectedEof],
        "close before response",
    );
}

#[test]
fn non_utf8_body_is_invalid_data() {
    let (addr, _) = mock_server(|_, mut sock| {
        if consume_request(&mut sock) {
            let _ = sock.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\n\xff\xfe");
        }
    });
    expect_err(
        client::get(addr, "/"),
        &[ErrorKind::InvalidData],
        "non-UTF-8 body",
    );
}

// ---------------------------------------------------------- timeouts

#[test]
fn read_timeout_fires_on_a_silent_server() {
    // Accepts, reads the request, never answers.
    let (addr, _) = mock_server(|_, mut sock| {
        if consume_request(&mut sock) {
            std::thread::sleep(Duration::from_secs(30));
        }
    });
    let mut conn = Conn::connect(addr, Some(Duration::from_millis(100))).expect("connect");
    let started = Instant::now();
    expect_err(
        conn.send("GET", "/", &[], ""),
        &[ErrorKind::WouldBlock, ErrorKind::TimedOut],
        "silent server",
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout did not bound the wait: {:?}",
        started.elapsed()
    );
}

// --------------------------------------------------- keep-alive reuse

#[test]
fn conn_reuses_one_tcp_connection_across_requests() {
    let (addr, accepted) = mock_server(|index, mut sock| {
        while consume_request(&mut sock) {
            let body = format!("{{\"conn\":{index}}}");
            let head = format!("HTTP/1.1 200 OK\r\ncontent-length: {}\r\n\r\n", body.len());
            if sock.write_all(head.as_bytes()).is_err() || sock.write_all(body.as_bytes()).is_err()
            {
                return;
            }
        }
    });
    let mut conn = Conn::connect(addr, Some(Duration::from_secs(5))).expect("connect");
    for i in 0..5 {
        let (status, body) = conn.send("GET", "/", &[], "").expect("exchange");
        assert_eq!(status, 200, "request {i}");
        assert_eq!(body, "{\"conn\":0}", "request {i} crossed connections");
        assert!(conn.reusable());
    }
    assert_eq!(
        accepted.load(Ordering::SeqCst),
        1,
        "five requests must ride one TCP connection"
    );
}

#[test]
fn connection_close_header_retires_the_connection() {
    let (addr, _) = mock_server(respond_with(
        "HTTP/1.1 200 OK\r\nconnection: close\r\ncontent-length: 2\r\n\r\nok",
    ));
    let mut conn = Conn::connect(addr, Some(Duration::from_secs(5))).expect("connect");
    let (status, body) = conn.send("GET", "/", &[], "").expect("exchange");
    assert_eq!((status, body.as_str()), (200, "ok"));
    assert!(!conn.reusable(), "connection: close must retire the Conn");
}

// ------------------------------------------------------------- pool

fn keep_alive_mock() -> (SocketAddr, Arc<AtomicUsize>) {
    mock_server(|_, mut sock| {
        while consume_request(&mut sock) {
            let response = "HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok";
            if sock.write_all(response.as_bytes()).is_err() {
                return;
            }
        }
    })
}

#[test]
fn pool_parks_and_reuses_connections() {
    let (addr, accepted) = keep_alive_mock();
    let pool = ClientPool::new(addr)
        .expect("pool")
        .with_timeout(Duration::from_secs(5));
    for _ in 0..4 {
        let (status, _) = pool.get("/").expect("pooled GET");
        assert_eq!(status, 200);
    }
    assert_eq!(
        pool.idle_connections(),
        1,
        "sequential requests share one parked conn"
    );
    assert_eq!(
        accepted.load(Ordering::SeqCst),
        1,
        "four pooled requests must ride one TCP connection"
    );
}

#[test]
fn pool_retries_a_stale_parked_connection() {
    // Closes each connection after serving ONE response: every parked
    // connection is stale by the time it is reused.
    let (addr, accepted) = mock_server(|_, mut sock| {
        if consume_request(&mut sock) {
            let _ = sock.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok");
        }
        // Dropping the socket closes it without a connection: close
        // header — the client parks it believing it reusable.
    });
    let pool = ClientPool::new(addr)
        .expect("pool")
        .with_timeout(Duration::from_secs(5));
    for i in 0..3 {
        let (status, _) = pool
            .request("GET", "/", &[], "")
            .expect("request {i} survives staleness");
        assert_eq!(status, 200, "request {i}");
    }
    assert_eq!(
        accepted.load(Ordering::SeqCst),
        3,
        "each retry must open a fresh connection"
    );
}

#[test]
fn pool_respects_max_idle_zero() {
    let (addr, accepted) = keep_alive_mock();
    let pool = ClientPool::new(addr)
        .expect("pool")
        .with_timeout(Duration::from_secs(5))
        .with_max_idle(0);
    for _ in 0..3 {
        let (status, _) = pool.get("/").expect("GET");
        assert_eq!(status, 200);
    }
    assert_eq!(pool.idle_connections(), 0, "max_idle 0 must park nothing");
    assert_eq!(
        accepted.load(Ordering::SeqCst),
        3,
        "with no parking every request connects fresh"
    );
}
