//! End-to-end encodings of the paper's worked examples, exercised
//! through the public API across crates.

use fact_clean::prelude::*;
use fc_claims::query::IndicatorSense;
use fc_claims::{ClaimSet, Direction, ThresholdIndicatorQuery};
use fc_core::algo::{greedy_max_pr_discrete, greedy_min_var_from_scratch};
use fc_core::ev::{ev_exact, ScopedEv};
use fc_core::maxpr::surprise_prob_exact;

/// Example 3: cleaning can *conditionally* increase uncertainty in an
/// indicator query, yet the expected variance always shrinks.
#[test]
fn example3_bernoulli_indicator() {
    let inst = Instance::new(
        vec![
            DiscreteDist::bernoulli(0.5).unwrap(),
            DiscreteDist::bernoulli(1.0 / 3.0).unwrap(),
            DiscreteDist::bernoulli(0.25).unwrap(),
        ],
        vec![0.0; 3],
        vec![1; 3],
    )
    .unwrap();
    let q = ThresholdIndicatorQuery::new(
        LinearClaim::window_sum(0, 3).unwrap(),
        3.0,
        IndicatorSense::Below,
    );
    // Pr[f = 0] = 1/24 without cleaning.
    let ev0 = ev_exact(&inst, &q, &[]);
    assert!((ev0 - (1.0 / 24.0) * (23.0 / 24.0)).abs() < 1e-12);
    // Conditioned on X1 = 1 the indicator is nearer a toss-up (1/12)…
    let var_x1_one = (1.0f64 / 12.0) * (11.0 / 12.0);
    assert!(var_x1_one > ev0);
    // …but in expectation cleaning X1 still helps (Lemma 3.4).
    assert!(ev_exact(&inst, &q, &[0]) < ev0);
}

/// Example 5: the two fact-checking objectives pick *different* objects.
#[test]
fn example5_objectives_disagree() {
    let inst = Instance::new(
        vec![
            DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap(),
            DiscreteDist::uniform_over(&[1.0 / 3.0, 1.0, 5.0 / 3.0]).unwrap(),
        ],
        vec![1.0, 1.0],
        vec![1, 1],
    )
    .unwrap();
    let cs = ClaimSet::new(
        LinearClaim::window_sum(0, 2).unwrap(),
        vec![LinearClaim::window_sum(0, 2).unwrap()],
        vec![1.0],
        Direction::HigherIsStronger,
    )
    .unwrap();
    let q = BiasQuery::new(cs, 2.0);
    let budget = Budget::absolute(1);

    // MinVar (exact knapsack) cleans X1: Var[X1] = 1/2 > 8/27 = Var[X2].
    let minvar = knapsack_optimum_min_var(&inst, &q, budget).unwrap();
    assert_eq!(minvar.objects(), &[0]);

    // MaxPr with τ = 7/12 cleans X2: Pr = 1/3 > 1/5.
    let tau = 7.0 / 12.0;
    let maxpr = greedy_max_pr_discrete(&inst, &q, budget, tau, None).unwrap();
    assert_eq!(maxpr.objects(), &[1]);
    let p1 = surprise_prob_exact(&inst, &q, &[0], tau, None).unwrap();
    let p2 = surprise_prob_exact(&inst, &q, &[1], tau, None).unwrap();
    assert!((p1 - 0.2).abs() < 1e-12);
    assert!((p2 - 1.0 / 3.0).abs() < 1e-12);
}

/// Example 6: GreedyMinVar beats GreedyNaive by optimizing the actual
/// objective — constants verified exactly.
#[test]
fn example6_greedy_min_var_vs_naive() {
    let inst = Instance::new(
        vec![
            DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap(),
            DiscreteDist::uniform_over(&[1.0 / 3.0, 1.0, 5.0 / 3.0]).unwrap(),
        ],
        vec![1.0, 1.0],
        vec![1, 1],
    )
    .unwrap();
    let q = ThresholdIndicatorQuery::new(
        LinearClaim::window_sum(0, 2).unwrap(),
        11.0 / 12.0,
        IndicatorSense::Below,
    );
    let eng = ScopedEv::new(&inst, &q);
    assert!((eng.ev_of(&[]) - 26.0 / 225.0).abs() < 1e-12);
    assert!((eng.ev_of(&[0]) - 4.0 / 45.0).abs() < 1e-12);
    assert!((eng.ev_of(&[1]) - 2.0 / 25.0).abs() < 1e-12);

    // GreedyNaive cleans X1 (higher variance), GreedyMinVar cleans X2.
    let naive = greedy_naive(&inst, &q, Budget::absolute(1));
    assert_eq!(naive.objects(), &[0]);
    let gmv = greedy_min_var(&inst, &q, Budget::absolute(1));
    assert_eq!(gmv.objects(), &[1]);
    // And GreedyMinVar's end state is strictly better.
    assert!(eng.ev_of(gmv.objects()) < eng.ev_of(naive.objects()));
    // From-scratch ablation agrees with the incremental engine.
    let scratch = greedy_min_var_from_scratch(&inst, &q, Budget::absolute(1));
    assert_eq!(scratch, gmv);
}

/// Example 2's session flow: a fact-checker inspects the crime claim,
/// cleans what matters, and surfaces the counterargument.
#[test]
fn example2_session_flow() {
    use fact_clean::planner::{Measure, ObjectiveSpec};
    use fact_clean::CleaningSession;
    let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0];
    let dists: Vec<DiscreteDist> = current
        .iter()
        .map(|&u| DiscreteDist::uniform_over(&[u - 40.0, u, u + 40.0]).unwrap())
        .collect();
    let instance = Instance::new(dists, current, vec![1; 5]).unwrap();
    let claims = ClaimSet::new(
        LinearClaim::window_comparison(3, 4, 1).unwrap(),
        vec![
            LinearClaim::window_comparison(2, 3, 1).unwrap(),
            LinearClaim::window_comparison(1, 2, 1).unwrap(),
            LinearClaim::window_comparison(0, 1, 1).unwrap(),
        ],
        vec![1.0; 3],
        Direction::HigherIsStronger,
    )
    .unwrap();
    let session = CleaningSession::new(instance, claims);
    assert_eq!(session.original_value(), 305.0);

    let rec = session
        .recommend(ObjectiveSpec::ascertain(Measure::Dup), Budget::absolute(2))
        .unwrap();
    assert!(rec.selection.cost() <= 2);
    assert!(rec.after <= rec.before);

    // Reveal upper-support outcomes for the cleaned objects and verify
    // the session updates coherently.
    let revealed: Vec<f64> = rec
        .selection
        .objects()
        .iter()
        .map(|&i| session.instance().dist(i).max_value())
        .collect();
    let after = session.after_cleaning(&rec.selection, &revealed).unwrap();
    for &i in rec.selection.objects() {
        assert!(after.instance().dist(i).is_certain());
    }
}
