//! Cross-engine consistency tests: the different `EV` and surprise
//! probability engines must agree wherever their preconditions overlap,
//! across randomized instances and the real workloads.

use fc_claims::{BiasQuery, DupQuery, FragQuery, QueryFunction};
use fc_core::ev::{ev_modular, ev_monte_carlo, modular_benefits, ScopedEv};
use fc_core::maxpr::{surprise_prob_convolution, surprise_prob_exact, surprise_prob_mc};
use fc_core::Budget;
use fc_datasets::workloads::{
    cdc_firearms_uniqueness, counters_urx, synthetic_robustness, synthetic_uniqueness,
};
use fc_datasets::SyntheticKind;
use fc_uncertain::rng_from_seed;

/// On a real CDC workload the scoped engine's incremental path must walk
/// in lockstep with its stateless path through an entire greedy run.
#[test]
fn incremental_state_consistency_on_cdc() {
    let w = cdc_firearms_uniqueness(42).unwrap();
    let eng = ScopedEv::new(&w.instance, &w.query);
    let mut st = eng.initial_state();
    let mut cleaned: Vec<usize> = Vec::new();
    // Clean objects in a fixed interleaved order, checking after each.
    for i in [16usize, 0, 15, 1, 8, 3, 12] {
        let delta = eng.delta(&st, i);
        let before = st.ev();
        eng.apply(&mut st, i);
        cleaned.push(i);
        let direct = eng.ev_of(&cleaned);
        assert!(
            (st.ev() - direct).abs() < 1e-9,
            "after {cleaned:?}: incremental {} vs direct {direct}",
            st.ev()
        );
        assert!(
            (before - st.ev() - delta).abs() < 1e-9,
            "delta prediction at {i}"
        );
    }
}

/// Removal deltas invert addition deltas.
#[test]
fn removal_delta_inverts_addition() {
    let w = synthetic_uniqueness(SyntheticKind::Smx, 16, 120.0, 3).unwrap();
    let eng = ScopedEv::new(&w.instance, &w.query);
    let cleaned = vec![2usize, 5, 9, 13];
    let st = eng.state_for(&cleaned);
    for &i in &cleaned {
        let removal = eng.removal_delta(&st, i);
        let without: Vec<usize> = cleaned.iter().copied().filter(|&j| j != i).collect();
        let st_without = eng.state_for(&without);
        let addition = eng.delta(&st_without, i);
        assert!(
            (removal - addition).abs() < 1e-9,
            "object {i}: removal {removal} vs addition {addition}"
        );
    }
}

/// Monte Carlo EV estimates agree with the scoped engine on a frag
/// workload within sampling error.
#[test]
fn monte_carlo_agrees_with_scoped_on_frag() {
    let w = synthetic_robustness(SyntheticKind::Urx, 12, 120.0, 5).unwrap();
    let eng = ScopedEv::new(&w.instance, &w.query);
    let mut rng = rng_from_seed(8);
    for cleaned in [vec![], vec![0, 5], vec![1, 2, 3, 4]] {
        let exact = eng.ev_of(&cleaned);
        let mc = ev_monte_carlo(&w.instance, &w.query, &cleaned, 1200, 200, &mut rng);
        // frag is a sum of squared hinges — heavy-tailed, so the MC
        // estimator converges slowly; a generous relative band still
        // catches engine-level disagreement (which would be ×2+).
        let tol = 0.25 * exact.max(1.0);
        assert!(
            (mc - exact).abs() < tol,
            "cleaned {cleaned:?}: mc {mc} vs scoped {exact}"
        );
    }
}

/// All three discrete surprise engines agree on a counters workload.
#[test]
fn surprise_engines_agree() {
    let w = counters_urx(9).unwrap();
    let mut rng = rng_from_seed(4);
    for cleaned_len in [1usize, 3, 6] {
        let cleaned: Vec<usize> = (0..cleaned_len).collect();
        let exact = surprise_prob_exact(&w.instance, &w.query, &cleaned, w.tau, None).unwrap();
        let conv = surprise_prob_convolution(&w.instance, &w.query, &cleaned, w.tau, Some(1 << 16))
            .unwrap();
        assert!(
            (exact - conv).abs() < 5e-3,
            "|T|={cleaned_len}: exact {exact} vs conv {conv}"
        );
        let mc = surprise_prob_mc(&w.instance, &w.query, &cleaned, w.tau, 60_000, &mut rng);
        assert!(
            (exact - mc).abs() < 0.01,
            "|T|={cleaned_len}: exact {exact} vs mc {mc}"
        );
    }
}

/// The modular fast path agrees with exact enumeration on every quality
/// measure that is affine — and refuses the ones that are not.
#[test]
fn modular_path_vs_exact_on_real_claims() {
    let w = cdc_firearms_uniqueness(7).unwrap();
    let claims = w.query.claims().clone();
    let theta = claims.original_value(w.instance.current());
    let bias = BiasQuery::new(claims.clone(), theta);
    let benefits = modular_benefits(&w.instance, &bias).unwrap();
    // Exact enumeration over the bias query's full scope is feasible for
    // a couple of cleaned sets (scope ≤ 16 objects at V = 6 is too big,
    // so compare through the scoped engine instead, which the theorem
    // tests already tie to ev_exact).
    let eng = ScopedEv::new(&w.instance, &bias);
    for cleaned in [vec![], vec![0, 1], vec![4, 5, 10]] {
        let a = ev_modular(&benefits, &cleaned);
        let b = eng.ev_of(&cleaned);
        assert!((a - b).abs() < 1e-6, "cleaned {cleaned:?}: {a} vs {b}");
    }
    assert!(modular_benefits(&w.instance, &w.query).is_err());
    let frag = FragQuery::new(claims, theta);
    assert!(modular_benefits(&w.instance, &frag).is_err());
}

/// Zero and full budgets behave at the boundary for every algorithm.
#[test]
fn budget_boundaries() {
    let w = synthetic_uniqueness(SyntheticKind::Urx, 16, 150.0, 11).unwrap();
    let eng = ScopedEv::new(&w.instance, &w.query);
    let zero = Budget::absolute(0);
    let full = Budget::absolute(w.instance.total_cost());
    let g0 = fc_core::algo::greedy_min_var(&w.instance, &w.query, zero);
    assert!(g0.is_empty());
    let gf = fc_core::algo::greedy_min_var(&w.instance, &w.query, full);
    assert!(eng.ev_of(gf.objects()) < 1e-9, "full budget zeroes EV");
    let b0 = fc_core::algo::best_min_var(
        &w.instance,
        &w.query,
        zero,
        fc_core::algo::BestConfig::default(),
    );
    assert!(b0.is_empty() || eng.ev_of(b0.objects()) <= eng.ev_of(&[]));
    assert_eq!(b0.cost(), 0);
}

/// Dup/frag evaluations through the query trait match the claim-set
/// convenience methods on concrete data.
#[test]
fn query_trait_matches_claimset_methods() {
    let w = cdc_firearms_uniqueness(13).unwrap();
    let claims = w.query.claims();
    let theta = claims.original_value(w.instance.current());
    let x: Vec<f64> = w
        .instance
        .joint()
        .dists()
        .iter()
        .map(|d| d.max_value())
        .collect();
    assert_eq!(w.query.eval(&x), claims.dup(&x, theta));
    let frag = FragQuery::new(claims.clone(), theta);
    assert!((frag.eval(&x) - claims.frag(&x, theta)).abs() < 1e-9);
    let dup2 = DupQuery::new(claims.clone(), theta);
    assert_eq!(dup2.eval(&x), claims.dup(&x, theta));
}
