//! Integration tests for the HTTP/1.1 network front: byte-identity
//! with in-process plans, the full malformed-input matrix (each bad
//! request yields a typed 4xx — or a cancelled request — without
//! tearing down the listener or leaking quota), disconnect-driven
//! cancellation, keep-alive, and graceful-shutdown drain.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fact_clean::net::api::{
    plan_identity_json, plan_json, BudgetSpec, CreateStreamRequest, SweepRequest,
};
use fact_clean::net::client::{self, ApiClient, ClientError};
use fact_clean::net::json::Json;
use fact_clean::net::{PlannerServer, ServerConfig, ServerHandle};
use fact_clean::prelude::*;
use fc_core::{EngineCache, Result as CoreResult, SolverRegistry, WorkerPool};

fn session() -> CleaningSession {
    let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0];
    let dists: Vec<DiscreteDist> = current
        .iter()
        .map(|&u| DiscreteDist::uniform_over(&[u - 40.0, u, u + 40.0]).unwrap())
        .collect();
    let instance = Instance::new(dists, current, vec![1; 5]).unwrap();
    let claims = ClaimSet::new(
        LinearClaim::window_comparison(3, 4, 1).unwrap(),
        vec![
            LinearClaim::window_comparison(2, 3, 1).unwrap(),
            LinearClaim::window_comparison(1, 2, 1).unwrap(),
            LinearClaim::window_comparison(0, 1, 1).unwrap(),
        ],
        vec![1.0; 3],
        Direction::HigherIsStronger,
    )
    .unwrap();
    CleaningSession::new(instance, claims)
}

/// A solver that sleeps before delegating to greedy — long enough for
/// a disconnect probe to land mid-solve.
struct SlowSolver {
    delegate: Arc<dyn Solver>,
    delay: Duration,
}

impl std::fmt::Debug for SlowSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowSolver")
            .field("delay", &self.delay)
            .finish()
    }
}

impl Solver for SlowSolver {
    fn name(&self) -> &'static str {
        "slow"
    }
    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> CoreResult<Plan> {
        std::thread::sleep(self.delay);
        self.delegate.solve_with_cache(problem, budget, cache)
    }
}

fn registry_with_slow(delay: Duration) -> Arc<SolverRegistry> {
    let mut registry = SolverRegistry::with_defaults();
    let delegate = registry.get("greedy").unwrap();
    registry.register_solver(Arc::new(SlowSolver { delegate, delay }));
    Arc::new(registry)
}

fn test_config() -> ServerConfig {
    ServerConfig::new()
        .with_read_timeout(Duration::from_millis(300))
        .with_disconnect_poll(Duration::from_millis(10))
}

/// Boots a server over a fresh session registered as stream `"crime"`.
fn boot() -> (ServerHandle, PlannerService) {
    boot_with(
        registry_with_slow(Duration::from_millis(400)),
        test_config(),
    )
}

fn boot_with(
    registry: Arc<SolverRegistry>,
    config: ServerConfig,
) -> (ServerHandle, PlannerService) {
    let service = PlannerService::new(registry, ServiceOptions::new().with_inline_threshold(0));
    boot_service(service, config)
}

/// Like [`boot`], but the service solves on a single worker, so sweep
/// points complete strictly one after another — the deterministic
/// setup the streaming tests observe mid-sweep.
fn boot_sequential(delay: Duration) -> (ServerHandle, PlannerService) {
    let service = PlannerService::new(
        registry_with_slow(delay),
        ServiceOptions::new()
            .with_inline_threshold(0)
            .with_pool(Arc::new(WorkerPool::new(1))),
    );
    boot_service(service, test_config())
}

fn boot_service(service: PlannerService, config: ServerConfig) -> (ServerHandle, PlannerService) {
    let stream = ClaimStream::open(session(), service.clone());
    let handle = PlannerServer::new(service.clone())
        .with_config(config)
        .with_stream("crime", stream)
        .serve("127.0.0.1:0")
        .expect("bind ephemeral port");
    (handle, service)
}

/// One raw HTTP exchange on a fresh connection; returns (status, body).
/// Raw bytes, not `client::request` — the malformed cases must hit the
/// wire exactly as written.
fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.write_all(raw).expect("send");
    client::read_response(&mut sock).expect("response")
}

fn post(addr: SocketAddr, path: &str, json: &str, tenant: Option<&str>) -> (u16, String) {
    let headers: Vec<(&str, &str)> = tenant.map(|t| ("x-tenant", t)).into_iter().collect();
    client::post(addr, path, json, &headers).expect("response")
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    client::get(addr, path).expect("response")
}

/// The wire-level identity of a plan: its divergence-relevant fields,
/// encoded exactly as the server encodes them.
fn identity(plan: &Plan) -> String {
    plan_identity_json(plan).to_string()
}

/// Strips the observability-only diagnostics from a served plan JSON.
fn served_identity(body: &str) -> String {
    let Json::Obj(fields) = Json::parse(body).expect("plan JSON") else {
        panic!("plan response is not an object: {body}");
    };
    Json::Obj(
        fields
            .into_iter()
            .filter(|(k, _)| k != "diagnostics")
            .collect(),
    )
    .to_string()
}

#[test]
fn recommend_over_http_is_byte_identical_to_in_process() {
    let (server, service) = boot();
    let addr = server.addr();
    for (measure, name) in [
        (Measure::Bias, "bias"),
        (Measure::Dup, "dup"),
        (Measure::Frag, "frag"),
    ] {
        let expected = session()
            .recommend(ObjectiveSpec::ascertain(measure), Budget::absolute(2))
            .unwrap();
        let (status, body) = post(
            addr,
            "/v1/recommend",
            &format!(r#"{{"stream":"crime","measure":"{name}","budget":2}}"#),
            None,
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(served_identity(&body), identity(&expected), "{name}");
    }
    // MaxPr with a strategy override rides the same path.
    let expected = session()
        .recommend(ObjectiveSpec::find_counter(5.0), Budget::absolute(2))
        .unwrap();
    let (status, body) = post(
        addr,
        "/v1/recommend",
        r#"{"stream":"crime","measure":"bias","goal":{"maxpr":5},"budget":2}"#,
        None,
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(served_identity(&body), identity(&expected));
    assert!(service.stats().submitted >= 4);
}

#[test]
fn sweep_over_http_matches_in_process() {
    let (server, _service) = boot();
    let budgets: Vec<Budget> = (1..=4).map(Budget::absolute).collect();
    let expected = session()
        .recommend_sweep(&ObjectiveSpec::ascertain(Measure::Dup), &budgets)
        .unwrap();
    let (status, body) = post(
        server.addr(),
        "/v1/sweep",
        r#"{"stream":"crime","measure":"dup","budgets":[1,2,3,4]}"#,
        None,
    );
    assert_eq!(status, 200, "{body}");
    let parsed = Json::parse(&body).unwrap();
    let plans = parsed.get("plans").and_then(Json::as_array).expect("plans");
    assert_eq!(plans.len(), expected.len());
    for (served, exp) in plans.iter().zip(&expected) {
        assert_eq!(served_identity(&served.to_string()), identity(exp));
    }
}

#[test]
fn clean_endpoint_invalidates_and_post_clean_plans_are_fresh() {
    let (server, _service) = boot();
    let addr = server.addr();
    let (_, body) = post(
        addr,
        "/v1/recommend",
        r#"{"stream":"crime","measure":"dup","budget":2}"#,
        None,
    );
    let objects: Vec<usize> = Json::parse(&body)
        .unwrap()
        .get("objects")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|v| v.as_usize().unwrap())
        .collect();
    let revealed: Vec<f64> = objects
        .iter()
        .map(|&i| session().instance().dist(i).max_value())
        .collect();
    let clean_body = format!(
        r#"{{"objects":{},"revealed":{}}}"#,
        Json::Arr(objects.iter().map(|&o| Json::Num(o as f64)).collect()),
        Json::Arr(revealed.iter().map(|&v| Json::Num(v)).collect()),
    );
    let (status, body) = post(addr, "/v1/streams/crime/clean", &clean_body, None);
    assert_eq!(status, 200, "{body}");
    let invalidated = Json::parse(&body)
        .unwrap()
        .get("invalidated")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(invalidated > 0, "the stale fingerprint's entries dropped");

    // Post-clean serve matches a fresh session over the cleaned data.
    let expected = session()
        .after_cleaning(
            &Selection::from_objects(objects, session().data().costs()),
            &revealed,
        )
        .unwrap()
        .recommend(ObjectiveSpec::ascertain(Measure::Dup), Budget::absolute(2))
        .unwrap();
    let (status, body) = post(
        addr,
        "/v1/recommend",
        r#"{"stream":"crime","measure":"dup","budget":2}"#,
        None,
    );
    assert_eq!(status, 200);
    assert_eq!(served_identity(&body), identity(&expected));
}

#[test]
fn malformed_inputs_yield_typed_4xx_and_the_listener_survives() {
    let (server, service) = boot();
    let addr = server.addr();
    let cases: &[(&[u8], u16, &str)] = &[
        (
            b"FLY /v1/recommend HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}",
            405,
            "unknown method on a known path",
        ),
        (b"GET /v1/nope HTTP/1.1\r\n\r\n", 404, "unknown path"),
        (b"GET /v1/recommend HTTP/1.1\r\n\r\n", 405, "wrong verb"),
        (b"total garbage\r\n\r\n", 400, "malformed request line"),
        (
            b"POST /v1/recommend HTTP/1.1\r\n\r\n",
            411,
            "missing content-length",
        ),
        (
            b"POST /v1/recommend HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n",
            413,
            "oversized declared body",
        ),
    ];
    for &(raw, want, what) in cases {
        let (status, body) = exchange(addr, raw);
        assert_eq!(status, want, "{what}: {body}");
        assert!(
            Json::parse(&body).unwrap().get("error").is_some(),
            "{what}: error body is typed JSON: {body}"
        );
    }
    let json_cases = [
        ("/v1/recommend", "notjson", 400, "unparseable JSON"),
        ("/v1/recommend", "{}", 400, "missing fields"),
        (
            "/v1/recommend",
            r#"{"stream":"nope","measure":"dup","budget":2}"#,
            404,
            "unknown stream",
        ),
        (
            "/v1/recommend",
            r#"{"stream":"crime","measure":"dup","strategy":"nope",1:2}"#,
            400,
            "bad JSON key",
        ),
        (
            "/v1/streams/crime/clean",
            r#"{"objects":[99],"revealed":[1.0]}"#,
            400,
            "out-of-range object",
        ),
        (
            "/v1/streams/crime/clean",
            r#"{"objects":[0,1],"revealed":[1.0]}"#,
            400,
            "objects/revealed length mismatch",
        ),
        (
            "/v1/sweep",
            r#"{"stream":"crime","measure":"dup","budgets":[]}"#,
            400,
            "empty budget grid",
        ),
    ];
    for (path, json, want, what) in json_cases {
        let (status, body) = post(addr, path, json, None);
        assert_eq!(status, want, "{what}: {body}");
        assert!(
            Json::parse(&body).unwrap().get("error").is_some(),
            "{what}: error body is typed JSON: {body}"
        );
    }

    // Truncated headers: the client hangs up mid-request-line.
    {
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(b"POST /v1/reco").unwrap();
        drop(sock); // half-finished request, connection gone
    }
    // Mid-body disconnect: declared 40 bytes, sent 10, then gone.
    {
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(b"POST /v1/recommend HTTP/1.1\r\ncontent-length: 40\r\n\r\n{\"stream\":")
            .unwrap();
        drop(sock);
    }
    // Over-declared body, connection kept open: the server times the
    // stalled body read out as a typed 408.
    {
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(b"POST /v1/recommend HTTP/1.1\r\ncontent-length: 40\r\n\r\n{\"stream\":")
            .unwrap();
        let (status, _) = client::read_response(&mut sock).expect("response");
        assert_eq!(status, 408, "stalled body read");
    }

    // Through all of that: nothing was submitted, nothing leaked, and
    // the listener still serves.
    assert_eq!(service.stats().submitted, 0);
    assert_eq!(
        service.quota_usage(&TenantId::default()),
        QuotaUsage::default()
    );
    let (status, _) = get(addr, "/v1/stats");
    assert_eq!(status, 200, "the listener survived the malformed barrage");
}

#[test]
fn quota_exhaustion_is_429_with_nothing_queued() {
    let (server, service) = boot();
    service.set_quota("capped", QuotaPolicy::default().with_max_in_flight(0));
    let (status, body) = post(
        server.addr(),
        "/v1/recommend",
        r#"{"stream":"crime","measure":"dup","budget":2}"#,
        Some("capped"),
    );
    assert_eq!(status, 429, "{body}");
    let stats = service.stats();
    assert_eq!(stats.quota_rejected, 1);
    assert_eq!(stats.submitted, 0, "rejected at the door, never queued");
}

#[test]
fn client_disconnect_cancels_the_in_flight_request() {
    let (server, service) = boot();
    // Submit a deliberately slow solve, then hang up mid-solve.
    let body = r#"{"stream":"crime","measure":"dup","strategy":"slow","budget":2}"#;
    let raw = format!(
        "POST /v1/recommend HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    sock.write_all(raw.as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // request is mid-solve
    drop(sock); // the checker walked away

    let deadline = Instant::now() + Duration::from_secs(10);
    while service.stats().cancelled == 0 {
        assert!(
            Instant::now() < deadline,
            "disconnect did not cancel the request: {:?}",
            service.stats()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        service.quota_usage(&TenantId::default()),
        QuotaUsage::default(),
        "the cancelled request released its quota"
    );
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let (server, _service) = boot();
    let body = r#"{"stream":"crime","measure":"dup","budget":2}"#;
    let raw = format!(
        "POST /v1/recommend HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    sock.write_all(raw.as_bytes()).unwrap();
    let (status, first) = client::read_response(&mut sock).expect("response");
    assert_eq!(status, 200);
    sock.write_all(raw.as_bytes()).unwrap();
    let (status, second) = client::read_response(&mut sock).expect("response");
    assert_eq!(status, 200);
    assert_eq!(served_identity(&first), served_identity(&second));
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let (server, service) = boot();
    let addr = server.addr();
    let expected = session()
        .recommend(ObjectiveSpec::ascertain(Measure::Dup), Budget::absolute(2))
        .unwrap();
    // A slow request in flight when shutdown lands must still complete
    // and deliver its plan.
    let client = std::thread::spawn(move || {
        post(
            addr,
            "/v1/recommend",
            r#"{"stream":"crime","measure":"dup","strategy":"slow","budget":2}"#,
            None,
        )
    });
    std::thread::sleep(Duration::from_millis(100)); // the request is in flight
    server.shutdown(); // blocks until drained
    let (status, body) = client.join().expect("client thread");
    assert_eq!(status, 200, "shutdown drained, not dropped: {body}");
    // The slow solver delegates to greedy; identity matches the
    // in-process greedy plan for the same spec, so no plan was lost.
    let expected_slow = {
        let got = Json::parse(&body).unwrap();
        let objects: Vec<usize> = got
            .get("objects")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|v| v.as_usize().unwrap())
            .collect();
        objects
    };
    assert!(!expected_slow.is_empty() || expected.selection.objects().is_empty());
    assert_eq!(service.stats().completed, service.stats().submitted);
    // The listener is gone: new connections are refused or reset.
    assert!(
        TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.write_all(b"GET /v1/stats HTTP/1.1\r\n\r\n");
                let mut buf = [0u8; 1];
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            })
            .unwrap_or(true),
        "no new requests after shutdown"
    );
}

#[test]
fn stats_and_stream_listing_round_trip() {
    let (server, _service) = boot();
    let (status, body) = get(server.addr(), "/v1/streams");
    assert_eq!(status, 200);
    let streams = Json::parse(&body).unwrap();
    assert_eq!(
        streams.get("streams").and_then(Json::as_array),
        Some(&[Json::Str("crime".to_string())][..])
    );
    let (status, body) = get(server.addr(), "/v1/stats");
    assert_eq!(status, 200);
    let stats = Json::parse(&body).unwrap();
    assert!(stats.get("service").is_some() && stats.get("store").is_some());
    let service_obj = stats.get("service").unwrap();
    for gauge in [
        "queued_interactive",
        "queued_bulk",
        "in_flight",
        "running_interactive",
        "running_bulk",
    ] {
        assert!(
            service_obj.get(gauge).and_then(Json::as_u64).is_some(),
            "stats missing saturation gauge {gauge:?}: {body}"
        );
    }
    assert!(
        stats.get("tenants").is_some(),
        "stats missing tenants: {body}"
    );
    // plan_json is identity + diagnostics (compile-time sanity that the
    // public wire helpers agree).
    let plan = session()
        .recommend(ObjectiveSpec::ascertain(Measure::Dup), Budget::absolute(1))
        .unwrap();
    let full = plan_json(&plan).to_string();
    assert!(full.contains("\"diagnostics\""));
    assert!(full.starts_with(&identity(&plan)[..identity(&plan).len() - 1]));
}

#[test]
fn explicit_quota_tenants_appear_in_wire_stats() {
    let (server, service) = boot();
    service.set_quota(
        TenantId::new("alice"),
        QuotaPolicy::default().with_max_in_flight(3),
    );
    let (status, body) = get(server.addr(), "/v1/stats");
    assert_eq!(status, 200);
    let stats = Json::parse(&body).unwrap();
    let alice = stats
        .get("tenants")
        .and_then(|t| t.get("alice"))
        .unwrap_or_else(|| panic!("tenant alice missing from stats: {body}"));
    assert_eq!(alice.get("in_flight").and_then(Json::as_u64), Some(0));
    assert_eq!(
        alice.get("outstanding_evals").and_then(Json::as_u64),
        Some(0)
    );
}

#[test]
fn streamed_sweep_chunks_concatenate_to_the_buffered_body() {
    for body in [
        r#"{"stream":"crime","measure":"dup","budgets":[1,2,3,4]}"#,
        r#"{"stream":"crime","measure":"bias","goal":{"maxpr":5},"budgets":[1,3]}"#,
    ] {
        // Two fresh servers so both runs see a cold cache — the gate is
        // exact byte equality, diagnostics (store hits) included.
        let (buffered_server, _s1) = boot();
        let (streamed_server, _s2) = boot();
        let (status, buffered) = post(buffered_server.addr(), "/v1/sweep", body, None);
        assert_eq!(status, 200, "{buffered}");
        // `client::post` decodes the chunked response by concatenating
        // every chunk.
        let (status, streamed) = post(streamed_server.addr(), "/v1/sweep?stream=1", body, None);
        assert_eq!(status, 200, "{streamed}");
        assert_eq!(
            streamed, buffered,
            "concatenated chunks must reproduce the buffered response"
        );
    }
    // Refusals on the streamed path stay ordinary buffered typed 4xx.
    let (server, _service) = boot();
    let (status, body) = post(
        server.addr(),
        "/v1/sweep?stream=1",
        r#"{"stream":"nope","measure":"dup","budgets":[1]}"#,
        None,
    );
    assert_eq!(status, 404, "{body}");
    assert!(Json::parse(&body).unwrap().get("error").is_some());
}

#[test]
fn streamed_sweep_delivers_the_first_point_while_later_points_solve() {
    let (server, service) = boot_sequential(Duration::from_millis(300));
    let api = ApiClient::connect(server.addr()).expect("connect");
    let request = SweepRequest {
        stream: "crime".into(),
        spec: ObjectiveSpec::ascertain(Measure::Dup).with_strategy("slow"),
        budgets: (1..=3).map(BudgetSpec::Absolute).collect(),
    };
    let mut stream = api.sweep_streaming(&request, None).expect("open stream");
    let first = stream
        .next()
        .expect("a first point")
        .expect("first point decodes");
    // One worker, 300ms per point: when the first plan is in hand the
    // sweep has not folded — its later points are still solving.
    assert_eq!(
        service.stats().completed,
        0,
        "first point arrived before the sweep resolved"
    );
    let rest: Vec<_> = stream.map(|p| p.expect("streamed point")).collect();
    assert_eq!(rest.len(), 2, "remaining budget points all arrive");
    // Budgets ascend; spent cost is monotone across the grid.
    let mut costs = vec![first.cost];
    costs.extend(rest.iter().map(|p| p.cost));
    assert!(costs.windows(2).all(|w| w[0] <= w[1]), "{costs:?}");
}

#[test]
fn mid_stream_disconnect_cancels_the_remaining_points() {
    let (server, service) = boot_sequential(Duration::from_millis(300));
    let body = r#"{"stream":"crime","measure":"dup","strategy":"slow","budgets":[1,2,3,4]}"#;
    let raw = format!(
        "POST /v1/sweep?stream=1 HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    sock.write_all(raw.as_bytes()).unwrap();
    // Read the response head (proof the stream started), then walk away
    // mid-stream.
    let mut buf = [0u8; 32];
    let n = sock.read(&mut buf).unwrap();
    assert!(n > 0, "stream head arrived");
    drop(sock);
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.stats().cancelled == 0 {
        assert!(
            Instant::now() < deadline,
            "mid-stream disconnect did not cancel the sweep: {:?}",
            service.stats()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn wire_created_streams_solve_describe_and_delete() {
    let (server, _service) = boot();
    let addr = server.addr();
    let api = ApiClient::connect(addr).expect("connect");
    let base = session();
    let request = CreateStreamRequest {
        id: "wire".into(),
        tenant: Some("newsroom".into()),
        theta: None,
        discretize_support: None,
        data: base.data().clone(),
        claims: base.claims().clone(),
    };
    let info = api.create_stream(&request).expect("create stream");
    assert_eq!(
        (info.id.as_str(), info.model.as_str(), info.objects),
        ("wire", "discrete", 5)
    );
    assert_eq!(info.tenant, "newsroom");

    // Duplicate ids conflict instead of silently replacing state.
    match api.create_stream(&request) {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 409, "{}", e.message),
        other => panic!("duplicate create must 409, got {other:?}"),
    }

    // The created stream serves plans byte-identical to the boot-time
    // stream over the same dataset.
    let (status, on_crime) = post(
        addr,
        "/v1/recommend",
        r#"{"stream":"crime","measure":"dup","budget":2}"#,
        None,
    );
    assert_eq!(status, 200, "{on_crime}");
    let (status, on_wire) = post(
        addr,
        "/v1/recommend",
        r#"{"stream":"wire","measure":"dup","budget":2}"#,
        None,
    );
    assert_eq!(status, 200, "{on_wire}");
    assert_eq!(served_identity(&on_wire), served_identity(&on_crime));

    // Listed, describable, and the description round-trips the 201 body.
    let mut streams = api.streams().expect("list");
    streams.sort();
    assert_eq!(streams, vec!["crime".to_string(), "wire".to_string()]);
    assert_eq!(api.stream_info("wire").expect("describe"), info);

    // Delete: gone for describes and solves alike; a second delete 404s.
    api.delete_stream("wire").expect("delete");
    match api.stream_info("wire") {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 404),
        other => panic!("deleted stream must 404, got {other:?}"),
    }
    let (status, body) = post(
        addr,
        "/v1/recommend",
        r#"{"stream":"wire","measure":"dup","budget":2}"#,
        None,
    );
    assert_eq!(status, 404, "{body}");
    match api.delete_stream("wire") {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 404),
        other => panic!("double delete must 404, got {other:?}"),
    }

    // Re-creating after delete works (the id is free again).
    api.create_stream(&request).expect("recreate after delete");
}

/// A peer server with an empty stream registry — the adoption target
/// in the replication tests.
fn boot_empty() -> (ServerHandle, PlannerService) {
    let service = PlannerService::new(
        registry_with_slow(Duration::from_millis(400)),
        ServiceOptions::new().with_inline_threshold(0),
    );
    let handle = PlannerServer::new(service.clone())
        .with_config(test_config())
        .serve("127.0.0.1:0")
        .expect("bind ephemeral port");
    (handle, service)
}

/// The `store_misses` diagnostic of a served plan body.
fn served_store_misses(body: &str) -> u64 {
    Json::parse(body)
        .expect("plan JSON")
        .get("diagnostics")
        .and_then(|d| d.get("store_misses"))
        .and_then(Json::as_u64)
        .expect("plan diagnostics carry store_misses")
}

/// The `warm_entries` residency reported for `id` in a health body.
fn health_warm_entries(body: &str, id: &str) -> Option<u64> {
    Json::parse(body)
        .expect("health JSON")
        .get("streams")
        .and_then(Json::as_array)
        .expect("health reports per-stream residency")
        .iter()
        .find(|s| s.get("id").and_then(Json::as_str) == Some(id))
        .map(|s| {
            s.get("warm_entries")
                .and_then(Json::as_u64)
                .expect("residency carries warm_entries")
        })
}

/// The tentpole lifecycle: snapshot a warm stream off one host, adopt
/// it on a peer that never saw the dataset, and have the peer serve
/// byte-identical plans fully warm (`store_misses == 0`) — the no
/// recreate-round-trip path a replica failover takes.
#[test]
fn stream_snapshot_adopts_onto_a_peer_and_serves_warm() {
    let (host_a, _service_a) = boot();
    let (host_b, _service_b) = boot_empty();
    let api_a = ApiClient::connect(host_a.addr()).expect("connect a");
    let api_b = ApiClient::connect(host_b.addr()).expect("connect b");

    // Warm the donor, then check its residency shows up in health.
    let recommend = r#"{"stream":"crime","measure":"dup","budget":2}"#;
    let (status, on_a) = post(host_a.addr(), "/v1/recommend", recommend, None);
    assert_eq!(status, 200, "{on_a}");
    let (status, health_a) = get(host_a.addr(), "/v1/health");
    assert_eq!(status, 200, "{health_a}");
    let warm_a = health_warm_entries(&health_a, "crime").expect("donor hosts crime");
    assert!(warm_a >= 1, "solved stream must report warm entries");

    // Snapshot: definition plus the stream's warm slice, one body.
    let transfer = api_a.snapshot("crime").expect("snapshot");
    assert_eq!(transfer.definition.id, "crime");
    assert!(
        transfer.warm_entries >= 1 && !transfer.cache_slice.is_empty(),
        "snapshot of a solved stream must carry warm entries"
    );
    match api_a.snapshot("nope") {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 404),
        other => panic!("unknown stream snapshot must 404, got {other:?}"),
    }

    // Adopt on the peer: no dataset upload, stream installed + warm.
    let restored = api_b.adopt("crime", &transfer).expect("adopt");
    assert_eq!(restored, transfer.warm_entries, "whole slice restores");
    assert_eq!(api_b.streams().expect("list"), vec!["crime".to_string()]);
    let (status, health_b) = get(host_b.addr(), "/v1/health");
    assert_eq!(status, 200, "{health_b}");
    assert_eq!(
        health_warm_entries(&health_b, "crime"),
        Some(restored as u64),
        "adopted residency must be visible before any solve"
    );

    // The peer serves the same plan bytes without a single store miss.
    let (status, on_b) = post(host_b.addr(), "/v1/recommend", recommend, None);
    assert_eq!(status, 200, "{on_b}");
    assert_eq!(served_identity(&on_b), served_identity(&on_a));
    assert_eq!(
        served_store_misses(&on_b),
        0,
        "adopted replica must serve fully warm: {on_b}"
    );

    // Re-adopting the same definition is an idempotent merge (200),
    // not a conflict — the repair pass leans on this to re-warm. Every
    // entry is already resident, so nothing fresh installs.
    let merged = api_b.adopt("crime", &transfer).expect("idempotent adopt");
    assert_eq!(merged, 0, "merge onto a warm replica installs nothing new");

    // Occupied id + different definition: refused with 409, and the
    // resident stream is untouched.
    let mut altered = transfer.clone();
    altered.definition.theta = Some(transfer.definition.theta.unwrap() + 25.0);
    altered.cache_slice.clear();
    altered.warm_entries = 0;
    match api_b.adopt("crime", &altered) {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 409, "{}", e.message),
        other => panic!("conflicting adopt must 409, got {other:?}"),
    }
    assert_eq!(
        api_b.stream_info("crime").expect("still resident").id,
        "crime"
    );

    // Path/definition id mismatch is a 400 before anything installs.
    match api_b.adopt("other", &transfer) {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 400, "{}", e.message),
        other => panic!("id mismatch must 400, got {other:?}"),
    }
    match api_b.stream_info("other") {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 404),
        other => panic!("mismatched adopt must not install, got {other:?}"),
    }
}

/// Regression for the saturation path: at `max_connections`, refused
/// clients get a prompt `503` — written off the accept thread, so a
/// refused client that never reads cannot stall later accepts — and
/// once the in-flight request finishes the slot is free again (no
/// leak: shutdown drains instead of hanging).
#[test]
fn saturated_server_refuses_promptly_and_recovers() {
    let (server, service) = boot_with(
        registry_with_slow(Duration::from_millis(1500)),
        test_config().with_max_connections(1),
    );
    let addr = server.addr();
    // Occupy the single slot with a slow in-flight solve.
    let holder = std::thread::spawn(move || {
        post(
            addr,
            "/v1/recommend",
            r#"{"stream":"crime","measure":"dup","strategy":"slow","budget":2}"#,
            None,
        )
    });
    let deadline = Instant::now() + Duration::from_secs(5);
    while service.stats().submitted == 0 {
        assert!(Instant::now() < deadline, "slow request never arrived");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Refused clients that never read their 503 linger while further
    // refusals happen — the 503 storm case.
    let silent: Vec<TcpStream> = (0..3)
        .filter_map(|_| TcpStream::connect(addr).ok())
        .collect();
    for i in 0..3 {
        let started = Instant::now();
        let mut sock = TcpStream::connect(addr).expect("connect while saturated");
        sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let (status, body) = client::read_response(&mut sock).expect("refusal response");
        assert_eq!(status, 503, "refusal {i}: {body}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "refusal {i} was not prompt: {:?}",
            started.elapsed()
        );
    }
    drop(silent);

    // The in-flight request is unaffected by the storm…
    let (status, body) = holder.join().expect("holder thread");
    assert_eq!(status, 200, "in-flight request failed: {body}");
    // …and its slot is free again for new work. The holder's 200 only
    // proves its response was written; the server frees the slot when
    // it notices the closed connection, so retry through that window
    // (refusals or resets while it closes are expected — a *leaked*
    // slot keeps this failing until the deadline).
    let deadline = Instant::now() + Duration::from_secs(5);
    let (status, body) = loop {
        let attempt = client::post(
            addr,
            "/v1/recommend",
            r#"{"stream":"crime","measure":"dup","budget":2}"#,
            &[],
        );
        match attempt {
            Ok((503, _)) | Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Ok(response) => break response,
            Err(e) => panic!("post-recovery request kept failing: {e}"),
        }
    };
    assert_eq!(status, 200, "post-recovery request failed: {body}");
    // A leaked slot would wedge the drain here.
    server.shutdown();
}
