//! Cross-crate workflow tests: miniature versions of the paper's
//! experiments with shape assertions (who wins, and in the right
//! direction), so regressions in any crate surface here.

use fc_claims::BiasQuery;
use fc_core::algo::{
    best_min_var, greedy_dep, greedy_min_var, greedy_naive, greedy_naive_cost_blind,
    knapsack_optimum_min_var, opt_gaussian, random_select, BestConfig,
};
use fc_core::ev::gaussian::MvnSemantics;
use fc_core::ev::{ev_gaussian_linear, ev_modular, modular_benefits, ScopedEv};
use fc_core::Budget;
use fc_datasets::workloads::{
    cdc_causes_uniqueness, cdc_firearms_robustness, cdc_firearms_uniqueness, counters_synthetic,
    dependency_fairness, giuliani_fairness, synthetic_uniqueness,
};
use fc_datasets::SyntheticKind;
use fc_uncertain::rng_from_seed;

/// Fig. 1 shape: on the Giuliani fairness workload, at moderate budgets
/// Optimum ≤ GreedyMinVar ≤ GreedyNaive (remaining variance), and
/// GreedyMinVar ≈ Optimum.
#[test]
fn fig1_shape_giuliani() {
    let w = giuliani_fairness(11).unwrap();
    let inst = w.instance.discretize(6).unwrap();
    let q = BiasQuery::relative_to_original(w.claims.clone());
    let benefits = modular_benefits(&inst, &q).unwrap();
    let total = inst.total_cost();
    let mut rng = rng_from_seed(5);
    for frac in [0.05, 0.1, 0.2, 0.4] {
        let budget = Budget::fraction(total, frac);
        let gmv = greedy_min_var(&inst, &q, budget);
        let opt = knapsack_optimum_min_var(&inst, &q, budget).unwrap();
        let naive = greedy_naive(&inst, &q, budget);
        let blind = greedy_naive_cost_blind(&inst, &q, budget);
        let ev = |sel: &fc_core::Selection| ev_modular(&benefits, sel.objects());
        assert!(ev(&opt) <= ev(&gmv) + 1e-9, "frac {frac}");
        assert!(ev(&gmv) <= ev(&naive) + 1e-9, "frac {frac}");
        assert!(ev(&gmv) <= ev(&blind) + 1e-9, "frac {frac}");
        // GreedyMinVar within 2x of Optimum's reduction (in practice ≈).
        let red_opt = benefits.iter().sum::<f64>() - ev(&opt);
        let red_gmv = benefits.iter().sum::<f64>() - ev(&gmv);
        assert!(red_gmv >= red_opt / 2.0 - 1e-9, "frac {frac}");
        // Random is (stochastically) worse than GreedyMinVar.
        let rand_ev: f64 = (0..20)
            .map(|_| ev(&random_select(&inst, budget, &mut rng)))
            .sum::<f64>()
            / 20.0;
        assert!(ev(&gmv) <= rand_ev + 1e-9, "frac {frac}");
    }
}

/// Fig. 2 shape: on CDC uniqueness workloads, GreedyMinVar ≤ GreedyNaive
/// in expected variance, and Best is comparable to GreedyMinVar.
#[test]
fn fig2_shape_cdc_uniqueness() {
    for (name, w) in [
        ("firearms", cdc_firearms_uniqueness(3).unwrap()),
        ("causes", cdc_causes_uniqueness(3).unwrap()),
    ] {
        let eng = ScopedEv::new(&w.instance, &w.query);
        let total = w.instance.total_cost();
        for frac in [0.2, 0.4] {
            let budget = Budget::fraction(total, frac);
            let gmv = greedy_min_var(&w.instance, &w.query, budget);
            let naive = greedy_naive(&w.instance, &w.query, budget);
            let best = best_min_var(&w.instance, &w.query, budget, BestConfig::default());
            let e_gmv = eng.ev_of(gmv.objects());
            let e_naive = eng.ev_of(naive.objects());
            let e_best = eng.ev_of(best.objects());
            assert!(
                e_gmv <= e_naive + 1e-9,
                "{name} frac {frac}: gmv {e_gmv} vs naive {e_naive}"
            );
            // Best and GreedyMinVar should be in the same ballpark.
            assert!(
                e_best <= 1.5 * e_gmv + 1e-6,
                "{name} frac {frac}: best {e_best} vs gmv {e_gmv}"
            );
        }
    }
}

/// Fig. 3/4/5 shape on a small synthetic: GreedyMinVar dominates
/// GreedyNaive across generators, and EV decreases with budget.
#[test]
fn fig3_shape_synthetic_uniqueness() {
    for kind in [SyntheticKind::Urx, SyntheticKind::Lnx, SyntheticKind::Smx] {
        let gamma = match kind {
            SyntheticKind::Lnx => 4.0,
            _ => 150.0,
        };
        // Seed tuned to the in-tree rand shim's SplitMix64 stream (see
        // crates/compat/README.md): the greedy-dominates-naive shape is
        // workload-dependent, so retune this seed if the RNG backend
        // changes.
        let w = synthetic_uniqueness(kind, 24, gamma, 7).unwrap();
        let eng = ScopedEv::new(&w.instance, &w.query);
        let total = w.instance.total_cost();
        let mut prev = f64::INFINITY;
        for frac in [0.1, 0.3, 0.5, 0.8] {
            let budget = Budget::fraction(total, frac);
            let gmv = greedy_min_var(&w.instance, &w.query, budget);
            let naive = greedy_naive(&w.instance, &w.query, budget);
            let e_gmv = eng.ev_of(gmv.objects());
            let e_naive = eng.ev_of(naive.objects());
            assert!(
                e_gmv <= e_naive + 1e-9,
                "{kind:?} frac {frac}: {e_gmv} vs {e_naive}"
            );
            assert!(e_gmv <= prev + 1e-9, "{kind:?}: EV must shrink with budget");
            prev = e_gmv;
        }
    }
}

/// Fig. 7 shape: robustness (frag) — same dominance.
#[test]
fn fig7_shape_robustness() {
    let w = cdc_firearms_robustness(5).unwrap();
    let eng = ScopedEv::new(&w.instance, &w.query);
    let budget = Budget::fraction(w.instance.total_cost(), 0.3);
    let gmv = greedy_min_var(&w.instance, &w.query, budget);
    let naive = greedy_naive(&w.instance, &w.query, budget);
    assert!(eng.ev_of(gmv.objects()) <= eng.ev_of(naive.objects()) + 1e-9);
}

/// Fig. 11 shape: with full dependency knowledge, OPT ≤ GreedyDep ≤
/// (blind) GreedyMinVar in conditional EV; at γ = 0 all coincide with
/// the modular optimum.
#[test]
fn fig11_shape_dependency() {
    // Use a truncated (12-year) workload so OPT's 2^n stays tiny.
    let w = dependency_fairness(7, 0.7).unwrap();
    let n = 12usize;
    let mvn = fc_uncertain::MultivariateNormal::new(
        w.instance.mvn().mean()[..n].to_vec(),
        w.instance
            .mvn()
            .cov()
            .principal_submatrix(&(0..n).collect::<Vec<_>>()),
    )
    .unwrap();
    let inst = fc_core::GaussianInstance::with_mvn(
        mvn,
        w.instance.current()[..n].to_vec(),
        w.instance.costs()[..n].to_vec(),
    )
    .unwrap();
    let weights = &w.weights[..n];
    let budget = Budget::fraction(inst.total_cost(), 0.3);
    let dep = greedy_dep(&inst, weights, budget);
    let opt = opt_gaussian(&inst, weights, budget).unwrap();
    let blind = fc_core::algo::greedy_min_var_gaussian(&inst, weights, budget);
    let ev = |sel: &fc_core::Selection| {
        ev_gaussian_linear(&inst, weights, sel.objects(), MvnSemantics::Conditional).unwrap()
    };
    assert!(ev(&opt) <= ev(&dep) + 1e-9);
    assert!(ev(&dep) <= ev(&blind) + 1e-6);
}

/// §4.3 shape: on counters workloads where the truth hides a
/// counterargument, the probability-driven cleaning order surfaces it
/// with no more budget, in aggregate, than the variance-driven order.
#[test]
fn counters_maxpr_no_worse_than_naive_in_aggregate() {
    use fc_claims::QueryFunction;
    // Cost of the shortest order-prefix whose revealed truths expose a
    // counterargument (u64::MAX when the full order never does).
    let prefix_cost = |w: &fc_datasets::workloads::CountersWorkload, order: &[usize]| -> u64 {
        let theta = w.claims.original_value(w.instance.current());
        let mut v = w.instance.current().to_vec();
        let mut cost = 0u64;
        for &i in order {
            v[i] = w.truth[i];
            cost += w.instance.cost(i);
            if w.claims.strongest_duplicate(&v, theta).is_some() {
                return cost;
            }
        }
        u64::MAX
    };

    let mut maxpr_total = 0u128;
    let mut naive_total = 0u128;
    let mut scenarios = 0;
    for seed in 0..60u64 {
        if scenarios >= 4 {
            break;
        }
        let w = counters_synthetic(SyntheticKind::Urx, 16, seed).unwrap();
        let theta = w.claims.original_value(w.instance.current());
        // Paper scenario: invisible on current data, present in truth.
        if w.claims
            .strongest_duplicate(w.instance.current(), theta)
            .is_some()
            || w.claims.strongest_duplicate(&w.truth, theta).is_none()
        {
            continue;
        }
        scenarios += 1;
        // GreedyMaxPr order: repeatedly take the candidate with the best
        // probability-delta per cost.
        let (weights, _) = w.query.as_affine(w.instance.len()).unwrap();
        let mut order_maxpr: Vec<usize> = Vec::new();
        let mut remaining: Vec<usize> = (0..w.instance.len())
            .filter(|&i| weights[i] != 0.0)
            .collect();
        while !remaining.is_empty() {
            let base = fc_core::maxpr::surprise_prob_convolution(
                &w.instance,
                &w.query,
                &order_maxpr,
                0.0,
                Some(1 << 12),
            )
            .unwrap();
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .map(|(pos, &i)| {
                    let mut with = order_maxpr.clone();
                    with.push(i);
                    let p = fc_core::maxpr::surprise_prob_convolution(
                        &w.instance,
                        &w.query,
                        &with,
                        0.0,
                        Some(1 << 12),
                    )
                    .unwrap();
                    (pos, (p - base) / w.instance.cost(i) as f64)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            order_maxpr.push(remaining.swap_remove(pos));
        }
        // GreedyNaive order: variance per cost, descending.
        let mut order_naive: Vec<usize> = (0..w.instance.len())
            .filter(|&i| weights[i] != 0.0)
            .collect();
        order_naive.sort_by(|&a, &b| {
            let ra = w.instance.variance(a) / w.instance.cost(a) as f64;
            let rb = w.instance.variance(b) / w.instance.cost(b) as f64;
            rb.total_cmp(&ra)
        });
        let mc = prefix_cost(&w, &order_maxpr);
        let nc = prefix_cost(&w, &order_naive);
        assert!(mc < u64::MAX, "seed {seed}: counter must surface");
        maxpr_total += mc as u128;
        naive_total += nc.min(w.instance.total_cost()) as u128;
    }
    assert!(scenarios >= 2, "need enough qualifying scenarios");
    assert!(
        maxpr_total <= naive_total,
        "aggregate budgets: MaxPr {maxpr_total} vs Naive {naive_total}"
    );
}
