//! Integration tests for the unified planner API: the acceptance
//! scenario (one builder-constructed session serving every measure,
//! a counter hunt, and Gaussian objectives through one registry), the
//! Gaussian MinVar/MaxPr paths against their closed-form free
//! functions, and registry resolution for every named strategy.

use std::sync::Arc;

use fact_clean::prelude::*;
use fc_core::algo::{gaussian_ev_conditional, knapsack_optimum_min_var_gaussian};
use fc_core::ev::gaussian::MvnSemantics;
use fc_core::maxpr::surprise_prob_gaussian;
use fc_core::planner::Problem;
use fc_core::CoreError;

fn claims() -> ClaimSet {
    // A yearly-series claim family over 8 objects: the original compares
    // the last two windows; perturbations slide the comparison back.
    ClaimSet::new(
        LinearClaim::window_comparison(6, 7, 1).unwrap(),
        vec![
            LinearClaim::window_comparison(5, 6, 1).unwrap(),
            LinearClaim::window_comparison(4, 5, 1).unwrap(),
            LinearClaim::window_comparison(2, 3, 1).unwrap(),
            LinearClaim::window_comparison(0, 1, 1).unwrap(),
        ],
        vec![1.0; 4],
        Direction::HigherIsStronger,
    )
    .unwrap()
}

fn gaussian_instance() -> GaussianInstance {
    let current: Vec<f64> = (0..8).map(|i| 100.0 + 3.0 * f64::from(i)).collect();
    let sds: Vec<f64> = (0..8).map(|i| 2.0 + 0.5 * f64::from(i)).collect();
    GaussianInstance::centered_independent(current, &sds, vec![1, 1, 2, 1, 2, 1, 1, 2]).unwrap()
}

fn discrete_instance() -> Instance {
    let current: Vec<f64> = (0..8).map(|i| 100.0 + 3.0 * f64::from(i)).collect();
    let dists: Vec<DiscreteDist> = current
        .iter()
        .map(|&u| DiscreteDist::uniform_over(&[u - 5.0, u, u + 5.0]).unwrap())
        .collect();
    Instance::new(dists, current, vec![1, 1, 2, 1, 2, 1, 1, 2]).unwrap()
}

/// Acceptance: one builder-constructed session, one shared registry,
/// recommendations for all three Ascertain measures, a FindCounter
/// objective, and Gaussian-instance objectives — every plan naming its
/// strategy.
#[test]
fn one_session_serves_every_objective_through_one_registry() {
    let registry = Arc::new(SolverRegistry::with_defaults());

    // Discrete session: all three measures + a counter hunt, batched.
    let discrete = SessionBuilder::new()
        .discrete(discrete_instance())
        .claims(claims())
        .registry(Arc::clone(&registry))
        .build()
        .unwrap();
    let specs = [
        ObjectiveSpec::ascertain(Measure::Bias),
        ObjectiveSpec::ascertain(Measure::Dup),
        ObjectiveSpec::ascertain(Measure::Frag),
        ObjectiveSpec::find_counter(2.0),
    ];
    let budget = Budget::absolute(3);
    let plans = discrete.recommend_many(&specs, budget).unwrap();
    assert_eq!(plans.len(), specs.len());
    let strategies: Vec<&str> = plans.iter().map(|p| p.strategy.as_str()).collect();
    assert_eq!(
        strategies,
        vec![
            "auto:optimum-knapsack",    // bias is affine ⇒ exact DP
            "auto:greedy(scoped)",      // dup ⇒ Theorem 3.8 engine
            "auto:greedy(scoped)",      // frag ⇒ Theorem 3.8 engine
            "auto:greedy(convolution)", // counter hunt ⇒ convolution
        ]
    );
    for plan in &plans {
        assert!(plan.selection.cost() <= budget.get());
        assert!(plan.improvement() >= -1e-12);
    }

    // Gaussian session through the *same* registry Arc: bias natively,
    // dup via §4.2 discretization, and a Gaussian counter hunt.
    let gaussian = SessionBuilder::new()
        .gaussian(gaussian_instance())
        .claims(claims())
        .registry(Arc::clone(&registry))
        .build()
        .unwrap();
    let g_plans = gaussian
        .recommend_many(
            &[
                ObjectiveSpec::ascertain(Measure::Bias),
                ObjectiveSpec::ascertain(Measure::Dup),
                ObjectiveSpec::find_counter(1.0),
            ],
            budget,
        )
        .unwrap();
    assert_eq!(g_plans[0].strategy, "auto:optimum-knapsack");
    assert_eq!(g_plans[1].strategy, "auto:greedy(scoped)");
    assert_eq!(
        g_plans[2].strategy, "auto:optimum-knapsack",
        "centered independent Gaussian MaxPr routes to the Lemma 3.3 DP"
    );
    for plan in &g_plans {
        assert!(plan.selection.cost() <= budget.get());
    }
}

/// Gaussian MinVar through the session equals the closed-form free
/// functions: `knapsack_optimum_min_var_gaussian` for the selection and
/// `gaussian_ev_conditional` for the objective values.
#[test]
fn gaussian_min_var_matches_free_functions() {
    let g = gaussian_instance();
    let session = SessionBuilder::new()
        .gaussian(g.clone())
        .claims(claims())
        .build()
        .unwrap();
    let budget = Budget::absolute(4);
    let plan = session
        .recommend(
            ObjectiveSpec::ascertain(Measure::Bias).with_strategy("optimum-knapsack"),
            budget,
        )
        .unwrap();
    assert_eq!(plan.strategy, "optimum-knapsack");

    // The session lowers bias to the affine weights of the claim family.
    let q = BiasQuery::new(claims(), session.original_value());
    use fc_claims::QueryFunction;
    let (weights, _) = q.as_affine(g.len()).unwrap();
    let expected = knapsack_optimum_min_var_gaussian(&g, &weights, budget);
    assert_eq!(plan.selection, expected);

    let before = gaussian_ev_conditional(&g, &weights, &Selection::empty()).unwrap();
    let after = gaussian_ev_conditional(&g, &weights, &expected).unwrap();
    assert!((plan.before - before).abs() < 1e-9);
    assert!((plan.after - after).abs() < 1e-9);
    assert!(plan.after < plan.before);
}

/// Gaussian MaxPr through the session equals the Lemma 3.3 closed form.
#[test]
fn gaussian_max_pr_matches_lemma_3_3_closed_form() {
    let g = gaussian_instance();
    let session = SessionBuilder::new()
        .gaussian(g.clone())
        .claims(claims())
        .build()
        .unwrap();
    let tau = 1.5;
    let budget = Budget::absolute(4);
    let plan = session
        .recommend(ObjectiveSpec::find_counter(tau), budget)
        .unwrap();
    let q = BiasQuery::new(claims(), session.original_value());
    use fc_claims::QueryFunction;
    let (weights, _) = q.as_affine(g.len()).unwrap();
    // Independent instance: conditional and marginal semantics agree,
    // and the closed form scores the plan's own probability.
    for semantics in [MvnSemantics::Conditional, MvnSemantics::Marginal] {
        let p =
            surprise_prob_gaussian(&g, &weights, plan.selection.objects(), tau, semantics).unwrap();
        assert!((plan.after - p).abs() < 1e-9, "{semantics:?}");
    }
    assert!(plan.after > 0.0 && plan.after < 1.0);
    assert!(plan.before.abs() < 1e-12, "empty cleaning cannot surprise");
}

/// Every registry strategy resolves, and every plan it produces
/// respects the budget (bicriteria up to its documented slack).
#[test]
fn registry_strategies_resolve_and_respect_budget() {
    let registry = SolverRegistry::with_defaults();
    let expected = [
        "adaptive",
        "auto",
        "best",
        "bicriteria",
        "brute",
        "fptas",
        "greedy",
        "greedy-dep",
        "greedy-from-scratch",
        "greedy-naive",
        "greedy-naive-cost-blind",
        "optimum-knapsack",
        "partial-greedy",
        "random",
    ];
    assert_eq!(registry.names(), expected);

    let session = SessionBuilder::new()
        .discrete(discrete_instance())
        .claims(claims())
        .build()
        .unwrap();
    let gaussian_session = SessionBuilder::new()
        .gaussian(gaussian_instance())
        .claims(claims())
        .build()
        .unwrap();
    let budget = Budget::absolute(3);
    for name in registry.names() {
        let mut solved = 0;
        for (session, spec) in [
            (
                &session,
                ObjectiveSpec::ascertain(Measure::Bias).with_strategy(name),
            ),
            (
                &session,
                ObjectiveSpec::ascertain(Measure::Dup).with_strategy(name),
            ),
            (
                &session,
                ObjectiveSpec::find_counter(2.0).with_strategy(name),
            ),
            (
                &gaussian_session,
                ObjectiveSpec::ascertain(Measure::Bias).with_strategy(name),
            ),
        ] {
            match session.recommend(spec, budget) {
                Ok(plan) => {
                    solved += 1;
                    let cap = if name == "bicriteria" {
                        budget.get() * 2 // documented slack: C/(1−α), α = ½
                    } else {
                        budget.get()
                    };
                    assert!(plan.selection.cost() <= cap, "{name}");
                    assert!(!plan.strategy.is_empty(), "{name}");
                }
                // A strategy may refuse a shape it does not support —
                // but only with the typed errors.
                Err(CoreError::StrategyUnsupported { .. }) | Err(CoreError::NotAffine) => {}
                Err(e) => panic!("{name}: unexpected error {e}"),
            }
        }
        assert!(solved > 0, "{name} solved none of the spec shapes");
    }
}

/// The planner-level Problem API is directly usable for custom engines:
/// registering a solver under a new name routes through it.
#[test]
fn custom_solver_registration() {
    use fc_core::planner::{EngineCache, Plan};
    use fc_core::{Budget, Solver};

    /// Cleans nothing, always.
    struct NullSolver;
    impl Solver for NullSolver {
        fn name(&self) -> &'static str {
            "null"
        }
        fn solve_with_cache<'p>(
            &self,
            problem: &'p Problem,
            _budget: Budget,
            cache: &EngineCache<'p>,
        ) -> fc_core::Result<Plan> {
            // Delegate the Plan construction to a zero-budget greedy —
            // Plan is #[non_exhaustive], so out-of-crate solvers build
            // plans through existing solvers or registry calls.
            fc_core::planner::GreedySolver.solve_with_cache(problem, Budget::absolute(0), cache)
        }
    }

    let mut registry = SolverRegistry::with_defaults();
    registry.register_solver(Arc::new(NullSolver));
    let session = SessionBuilder::new()
        .discrete(discrete_instance())
        .claims(claims())
        .registry(Arc::new(registry))
        .build()
        .unwrap();
    let plan = session
        .recommend(
            ObjectiveSpec::ascertain(Measure::Dup).with_strategy("null"),
            Budget::absolute(5),
        )
        .unwrap();
    assert!(plan.selection.is_empty());
    assert!((plan.after - plan.before).abs() < 1e-12);
}
