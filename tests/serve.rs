//! Integration tests for the long-lived serving layer:
//! [`PlannerService`] + [`ClaimStream`] at the façade level.
//!
//! The contracts under test:
//!
//! * **Determinism** — plans served asynchronously (from any number of
//!   concurrent submitters) are byte-identical to the synchronous
//!   `recommend_many` path ([`fc_core::Plan::divergence`] is the shared
//!   gate).
//! * **Incremental invalidation** — after `mark_cleaned`, the changed
//!   instance has a new fingerprint (no stale plan can ever be
//!   served), its old store entries are surgically dropped, and
//!   *untouched* instances' tables are never rebuilt: a warm stream
//!   reports zero scoped-EV rebuilds on resubmit after an unrelated
//!   stream is invalidated.

use std::sync::{Arc, Condvar, Mutex};

use fact_clean::prelude::*;
use fc_core::planner::cache::fingerprint_instance;
use fc_core::{EngineCache, Result as CoreResult, SolverRegistry};
use fc_uncertain::rng_from_seed;
use rand::Rng;

/// A randomized discrete workload with a dense overlapping claim
/// family (same shape as `tests/parallel_exec.rs`).
fn workload(n: usize, seed: u64) -> (Instance, ClaimSet) {
    let mut rng = rng_from_seed(seed);
    let dists: Vec<DiscreteDist> = (0..n)
        .map(|_| {
            let k = rng.gen_range(2..=3);
            let vals: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..20.0)).collect();
            DiscreteDist::uniform_over(&vals).unwrap()
        })
        .collect();
    let current: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..20.0)).collect();
    let costs: Vec<u64> = (0..n).map(|_| rng.gen_range(1..6)).collect();
    let instance = Instance::new(dists, current, costs).unwrap();
    let perturbations: Vec<LinearClaim> = (0..n - 1)
        .map(|i| LinearClaim::window_sum(i, 2).unwrap())
        .collect();
    let weights = vec![1.0; perturbations.len()];
    let claims = ClaimSet::new(
        LinearClaim::window_sum(0, 2).unwrap(),
        perturbations,
        weights,
        Direction::HigherIsStronger,
    )
    .unwrap();
    (instance, claims)
}

fn session_of(instance: &Instance, claims: &ClaimSet) -> CleaningSession {
    SessionBuilder::new()
        .discrete(instance.clone())
        .claims(claims.clone())
        .build()
        .unwrap()
}

/// A service that queues everything (inline threshold 0), so even the
/// small test workloads exercise the pool + lane machinery.
fn queued_service() -> PlannerService {
    PlannerService::new(
        Arc::new(SolverRegistry::with_defaults()),
        ServiceOptions::new().with_inline_threshold(0),
    )
}

fn batch_specs() -> Vec<ObjectiveSpec> {
    vec![
        ObjectiveSpec::ascertain(Measure::Bias),
        ObjectiveSpec::ascertain(Measure::Dup),
        ObjectiveSpec::ascertain(Measure::Frag),
        ObjectiveSpec::ascertain(Measure::Dup).with_strategy("greedy"),
        ObjectiveSpec::find_counter(5.0),
    ]
}

/// N concurrent submitters through one shared stream: every plan is
/// byte-identical to the sequential `recommend_many` fold — the
/// acceptance scenario's first half.
#[test]
fn concurrent_submissions_match_sequential_recommend_many() {
    let (instance, claims) = workload(60, 3);
    let session = session_of(&instance, &claims);
    let budget = Budget::absolute(8);
    let specs = batch_specs();
    // Sequential ground truth (no store, no pool).
    let sequential = SessionBuilder::new()
        .discrete(instance.clone())
        .claims(claims.clone())
        .parallelism(Parallelism::Sequential)
        .build()
        .unwrap()
        .recommend_many(&specs, budget)
        .unwrap();

    let stream = Arc::new(ClaimStream::open(session, queued_service()));
    std::thread::scope(|s| {
        for submitter in 0..4 {
            let stream = Arc::clone(&stream);
            let specs = specs.clone();
            let sequential = &sequential;
            s.spawn(move || {
                // Stagger submission order per thread so the queue sees
                // genuinely interleaved requests.
                let offset = submitter % specs.len();
                let handles: Vec<_> = (0..specs.len())
                    .map(|i| {
                        let spec = specs[(i + offset) % specs.len()].clone();
                        stream.submit(spec, budget).unwrap()
                    })
                    .collect();
                for (i, handle) in handles.into_iter().enumerate() {
                    let plan = handle.wait().unwrap();
                    let expected = &sequential[(i + offset) % specs.len()];
                    assert_eq!(
                        plan.divergence(expected),
                        None,
                        "submitter {submitter}, request {i}"
                    );
                }
            });
        }
    });
    let stats = stream.service().stats();
    assert_eq!(stats.submitted, 20);
    assert_eq!(stats.completed, 20);
    assert_eq!(stats.inline, 0, "threshold 0 queues everything");
}

/// Sweeps through the stream equal the synchronous sweep, point for
/// point.
#[test]
fn stream_sweep_matches_synchronous_sweep() {
    let (instance, claims) = workload(40, 5);
    let session = session_of(&instance, &claims);
    let budgets: Vec<Budget> = (0..8).map(|i| Budget::absolute(i * 3)).collect();
    let spec = ObjectiveSpec::ascertain(Measure::Dup);
    let sequential = SessionBuilder::new()
        .discrete(instance.clone())
        .claims(claims.clone())
        .parallelism(Parallelism::Sequential)
        .build()
        .unwrap()
        .recommend_sweep(&spec, &budgets)
        .unwrap();
    let stream = ClaimStream::open(session, queued_service());
    let plans = stream
        .submit_sweep(&spec, &budgets)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(plans.len(), sequential.len());
    for (i, (a, b)) in plans.iter().zip(&sequential).enumerate() {
        assert_eq!(a.divergence(b), None, "budget point {i}");
    }
    // The serving plans carry warm/cold provenance: the first pass over
    // a cold store must have recorded at least one store miss somewhere.
    assert!(
        plans
            .iter()
            .any(|p| p.diagnostics.store_misses > 0 || p.diagnostics.store_hits > 0),
        "store-backed sweeps report store lookups in diagnostics"
    );
}

/// Cleaning changes the instance fingerprint (the no-stale-plans
/// invariant) and surgically drops exactly the old fingerprint's
/// entries.
#[test]
fn mark_cleaned_changes_fingerprint_and_invalidates() {
    let (instance, claims) = workload(40, 7);
    let fp_before = fingerprint_instance(&instance);
    let mut stream = ClaimStream::open(session_of(&instance, &claims), queued_service());
    let spec = ObjectiveSpec::ascertain(Measure::Dup);
    let budget = Budget::absolute(6);

    let cold = stream.submit(spec.clone(), budget).unwrap().wait().unwrap();
    let store = Arc::clone(stream.service().store());
    assert_eq!(store.stats().entries, 1);

    let objects = cold.selection.objects().to_vec();
    assert!(!objects.is_empty());
    let revealed: Vec<f64> = objects
        .iter()
        .map(|&i| stream.session().instance().dist(i).max_value())
        .collect();
    let invalidated = stream.mark_cleaned(&objects, &revealed).unwrap();
    assert_eq!(invalidated, 1, "exactly the stale entry is dropped");
    assert_eq!(store.stats().entries, 0);
    assert_eq!(store.stats().invalidations, 1);

    let fp_after = fingerprint_instance(stream.session().instance());
    assert_ne!(fp_before, fp_after, "changed rows change the fingerprint");

    // The post-cleaning answer matches a from-scratch session over the
    // cleaned data — served warm or cold, never stale.
    let expected = stream.session().recommend(spec.clone(), budget).unwrap();
    let after = stream.submit(spec, budget).unwrap().wait().unwrap();
    assert_eq!(after.divergence(&expected), None);
}

/// The acceptance scenario's second half: a warm `ClaimStream` reports
/// **zero scoped-EV rebuilds** on resubmit after an *unrelated*
/// instance is invalidated — invalidation is surgical, not a flush.
#[test]
fn warm_stream_survives_unrelated_invalidation() {
    let service = queued_service();
    let store = Arc::clone(service.store());
    let (instance_a, claims_a) = workload(40, 11);
    let (instance_b, claims_b) = workload(36, 13);
    let mut stream_a = ClaimStream::open(session_of(&instance_a, &claims_a), service.clone());
    let stream_b = ClaimStream::open(session_of(&instance_b, &claims_b), service.clone());
    let spec = ObjectiveSpec::ascertain(Measure::Dup);
    let budget = Budget::absolute(6);

    // Warm both streams.
    let plan_a = stream_a
        .submit(spec.clone(), budget)
        .unwrap()
        .wait()
        .unwrap();
    let warm_b = stream_b
        .submit(spec.clone(), budget)
        .unwrap()
        .wait()
        .unwrap();
    let builds_warm = store.stats().scoped_builds;
    assert_eq!(builds_warm, 2, "one table build per stream");

    // Clean stream A — stream B's entries must be untouched.
    let objects = plan_a.selection.objects().to_vec();
    let revealed: Vec<f64> = objects
        .iter()
        .map(|&i| stream_a.session().instance().dist(i).mean())
        .collect();
    let invalidated = stream_a.mark_cleaned(&objects, &revealed).unwrap();
    assert_eq!(invalidated, 1);

    // Stream B resubmits: zero rebuilds, answers unchanged, and the
    // plan itself reports the warm serve.
    let again_b = stream_b
        .submit(spec.clone(), budget)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        store.stats().scoped_builds,
        builds_warm,
        "unrelated invalidation must not cold stream B"
    );
    assert_eq!(again_b.divergence(&warm_b), None);
    assert!(
        again_b.diagnostics.store_hits > 0 && again_b.diagnostics.store_misses == 0,
        "warm provenance visible in PlanDiagnostics: {:?}",
        again_b.diagnostics
    );

    // Stream A's next request rebuilds exactly its own tables.
    stream_a.submit(spec, budget).unwrap().wait().unwrap();
    assert_eq!(store.stats().scoped_builds, builds_warm + 1);
}

/// `update_values` (softer evidence than a full cleaning) also
/// re-fingerprints and invalidates.
#[test]
fn update_values_invalidates_like_cleaning() {
    let (instance, claims) = workload(30, 17);
    let mut stream = ClaimStream::open(session_of(&instance, &claims), queued_service());
    let spec = ObjectiveSpec::ascertain(Measure::Frag);
    let budget = Budget::absolute(5);
    stream.submit(spec.clone(), budget).unwrap().wait().unwrap();
    let fp_before = fingerprint_instance(stream.session().instance());

    let narrowed = DiscreteDist::uniform_over(&[4.0, 5.0]).unwrap();
    let invalidated = stream.update_values(&[(2, narrowed, 4.5)]).unwrap();
    assert_eq!(invalidated, 1);
    assert_ne!(fp_before, fingerprint_instance(stream.session().instance()));

    let expected = stream.session().recommend(spec.clone(), budget).unwrap();
    let plan = stream.submit(spec, budget).unwrap().wait().unwrap();
    assert_eq!(plan.divergence(&expected), None);
}

/// Admission control at the façade: a default-threshold service solves
/// tiny claims inline (handle ready at submit), and big sweeps ride the
/// bulk lane.
#[test]
fn lanes_route_by_estimate() {
    let (instance, claims) = workload(24, 19);
    let session = session_of(&instance, &claims);
    // Default thresholds: this small workload sits under the inline bar.
    let inline_stream = ClaimStream::open(
        session.clone(),
        PlannerService::new(
            Arc::new(SolverRegistry::with_defaults()),
            ServiceOptions::new(),
        ),
    );
    let handle = inline_stream
        .submit(ObjectiveSpec::ascertain(Measure::Bias), Budget::absolute(3))
        .unwrap();
    assert_eq!(handle.lane(), Lane::Inline);
    assert!(handle.is_ready());
    handle.wait().unwrap();

    // Interactive threshold 0: everything queued lands on bulk.
    let bulk_stream = ClaimStream::open(
        session,
        PlannerService::new(
            Arc::new(SolverRegistry::with_defaults()),
            ServiceOptions::new()
                .with_inline_threshold(0)
                .with_interactive_threshold(0),
        ),
    );
    let handle = bulk_stream
        .submit(ObjectiveSpec::ascertain(Measure::Dup), Budget::absolute(3))
        .unwrap();
    assert_eq!(handle.lane(), Lane::Bulk);
    handle.wait().unwrap();
}

/// A solver that parks every solve until the shared flag is raised,
/// then delegates to greedy — pins submissions provably in flight so
/// quota assertions are race-free.
struct GateSolver {
    delegate: Arc<dyn Solver>,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl std::fmt::Debug for GateSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GateSolver").finish()
    }
}

impl Solver for GateSolver {
    fn name(&self) -> &'static str {
        "gate"
    }
    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> CoreResult<Plan> {
        let (open, released) = &*self.gate;
        let mut open = open.lock().unwrap();
        while !*open {
            open = released.wait(open).unwrap();
        }
        drop(open);
        self.delegate.solve_with_cache(problem, budget, cache)
    }
}

/// Two tenant streams over one service: tenant A exhausting its quota
/// is rejected at submit (typed), never delaying tenant B's
/// interactive lane; the ledgers return to zero after a mixed
/// complete/cancel workload.
#[test]
fn tenant_streams_are_quota_isolated() {
    let (instance, claims) = workload(40, 7);
    // A's sweeps ride the "gate" strategy, which blocks until released
    // — without it, a fast pool could complete a sweep (freeing its
    // quota slot) before the third submit arrives, and the rejection
    // assertion would race.
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let mut registry = SolverRegistry::with_defaults();
    registry.register_solver(Arc::new(GateSolver {
        delegate: registry.get("greedy").unwrap(),
        gate: Arc::clone(&gate),
    }));
    let service = PlannerService::new(
        Arc::new(registry),
        ServiceOptions::new().with_inline_threshold(0),
    );
    service.set_quota("analyst-a", QuotaPolicy::default().with_max_in_flight(2));
    let stream_a = session_of(&instance, &claims).into_stream_as(service.clone(), "analyst-a");
    let stream_b = session_of(&instance, &claims).into_stream(service.clone());
    assert_eq!(stream_a.tenant().name(), "analyst-a");

    let spec = ObjectiveSpec::ascertain(Measure::Dup);
    let gated_spec = spec.clone().with_strategy("gate");
    let budgets: Vec<Budget> = (1..=4).map(Budget::absolute).collect();
    let expected = stream_b
        .session()
        .recommend(spec.clone(), Budget::absolute(3))
        .unwrap();

    // A fills its two in-flight slots with sweeps held open by the
    // gate...
    let a1 = stream_a.submit_sweep(&gated_spec, &budgets).unwrap();
    let a2 = stream_a.submit_sweep(&gated_spec, &budgets).unwrap();
    // ...and the third submit bounces with a typed error, pre-queue.
    let err = stream_a.submit_sweep(&gated_spec, &budgets).unwrap_err();
    assert!(
        matches!(&err, fc_core::CoreError::QuotaExceeded { tenant, .. } if tenant == "analyst-a"),
        "got {err}"
    );

    // Release the gate so A's sweeps (and everything queued behind
    // them) can proceed.
    {
        let (open, released) = &*gate;
        *open.lock().unwrap() = true;
        released.notify_all();
    }

    // B is a different tenant: never rejected, answers byte-identical.
    let plan_b = stream_b
        .submit(spec.clone(), Budget::absolute(3))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(plan_b.divergence(&expected), None);

    // One sweep completes, one is cancelled (or — if the pool drained
    // it first — completes); either path releases the quota.
    a1.wait().unwrap();
    let _ = a2.cancel();
    drop(a2);
    assert_eq!(
        service.quota_usage(&TenantId::new("analyst-a")),
        QuotaUsage::default()
    );
    // The freed quota admits new submissions immediately.
    stream_a
        .submit(spec, Budget::absolute(3))
        .unwrap()
        .wait()
        .unwrap();
}

/// The interactive-loop shape the cancellation machinery exists for: a
/// sweep superseded by a cleaning step is cancelled, the handle
/// resolves `Cancelled` (never `Ready`), and the post-cleaning
/// submission matches a fresh synchronous session.
#[test]
fn superseded_sweep_cancels_cleanly_across_a_cleaning_step() {
    let (instance, claims) = workload(50, 11);
    let mut stream = session_of(&instance, &claims).into_stream(queued_service());
    let spec = ObjectiveSpec::ascertain(Measure::Dup);
    let budgets: Vec<Budget> = (1..=6).map(Budget::absolute).collect();

    let first = stream
        .submit(spec.clone(), Budget::absolute(2))
        .unwrap()
        .wait()
        .unwrap();
    let stale_sweep = stream.submit_sweep(&spec, &budgets).unwrap();

    // The checker cleans the recommended set: the in-flight sweep is
    // now answering yesterday's question.
    let objects = first.selection.objects().to_vec();
    let revealed: Vec<f64> = objects
        .iter()
        .map(|&i| stream.session().instance().dist(i).mean())
        .collect();
    stream.mark_cleaned(&objects, &revealed).unwrap();
    let landed = stale_sweep.cancel();
    match stale_sweep.try_wait() {
        WaitOutcome::Cancelled => {
            assert!(landed, "a Cancelled outcome implies the cancel landed")
        }
        WaitOutcome::Ready(plans) => {
            // Lost the race: the sweep completed before the cancel —
            // then (and only then) the real result surfaces.
            assert!(!landed, "a cancelled handle must never surface a result");
            plans.unwrap();
        }
        outcome @ (WaitOutcome::TimedOut | WaitOutcome::Taken) => {
            panic!("a resolved handle cannot report {outcome:?}")
        }
    }

    let expected = stream
        .session()
        .recommend(spec.clone(), Budget::absolute(2))
        .unwrap();
    let after = stream
        .submit(spec, Budget::absolute(2))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(after.divergence(&expected), None);
}
