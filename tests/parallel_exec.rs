//! Integration tests for the sharded parallel executor and the
//! fingerprint-keyed engine store, at the façade level: plans must be
//! **byte-identical** across `Parallelism` modes, and a warm
//! `CacheStore` must serve repeat sessions with zero scoped-EV
//! rebuilds.

use std::sync::Arc;

use fact_clean::prelude::*;
use fc_core::CacheStore;
use fc_uncertain::rng_from_seed;
use rand::Rng;

/// A randomized discrete workload with a *dense* overlapping claim
/// family (one width-2 window per start index), so the dup/frag
/// estimate is `~(n−1) · E[|support|²] + n` (supports of 2–3 values ⇒
/// ~6.25 per term) and big `n` pushes past the executor's
/// inline-admission threshold into the worker pool.
fn workload(n: usize, seed: u64) -> (Instance, ClaimSet) {
    let mut rng = rng_from_seed(seed);
    let dists: Vec<DiscreteDist> = (0..n)
        .map(|_| {
            let k = rng.gen_range(2..=3);
            let vals: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..20.0)).collect();
            DiscreteDist::uniform_over(&vals).unwrap()
        })
        .collect();
    let current: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..20.0)).collect();
    let costs: Vec<u64> = (0..n).map(|_| rng.gen_range(1..6)).collect();
    let instance = Instance::new(dists, current, costs).unwrap();
    let perturbations: Vec<LinearClaim> = (0..n - 1)
        .map(|i| LinearClaim::window_sum(i, 2).unwrap())
        .collect();
    let weights = vec![1.0; perturbations.len()];
    let claims = ClaimSet::new(
        LinearClaim::window_sum(0, 2).unwrap(),
        perturbations,
        weights,
        Direction::HigherIsStronger,
    )
    .unwrap();
    (instance, claims)
}

/// Guard against a vacuous parallelism test: the non-affine lowered
/// problems must actually clear the executor's inline threshold, or
/// `Fixed(4)` would silently take the sequential path and the
/// determinism assertions would compare sequential against itself.
fn assert_reaches_worker_pool(instance: &Instance, claims: &ClaimSet) {
    let problem = fc_core::Problem::discrete_min_var(
        instance.clone(),
        Arc::new(fc_claims::DupQuery::new(claims.clone(), 0.0)),
    )
    .unwrap();
    assert!(
        problem.estimated_engine_evals() >= fc_core::ExecOptions::DEFAULT_INLINE_THRESHOLD,
        "workload too small to exercise the pool: estimate {} < threshold {}",
        problem.estimated_engine_evals(),
        fc_core::ExecOptions::DEFAULT_INLINE_THRESHOLD
    );
}

fn session_with(
    instance: &Instance,
    claims: &ClaimSet,
    parallelism: Parallelism,
    store: Option<Arc<CacheStore>>,
) -> CleaningSession {
    let mut b = SessionBuilder::new()
        .discrete(instance.clone())
        .claims(claims.clone())
        .parallelism(parallelism);
    if let Some(store) = store {
        b = b.cache_store(store);
    }
    b.build().unwrap()
}

fn assert_byte_identical(a: &[Plan], b: &[Plan]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.divergence(y), None, "plan {i}");
    }
}

fn batch_specs() -> Vec<ObjectiveSpec> {
    vec![
        ObjectiveSpec::ascertain(Measure::Bias),
        ObjectiveSpec::ascertain(Measure::Dup),
        ObjectiveSpec::ascertain(Measure::Frag),
        ObjectiveSpec::ascertain(Measure::Dup).with_strategy("greedy"),
        ObjectiveSpec::find_counter(5.0),
    ]
}

/// Determinism property: across random workloads, `recommend_many`
/// under `Fixed(4)` is byte-identical to `Sequential`.
#[test]
fn recommend_many_is_deterministic_across_parallelism() {
    for seed in [1u64, 7, 23] {
        let (instance, claims) = workload(800, seed);
        assert_reaches_worker_pool(&instance, &claims);
        let budget = Budget::absolute(instance.total_cost() / 30);
        let seq = session_with(&instance, &claims, Parallelism::Sequential, None)
            .recommend_many(&batch_specs(), budget)
            .unwrap();
        let par = session_with(&instance, &claims, Parallelism::Fixed(4), None)
            .recommend_many(&batch_specs(), budget)
            .unwrap();
        assert_byte_identical(&seq, &par);
    }
}

/// Determinism property: `recommend_sweep` under `Fixed(4)` is
/// byte-identical to `Sequential`, across measures.
#[test]
fn recommend_sweep_is_deterministic_across_parallelism() {
    let (instance, claims) = workload(800, 5);
    assert_reaches_worker_pool(&instance, &claims);
    let total = instance.total_cost();
    let budgets: Vec<Budget> = (0..10).map(|i| Budget::absolute(i * total / 30)).collect();
    for measure in [Measure::Bias, Measure::Dup, Measure::Frag] {
        let spec = ObjectiveSpec::ascertain(measure);
        let seq = session_with(&instance, &claims, Parallelism::Sequential, None)
            .recommend_sweep(&spec, &budgets)
            .unwrap();
        let par = session_with(&instance, &claims, Parallelism::Fixed(4), None)
            .recommend_sweep(&spec, &budgets)
            .unwrap();
        assert_byte_identical(&seq, &par);
        // Sanity: the sweep itself is meaningful (monotone MinVar).
        for w in seq.windows(2) {
            assert!(w[1].after <= w[0].after + 1e-9);
        }
    }
}

/// A second session over the same instance must report **zero**
/// scoped-EV rebuilds: the store serves the tables built by the first.
#[test]
fn warm_cache_store_rebuilds_nothing() {
    let (instance, claims) = workload(40, 11);
    let store = Arc::new(CacheStore::new(32));
    let spec = ObjectiveSpec::ascertain(Measure::Dup);
    let budget = Budget::absolute(6);

    let first = session_with(
        &instance,
        &claims,
        Parallelism::Sequential,
        Some(store.clone()),
    );
    let cold_plan = first.recommend(spec.clone(), budget).unwrap();
    let cold = store.stats();
    assert_eq!(cold.scoped_builds, 1, "first session builds the tables");
    assert!(cold.scoped_build_evals > 0);
    drop(first);

    let second = session_with(
        &instance,
        &claims,
        Parallelism::Sequential,
        Some(store.clone()),
    );
    let warm_plan = second.recommend(spec, budget).unwrap();
    let warm = store.stats();
    assert_eq!(
        warm.scoped_builds, cold.scoped_builds,
        "second session over the same instance rebuilds nothing"
    );
    assert_eq!(
        warm.scoped_build_evals, cold.scoped_build_evals,
        "zero scoped-EV rebuild evals on the warm path"
    );
    assert!(warm.hits > cold.hits, "the warm session hits the store");
    assert_byte_identical(&[cold_plan], &[warm_plan]);
}

/// Different measures, θ, and data must key different entries — and a
/// *changed* instance must never be served stale tables.
#[test]
fn cache_store_distinguishes_measures_and_data() {
    let (instance, claims) = workload(40, 13);
    let store = Arc::new(CacheStore::new(32));
    let budget = Budget::absolute(6);
    let s = session_with(
        &instance,
        &claims,
        Parallelism::Sequential,
        Some(store.clone()),
    );
    s.recommend(ObjectiveSpec::ascertain(Measure::Dup), budget)
        .unwrap();
    s.recommend(ObjectiveSpec::ascertain(Measure::Frag), budget)
        .unwrap();
    assert_eq!(
        store.stats().scoped_builds,
        2,
        "dup and frag have distinct engine tables"
    );

    // Clean one object: the updated instance has a new fingerprint, so
    // the store builds fresh tables instead of serving stale ones.
    let plan = s
        .recommend(ObjectiveSpec::ascertain(Measure::Dup), budget)
        .unwrap();
    let revealed: Vec<f64> = plan
        .selection
        .objects()
        .iter()
        .map(|&i| s.instance().dist(i).mean())
        .collect();
    let cleaned = s.after_cleaning(&plan.selection, &revealed).unwrap();
    cleaned
        .recommend(ObjectiveSpec::ascertain(Measure::Dup), budget)
        .unwrap();
    assert_eq!(
        store.stats().scoped_builds,
        3,
        "cleaned instance gets its own entry"
    );
}

/// The eviction cap bounds resident entries and is visible in stats.
#[test]
fn cache_store_eviction_cap_holds() {
    let store = Arc::new(CacheStore::with_shards(2, 1));
    let budget = Budget::absolute(4);
    for seed in 0..4u64 {
        let (instance, claims) = workload(24, 100 + seed);
        let s = session_with(
            &instance,
            &claims,
            Parallelism::Sequential,
            Some(store.clone()),
        );
        s.recommend(ObjectiveSpec::ascertain(Measure::Dup), budget)
            .unwrap();
    }
    let stats = store.stats();
    assert!(stats.entries <= 2, "cap holds: {} entries", stats.entries);
    assert!(stats.evictions >= 2, "old entries were evicted");
}

/// Parallel + store composes: a sweep on a parallel session sharing a
/// store stays byte-identical and still avoids rebuilds on reuse.
#[test]
fn parallel_sweep_with_store_is_deterministic_and_warm() {
    let (instance, claims) = workload(800, 29);
    assert_reaches_worker_pool(&instance, &claims);
    let total = instance.total_cost();
    let budgets: Vec<Budget> = (1..=8).map(|i| Budget::absolute(i * total / 40)).collect();
    let spec = ObjectiveSpec::ascertain(Measure::Dup);
    let store = Arc::new(CacheStore::new(32));

    let seq = session_with(&instance, &claims, Parallelism::Sequential, None)
        .recommend_sweep(&spec, &budgets)
        .unwrap();
    let par_session = session_with(
        &instance,
        &claims,
        Parallelism::Fixed(4),
        Some(store.clone()),
    );
    let par = par_session.recommend_sweep(&spec, &budgets).unwrap();
    assert_byte_identical(&seq, &par);
    assert_eq!(store.stats().scoped_builds, 1, "workers shared one build");

    let again = par_session.recommend_sweep(&spec, &budgets).unwrap();
    assert_byte_identical(&seq, &again);
    assert_eq!(store.stats().scoped_builds, 1, "second sweep is warm");
}
