//! Property-based verification of the paper's structural results:
//! Lemma 3.1 (modularization), Lemma 3.4 (monotonicity), Lemma 3.5
//! (submodularity), Theorem 3.8 (scoped == exact), and Theorem 3.9
//! (objective alignment for centered multivariate normals).

use fc_claims::{BiasQuery, ClaimSet, Direction, DupQuery, FragQuery, LinearClaim};
use fc_core::algo::brute_force_best;
use fc_core::ev::gaussian::MvnSemantics;
use fc_core::ev::{ev_exact, ev_gaussian_linear, ev_modular, modular_benefits, ScopedEv};
use fc_core::maxpr::surprise_prob_gaussian;
use fc_core::{Budget, GaussianInstance, Instance};
use fc_uncertain::{DiscreteDist, MultivariateNormal};
use proptest::prelude::*;

/// Strategy: a small random discrete instance over `n` objects.
fn arb_instance(n: usize) -> impl Strategy<Value = Instance> {
    let dist = prop::collection::vec((1.0f64..20.0, 0.1f64..1.0), 1..4)
        .prop_map(|pairs| DiscreteDist::from_weights(pairs).expect("positive weights"));
    (
        prop::collection::vec(dist, n),
        prop::collection::vec(1u64..6, n),
    )
        .prop_map(move |(dists, costs)| {
            let current: Vec<f64> = dists.iter().map(|d| d.mean()).collect();
            Instance::new(dists, current, costs).expect("valid instance")
        })
}

/// A fixed overlapping claim family over 5 objects.
fn overlapping_claims() -> ClaimSet {
    ClaimSet::new(
        LinearClaim::window_sum(0, 2).unwrap(),
        vec![
            LinearClaim::window_sum(0, 2).unwrap(),
            LinearClaim::window_sum(1, 2).unwrap(),
            LinearClaim::window_sum(3, 2).unwrap(),
        ],
        vec![1.0, 2.0, 1.0],
        Direction::HigherIsStronger,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 3.4: EV is monotone non-increasing in T — for *any* query.
    #[test]
    fn lemma_3_4_monotonicity(
        inst in arb_instance(5),
        theta in 5.0f64..30.0,
        extra in 0usize..5,
        base in prop::collection::vec(0usize..5, 0..3),
    ) {
        let q = DupQuery::new(overlapping_claims(), theta);
        let eng = ScopedEv::new(&inst, &q);
        let mut t: Vec<usize> = base.clone();
        t.sort_unstable();
        t.dedup();
        let mut t2 = t.clone();
        if !t2.contains(&extra) {
            t2.push(extra);
        }
        prop_assert!(eng.ev_of(&t) >= eng.ev_of(&t2) - 1e-9);
    }

    /// Lemma 3.5: EV is submodular under independence — in the *formal*
    /// sense `EV(T∪{x}) − EV(T) ≥ EV(T'∪{x}) − EV(T')` for `T ⊆ T'`.
    /// Because EV is non-increasing, this means the marginal *reductions*
    /// grow with the cleaned set (the reduction function is
    /// supermodular; the paper highlights this reversal vs. Krause's
    /// variance-reduction setting in §5).
    #[test]
    fn lemma_3_5_submodularity(
        inst in arb_instance(5),
        theta in 5.0f64..30.0,
    ) {
        let q = FragQuery::new(overlapping_claims(), theta);
        let eng = ScopedEv::new(&inst, &q);
        for x in 0..5usize {
            for small_mask in 0u32..(1 << 5) {
                if small_mask >> x & 1 == 1 {
                    continue;
                }
                // Take T' = T ∪ {one more element}.
                for add in 0..5usize {
                    if add == x || small_mask >> add & 1 == 1 {
                        continue;
                    }
                    let t: Vec<usize> =
                        (0..5).filter(|&i| small_mask >> i & 1 == 1).collect();
                    let mut tp = t.clone();
                    tp.push(add);
                    let gain_t = eng.ev_of(&t) - eng.ev_of(&[t.clone(), vec![x]].concat());
                    let gain_tp =
                        eng.ev_of(&tp) - eng.ev_of(&[tp.clone(), vec![x]].concat());
                    // gain = −(EV(T∪x) − EV(T)); Lemma 3.5 ⇒ gains grow.
                    prop_assert!(
                        gain_t <= gain_tp + 1e-9,
                        "x={x} T={t:?} T'={tp:?}: reduction shrank ({gain_t} > {gain_tp})"
                    );
                }
            }
        }
    }

    /// Theorem 3.8's engine equals the exact enumeration for all three
    /// quality measures.
    #[test]
    fn theorem_3_8_scoped_equals_exact(
        inst in arb_instance(5),
        theta in 5.0f64..30.0,
        cleaned in prop::collection::vec(0usize..5, 0..4),
    ) {
        let cs = overlapping_claims();
        let mut t = cleaned.clone();
        t.sort_unstable();
        t.dedup();
        let bias = BiasQuery::new(cs.clone(), theta);
        let dup = DupQuery::new(cs.clone(), theta);
        let frag = FragQuery::new(cs, theta);
        let eb = ScopedEv::new(&inst, &bias);
        prop_assert!((eb.ev_of(&t) - ev_exact(&inst, &bias, &t)).abs() < 1e-8);
        let ed = ScopedEv::new(&inst, &dup);
        prop_assert!((ed.ev_of(&t) - ev_exact(&inst, &dup, &t)).abs() < 1e-8);
        let ef = ScopedEv::new(&inst, &frag);
        prop_assert!((ef.ev_of(&t) - ev_exact(&inst, &frag, &t)).abs() < 1e-8);
    }

    /// Lemma 3.1: the modular form equals the exact EV for affine
    /// queries with independent components.
    #[test]
    fn lemma_3_1_modular_equals_exact(
        inst in arb_instance(5),
        theta in 5.0f64..30.0,
        cleaned in prop::collection::vec(0usize..5, 0..4),
    ) {
        let q = BiasQuery::new(overlapping_claims(), theta);
        let w = modular_benefits(&inst, &q).unwrap();
        let mut t = cleaned.clone();
        t.sort_unstable();
        t.dedup();
        prop_assert!(
            (ev_modular(&w, &t) - ev_exact(&inst, &q, &t)).abs() < 1e-8
        );
    }
}

/// Theorem 3.9 (independent case): for `X ~ N(u, diag(σ²))` with linear
/// claims, the optimal MinVar and MaxPr solutions coincide.
///
/// Reproduction note: the paper extends this to arbitrary covariance,
/// but that step of the appendix proof equates
/// `min Σ_{i,j∉T} Cov` with `max Σ_{i,j∈T} Cov`, which drops the
/// `T`-dependent cross-covariance term `2·Σ_{i∈T, j∉T} Cov`. With
/// correlated errors and mixed-sign weights the two argopts can differ —
/// see [`theorem_3_9_correlated_counterexample`]. For diagonal Σ the
/// cross term is zero and the theorem holds exactly, which we verify
/// here by brute force.
#[test]
fn theorem_3_9_alignment() {
    for (seed, gamma) in [(1u64, 0.0), (2, 0.0), (3, 0.0)] {
        let n = 6;
        let mut rng = fc_uncertain::rng_from_seed(seed);
        use rand::Rng;
        let u: Vec<f64> = (0..n).map(|_| rng.gen_range(50.0..150.0)).collect();
        let sds: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
        let costs: Vec<u64> = (0..n).map(|_| rng.gen_range(1..5)).collect();
        let mvn = MultivariateNormal::with_geometric_dependency(u.clone(), &sds, gamma).unwrap();
        let inst = GaussianInstance::with_mvn(mvn, u, costs).unwrap();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let tau = 1.0;
        for budget_frac in [0.3, 0.6] {
            let budget = Budget::fraction(inst.total_cost(), budget_frac);
            let minvar = brute_force_best(
                inst.costs(),
                budget,
                |sel| {
                    ev_gaussian_linear(&inst, &weights, sel.objects(), MvnSemantics::Marginal)
                        .unwrap()
                },
                true,
                20,
            )
            .unwrap();
            let maxpr = brute_force_best(
                inst.costs(),
                budget,
                |sel| {
                    surprise_prob_gaussian(
                        &inst,
                        &weights,
                        sel.objects(),
                        tau,
                        MvnSemantics::Marginal,
                    )
                    .unwrap()
                },
                false,
                20,
            )
            .unwrap();
            // The argmax/argmin coincide: both maximize w_T Σ_TT w_T.
            let v_min =
                ev_gaussian_linear(&inst, &weights, minvar.objects(), MvnSemantics::Marginal)
                    .unwrap();
            let v_max =
                ev_gaussian_linear(&inst, &weights, maxpr.objects(), MvnSemantics::Marginal)
                    .unwrap();
            assert!(
                (v_min - v_max).abs() < 1e-9,
                "seed {seed} γ={gamma} b={budget_frac}: EV of MinVar set {v_min} ≠ EV of MaxPr set {v_max}"
            );
        }
    }
}

/// Reproduction finding: with *correlated* errors and mixed-sign weights
/// the MinVar and MaxPr optima can differ even when centered at `u`,
/// because the cross-covariance between the cleaned and uncleaned parts
/// depends on `T` (the quantity the paper's appendix argument drops).
/// A counterexample must surface within a small window of random
/// instances (searching a seed window instead of pinning one seed keeps
/// the test independent of the RNG backend's exact stream).
#[test]
fn theorem_3_9_correlated_counterexample() {
    use rand::Rng;
    let n = 6;
    let mut max_gap = 0.0f64;
    for seed in 0..24u64 {
        let mut rng = fc_uncertain::rng_from_seed(seed);
        let u: Vec<f64> = (0..n).map(|_| rng.gen_range(50.0..150.0)).collect();
        let sds: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
        let costs: Vec<u64> = (0..n).map(|_| rng.gen_range(1..5)).collect();
        let mvn = MultivariateNormal::with_geometric_dependency(u.clone(), &sds, 0.4).unwrap();
        let inst = GaussianInstance::with_mvn(mvn, u, costs).unwrap();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let budget = Budget::fraction(inst.total_cost(), 0.3);
        let minvar = brute_force_best(
            inst.costs(),
            budget,
            |sel| {
                ev_gaussian_linear(&inst, &weights, sel.objects(), MvnSemantics::Marginal).unwrap()
            },
            true,
            20,
        )
        .unwrap();
        let maxpr = brute_force_best(
            inst.costs(),
            budget,
            |sel| {
                surprise_prob_gaussian(&inst, &weights, sel.objects(), 1.0, MvnSemantics::Marginal)
                    .unwrap()
            },
            false,
            20,
        )
        .unwrap();
        let ev_of = |sel: &fc_core::Selection| {
            ev_gaussian_linear(&inst, &weights, sel.objects(), MvnSemantics::Marginal).unwrap()
        };
        max_gap = max_gap.max((ev_of(&minvar) - ev_of(&maxpr)).abs());
        if max_gap > 1e-6 {
            return;
        }
    }
    panic!("no correlated counterexample in the seed window (max gap {max_gap})");
}

/// The alignment breaks when the distribution is *not* centered at the
/// current values (Example 5 / Fig. 12): exhibit a concrete Gaussian
/// instance where the optima differ.
#[test]
fn theorem_3_9_needs_centering() {
    // Object 0: high variance but mean far above current (cleaning it
    // likely pushes the query up). Object 1: modest variance, centered.
    let inst =
        GaussianInstance::independent(vec![30.0, 0.0], &[5.0, 3.0], vec![0.0, 0.0], vec![1, 1])
            .unwrap();
    let weights = [1.0, 1.0];
    let tau = 1.0;
    let budget = Budget::absolute(1);
    let minvar = brute_force_best(
        inst.costs(),
        budget,
        |sel| ev_gaussian_linear(&inst, &weights, sel.objects(), MvnSemantics::Marginal).unwrap(),
        true,
        20,
    )
    .unwrap();
    let maxpr = brute_force_best(
        inst.costs(),
        budget,
        |sel| {
            surprise_prob_gaussian(&inst, &weights, sel.objects(), tau, MvnSemantics::Marginal)
                .unwrap()
        },
        false,
        20,
    )
    .unwrap();
    assert_eq!(minvar.objects(), &[0], "MinVar wants the high variance");
    assert_eq!(
        maxpr.objects(),
        &[1],
        "MaxPr avoids the upward-shifted mean"
    );
}
