//! Integration tests for the consistent-hash routing front: topology
//! and health reporting, canonical error relay (the router never
//! rewrites a backend's 4xx bytes), operator and backend-advertised
//! drain, failover to the surviving replica, fleet-wide 503 when no
//! backend is reachable, clean broadcast (unanimous and divergent),
//! aggregated stats, streamed-sweep passthrough (chunk relay is
//! byte-preserving and client hangup cancels upstream), and the
//! wire-native stream lifecycle (create routes onto the ring, deletes
//! broadcast, and a dead host's streams recreate on the next replica),
//! and the replication edge cases: deletes reach straggler copies,
//! tombstones keep deleted streams deleted across repair passes,
//! divergent creates reconcile on identical leftover copies, and a
//! capacity-bound re-warm backs off instead of looping.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fact_clean::net::api::{BudgetSpec, CleanRequest, CreateStreamRequest, RecommendRequest};
use fact_clean::net::client::{self, ApiClient, ClientError};
use fact_clean::net::json::Json;
use fact_clean::net::router::VNODES;
use fact_clean::net::{PlannerServer, RouterConfig, RouterHandle, RouterServer, ServerHandle};
use fact_clean::prelude::*;
use fc_core::planner::Fnv1a;
use fc_core::{EngineCache, Result as CoreResult, SolverRegistry, WorkerPool};

fn session() -> CleaningSession {
    let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0];
    let dists: Vec<DiscreteDist> = current
        .iter()
        .map(|&u| DiscreteDist::uniform_over(&[u - 40.0, u, u + 40.0]).unwrap())
        .collect();
    let instance = Instance::new(dists, current, vec![1; 5]).unwrap();
    let claims = ClaimSet::new(
        LinearClaim::window_comparison(3, 4, 1).unwrap(),
        vec![
            LinearClaim::window_comparison(2, 3, 1).unwrap(),
            LinearClaim::window_comparison(1, 2, 1).unwrap(),
            LinearClaim::window_comparison(0, 1, 1).unwrap(),
        ],
        vec![1.0; 3],
        Direction::HigherIsStronger,
    )
    .unwrap();
    CleaningSession::new(instance, claims)
}

/// Boots one backend registering `session()` under each given stream
/// id; the short read timeout keeps drains (and the test suite) fast.
fn boot_backend(streams: &[&str]) -> (PlannerService, ServerHandle) {
    boot_backend_with(streams, ServiceOptions::new())
}

/// [`boot_backend`] with explicit service options (e.g. a starved
/// store capacity for the repair-backoff test).
fn boot_backend_with(streams: &[&str], options: ServiceOptions) -> (PlannerService, ServerHandle) {
    let service = PlannerService::new(Arc::new(SolverRegistry::with_defaults()), options);
    let mut server = PlannerServer::new(service.clone()).with_config(
        fact_clean::net::ServerConfig::new().with_read_timeout(Duration::from_millis(200)),
    );
    for id in streams {
        server = server.with_stream(*id, ClaimStream::open(session(), service.clone()));
    }
    let handle = server.serve("127.0.0.1:0").expect("bind backend");
    (service, handle)
}

/// A solver that sleeps before delegating to greedy — long enough for
/// the router's disconnect probe to land between budget points.
struct SlowSolver {
    delegate: Arc<dyn Solver>,
    delay: Duration,
}

impl std::fmt::Debug for SlowSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowSolver")
            .field("delay", &self.delay)
            .finish()
    }
}

impl Solver for SlowSolver {
    fn name(&self) -> &'static str {
        "slow"
    }
    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> CoreResult<Plan> {
        std::thread::sleep(self.delay);
        self.delegate.solve_with_cache(problem, budget, cache)
    }
}

/// Boots a backend whose `"slow"` strategy sleeps per point on a
/// single worker, so a relayed sweep is provably mid-flight when the
/// client walks away.
fn boot_slow_backend(delay: Duration) -> (PlannerService, ServerHandle) {
    let mut registry = SolverRegistry::with_defaults();
    let delegate = registry.get("greedy").unwrap();
    registry.register_solver(Arc::new(SlowSolver { delegate, delay }));
    let service = PlannerService::new(
        Arc::new(registry),
        ServiceOptions::new()
            .with_inline_threshold(0)
            .with_pool(Arc::new(WorkerPool::new(1))),
    );
    let server = PlannerServer::new(service.clone())
        .with_config(
            fact_clean::net::ServerConfig::new()
                .with_read_timeout(Duration::from_millis(200))
                .with_disconnect_poll(Duration::from_millis(10)),
        )
        .with_stream("crime", ClaimStream::open(session(), service.clone()));
    let handle = server.serve("127.0.0.1:0").expect("bind backend");
    (service, handle)
}

fn boot_router(backends: &[(&str, SocketAddr)]) -> RouterHandle {
    let mut router = RouterServer::new().with_config(
        RouterConfig::new()
            .with_probe_interval(Duration::from_millis(25))
            .with_read_timeout(Duration::from_millis(500)),
    );
    for (name, addr) in backends {
        router = router.with_backend(*name, addr.to_string());
    }
    router.serve("127.0.0.1:0").expect("bind router")
}

/// An address that was live long enough to resolve but refuses
/// connections now — a crashed backend as the router sees it.
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.local_addr().expect("addr")
}

fn crime_request() -> RecommendRequest {
    RecommendRequest {
        stream: "crime".to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup),
        budget: BudgetSpec::Absolute(2),
    }
}

/// Polls `/v1/topology` until `predicate` holds for the named backend.
fn wait_for_backend(router: &RouterHandle, name: &str, predicate: impl Fn(&Json) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = client::get(router.addr(), "/v1/topology").expect("topology");
        assert_eq!(status, 200, "topology errored: {body}");
        let json = Json::parse(&body).expect("topology JSON");
        let found = json
            .get("backends")
            .and_then(Json::as_array)
            .and_then(|backends| {
                backends
                    .iter()
                    .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
            })
            .is_some_and(&predicate);
        if found {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "backend {name} never reached the expected state"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn topology_and_health_report_the_fleet() {
    let (_service_a, backend_a) = boot_backend(&["crime"]);
    let (_service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    let (status, body) = client::get(router.addr(), "/v1/topology").expect("topology");
    assert_eq!(status, 200);
    let json = Json::parse(&body).expect("topology JSON");
    assert!(
        json.get("vnodes_per_backend")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    let backends = json.get("backends").and_then(Json::as_array).expect("list");
    assert_eq!(backends.len(), 2);
    for backend in backends {
        assert_eq!(backend.get("healthy").and_then(Json::as_bool), Some(true));
        assert_eq!(backend.get("draining").and_then(Json::as_bool), Some(false));
    }

    let (status, body) = client::get(router.addr(), "/v1/health").expect("health");
    assert_eq!(status, 200);
    let json = Json::parse(&body).expect("health JSON");
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(json.get("backends").and_then(Json::as_u64), Some(2));
    assert_eq!(json.get("backends_live").and_then(Json::as_u64), Some(2));

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn relays_canonical_errors_and_identical_plans() {
    let (_service_a, backend_a) = boot_backend(&["crime"]);
    let (_service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    // The canonical 404 and 400 come from the backend, byte-for-byte.
    let unknown = r#"{"stream":"nope","measure":"dup","budget":2}"#;
    let (via_router, body_router) =
        client::post(router.addr(), "/v1/recommend", unknown, &[]).expect("post");
    let (direct, body_direct) =
        client::post(backend_a.addr(), "/v1/recommend", unknown, &[]).expect("post");
    assert_eq!((via_router, &body_router), (direct, &body_direct));
    assert_eq!(via_router, 404);

    let malformed = r#"{"stream":"crime","measure":"dup"}"#;
    let (via_router, body_router) =
        client::post(router.addr(), "/v1/recommend", malformed, &[]).expect("post");
    let (direct, body_direct) =
        client::post(backend_a.addr(), "/v1/recommend", malformed, &[]).expect("post");
    assert_eq!((via_router, &body_router), (direct, &body_direct));
    assert_eq!(via_router, 400);

    // A well-formed request through the router matches a cold solve on
    // a backend the router did not pick (identical sessions).
    let routed = ApiClient::connect(router.addr())
        .expect("connect router")
        .recommend(&crime_request(), None)
        .expect("routed plan");
    let direct = ApiClient::connect(backend_b.addr())
        .expect("connect backend")
        .recommend(&crime_request(), None)
        .expect("direct plan");
    assert_eq!(
        routed.identity_json().to_string(),
        direct.identity_json().to_string()
    );

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn operator_drain_is_immediate_and_unknown_backend_is_404() {
    let (_service_a, backend_a) = boot_backend(&["crime"]);
    let (_service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    let (status, _) =
        client::post(router.addr(), "/v1/admin/backends/zz/drain", "", &[]).expect("post");
    assert_eq!(status, 404);

    let (status, body) =
        client::post(router.addr(), "/v1/admin/backends/a/drain", "", &[]).expect("post");
    assert_eq!(status, 200, "drain failed: {body}");
    wait_for_backend(&router, "a", |b| {
        b.get("draining").and_then(Json::as_bool) == Some(true)
            && b.get("drained_by_operator").and_then(Json::as_bool) == Some(true)
    });

    // Draining is a preference, not a partition: with b also present
    // the request lands on b, but a lone draining backend still serves.
    let api = ApiClient::connect(router.addr()).expect("connect");
    api.recommend(&crime_request(), None).expect("routed plan");

    let (status, _) =
        client::post(router.addr(), "/v1/admin/backends/a/undrain", "", &[]).expect("post");
    assert_eq!(status, 200);
    wait_for_backend(&router, "a", |b| {
        b.get("draining").and_then(Json::as_bool) == Some(false)
    });

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn backend_advertised_drain_reaches_the_ring() {
    let (_service_a, backend_a) = boot_backend(&["crime"]);
    let (_service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    // Drain a on the backend itself; the router's prober picks the
    // advertised flag up without any operator action on the router.
    let (status, _) = client::post(backend_a.addr(), "/v1/admin/drain", "", &[]).expect("post");
    assert_eq!(status, 200);
    wait_for_backend(&router, "a", |b| {
        b.get("draining").and_then(Json::as_bool) == Some(true)
            && b.get("drained_by_operator").and_then(Json::as_bool) == Some(false)
    });

    let (status, _) = client::post(backend_a.addr(), "/v1/admin/undrain", "", &[]).expect("post");
    assert_eq!(status, 200);
    wait_for_backend(&router, "a", |b| {
        b.get("draining").and_then(Json::as_bool) == Some(false)
    });

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn fails_over_to_the_surviving_replica() {
    let (_service, backend) = boot_backend(&["crime"]);
    let router = boot_router(&[("live", backend.addr()), ("dead", dead_addr())]);

    // Every stream id must succeed — including ones whose ring walk
    // starts at the dead replica.
    let api = ApiClient::connect(router.addr()).expect("connect");
    for i in 0..8u64 {
        let request = RecommendRequest {
            stream: "crime".to_string(),
            spec: ObjectiveSpec::ascertain(Measure::Dup),
            budget: BudgetSpec::Absolute(1 + i % 3),
        };
        api.recommend(&request, None)
            .unwrap_or_else(|e| panic!("request {i} failed over a dead replica: {e}"));
    }
    wait_for_backend(&router, "dead", |b| {
        b.get("healthy").and_then(Json::as_bool) == Some(false)
    });

    router.shutdown();
    backend.shutdown();
}

#[test]
fn no_reachable_backend_is_503() {
    let router = boot_router(&[("dead", dead_addr())]);
    let (status, body) =
        client::post(router.addr(), "/v1/recommend", r#"{"stream":"crime"}"#, &[]).expect("post");
    assert_eq!(status, 503, "expected fleet-wide 503, got {status} {body}");
    assert!(body.contains("no live backend"), "unexpected body: {body}");
    router.shutdown();
}

#[test]
fn clean_broadcast_requires_unanimity() {
    let (service_a, backend_a) = boot_backend(&["crime"]);
    let (service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);
    let api = ApiClient::connect(router.addr()).expect("connect");

    // Warm both replicas so the clean has cached plans to invalidate.
    for backend in [backend_a.addr(), backend_b.addr()] {
        ApiClient::connect(backend)
            .expect("connect backend")
            .recommend(&crime_request(), None)
            .expect("warm plan");
    }

    let clean = CleanRequest {
        objects: vec![0],
        revealed: vec![9_050.0],
    };
    let applied = api.clean("crime", &clean, None).expect("broadcast clean");
    assert_eq!(applied.objects, 1);
    // Both replicas saw the clean, not just the routed one: each had a
    // cached plan for the stream and each dropped it.
    assert!(service_a.store().stats().invalidations >= 1);
    assert!(service_b.store().stats().invalidations >= 1);

    // A clean the replicas answer differently (one lacks the stream)
    // is a divergence, surfaced as 502 rather than half-applied.
    let (_service_c, backend_c) = boot_backend(&["crime"]);
    let (_service_d, backend_d) = boot_backend(&["other"]);
    let skewed = boot_router(&[("c", backend_c.addr()), ("d", backend_d.addr())]);
    let err = ApiClient::connect(skewed.addr())
        .expect("connect")
        .clean("crime", &clean, None)
        .expect_err("divergent clean must not claim success");
    match err {
        ClientError::Api(e) => assert_eq!(e.status, 502, "expected divergence: {}", e.message),
        other => panic!("expected an API error, got {other}"),
    }

    skewed.shutdown();
    backend_c.shutdown();
    backend_d.shutdown();
    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn stats_aggregate_sums_the_fleet() {
    let (service_a, backend_a) = boot_backend(&["crime"]);
    let (service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    // Load both replicas directly so the aggregate provably spans more
    // than whichever one the ring favours.
    for backend in [backend_a.addr(), backend_b.addr()] {
        ApiClient::connect(backend)
            .expect("connect backend")
            .recommend(&crime_request(), None)
            .expect("plan");
    }

    let stats = ApiClient::connect(router.addr())
        .expect("connect router")
        .stats()
        .expect("aggregated stats");
    let submitted = service_a.stats().submitted + service_b.stats().submitted;
    let completed = service_a.stats().completed + service_b.stats().completed;
    assert_eq!(stats.service.submitted, submitted);
    assert_eq!(stats.service.completed, completed);
    assert_eq!(submitted, 2);

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn streamed_sweeps_relay_through_the_router_unchanged() {
    for body in [
        r#"{"stream":"crime","measure":"dup","budgets":[1,2,3]}"#,
        r#"{"stream":"crime","measure":"bias","goal":{"maxpr":5},"budgets":[1,3]}"#,
    ] {
        // Fresh backends per body: cold caches on both sides, so the
        // diagnostics (and therefore every byte) must line up.
        let (_service, backend) = boot_backend(&["crime"]);
        let (_reference_service, reference) = boot_backend(&["crime"]);
        let router = boot_router(&[("a", backend.addr())]);

        let (status, buffered) =
            client::post(reference.addr(), "/v1/sweep", body, &[]).expect("buffered sweep");
        assert_eq!(status, 200, "{buffered}");
        let (status, streamed) =
            client::post(router.addr(), "/v1/sweep?stream=1", body, &[]).expect("streamed sweep");
        assert_eq!(status, 200, "{streamed}");
        assert_eq!(
            streamed, buffered,
            "chunks relayed through the router concatenate to the buffered body"
        );

        router.shutdown();
        backend.shutdown();
        reference.shutdown();
    }

    // A refusal never starts a chunked stream: the backend's buffered
    // 404 passes through the streamed relay byte-for-byte.
    let (_service, backend) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend.addr())]);
    let unknown = r#"{"stream":"nope","measure":"dup","budgets":[1]}"#;
    let (via_router, body_router) =
        client::post(router.addr(), "/v1/sweep?stream=1", unknown, &[]).expect("post");
    let (direct, body_direct) =
        client::post(backend.addr(), "/v1/sweep?stream=1", unknown, &[]).expect("post");
    assert_eq!((via_router, &body_router), (direct, &body_direct));
    assert_eq!(via_router, 404);
    router.shutdown();
    backend.shutdown();
}

#[test]
fn client_hangup_mid_stream_cancels_upstream_points() {
    let (service, backend) = boot_slow_backend(Duration::from_millis(300));
    let router = boot_router(&[("a", backend.addr())]);

    let body = r#"{"stream":"crime","measure":"dup","strategy":"slow","budgets":[1,2,3,4]}"#;
    let raw = format!(
        "POST /v1/sweep?stream=1 HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut sock = TcpStream::connect(router.addr()).unwrap();
    sock.write_all(raw.as_bytes()).unwrap();
    // Read the relayed head (proof the stream reached us through the
    // router), then walk away mid-stream.
    let mut buf = [0u8; 32];
    let n = sock.read(&mut buf).unwrap();
    assert!(n > 0, "stream head arrived through the router");
    drop(sock);

    // The router notices the hangup, drops its upstream connection,
    // and the backend's own disconnect probe cancels the sweep.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if service.stats().cancelled > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backend never cancelled the abandoned sweep: {:?}",
            service.stats()
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    router.shutdown();
    backend.shutdown();
}

#[test]
fn wire_created_streams_fail_over_to_the_next_replica() {
    let (_service_a, backend_a) = boot_backend(&[]);
    let (_service_b, backend_b) = boot_backend(&[]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);
    let api = ApiClient::connect(router.addr()).expect("connect router");

    let base = session();
    let create = CreateStreamRequest {
        id: "wire".to_string(),
        tenant: None,
        theta: None,
        discretize_support: None,
        data: base.data().clone(),
        claims: base.claims().clone(),
    };
    let info = api.create_stream(&create).expect("create via router");
    assert_eq!(info.id, "wire");

    // The create landed on exactly one replica — the same one the ring
    // sends solves to.
    let on_a = {
        let (_, body) = client::get(backend_a.addr(), "/v1/streams").expect("list a");
        body.contains("wire")
    };
    let on_b = {
        let (_, body) = client::get(backend_b.addr(), "/v1/streams").expect("list b");
        body.contains("wire")
    };
    assert!(on_a ^ on_b, "stream must live on exactly one replica");
    let request = RecommendRequest {
        stream: "wire".to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup),
        budget: BudgetSpec::Absolute(2),
    };
    let plan = api
        .recommend(&request, None)
        .expect("solve on created stream");

    // Kill the host. Its wire-created stream dies with it; the ring
    // fails solves over to the survivor, which answers the canonical
    // 404 until the stream is recreated there.
    let (host, host_name, survivor) = if on_a {
        (backend_a, "a", backend_b)
    } else {
        (backend_b, "b", backend_a)
    };
    host.shutdown();
    wait_for_backend(&router, host_name, |b| {
        b.get("healthy").and_then(Json::as_bool) == Some(false)
    });
    match api.recommend(&request, None) {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 404, "{}", e.message),
        other => panic!("expected 404 after the host died, got {other:?}"),
    }

    // Recreate over the wire: the ring walk now lands on the survivor.
    let recreated = api.create_stream(&create).expect("recreate after failover");
    assert_eq!(recreated, info);
    let (_, body) = client::get(survivor.addr(), "/v1/streams").expect("list survivor");
    assert!(
        body.contains("wire"),
        "survivor hosts the recreated stream: {body}"
    );
    let again = api.recommend(&request, None).expect("solve after recreate");
    assert_eq!(
        plan.identity_json().to_string(),
        again.identity_json().to_string(),
        "identical session, identical plan either side of the failover"
    );

    // Deletes broadcast; with the host dead only the survivor answers,
    // and the id is free for yet another create afterwards.
    api.delete_stream("wire").expect("delete via router");
    match api.recommend(&request, None) {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 404, "{}", e.message),
        other => panic!("expected 404 after delete, got {other:?}"),
    }
    api.create_stream(&create).expect("recreate after delete");

    router.shutdown();
    survivor.shutdown();
}

/// The tentpole end-to-end: with `replication_factor(2)` a created
/// stream lands on two ring backends, the repair pass warms the
/// secondary via snapshot transfer, and killing the primary mid-run
/// leaves every subsequent read served by the secondary — same plan
/// bytes, `store_misses == 0`, no recreate — while another repair
/// restores two-replica residency on the survivors.
#[test]
fn replicated_streams_survive_primary_loss_with_warm_failover() {
    let names = ["a", "b", "c"];
    let mut fleet: Vec<(PlannerService, Option<ServerHandle>)> = names
        .iter()
        .map(|_| {
            let (service, handle) = boot_backend(&[]);
            (service, Some(handle))
        })
        .collect();
    let mut router = RouterServer::new().with_config(
        RouterConfig::new()
            .with_probe_interval(Duration::from_millis(25))
            .with_read_timeout(Duration::from_millis(500))
            .with_replication_factor(2)
            // Long enough that only the explicit `repair()` calls run
            // passes — the assertions below stay deterministic.
            .with_repair_interval(Duration::from_secs(120)),
    );
    for (name, (_, handle)) in names.iter().zip(&fleet) {
        router = router.with_backend(*name, handle.as_ref().unwrap().addr().to_string());
    }
    let router = router.serve("127.0.0.1:0").expect("bind router");
    let api = ApiClient::connect(router.addr()).expect("connect router");

    let base = session();
    let create = CreateStreamRequest {
        id: "wire".to_string(),
        tenant: None,
        theta: None,
        discretize_support: None,
        data: base.data().clone(),
        claims: base.claims().clone(),
    };
    api.create_stream(&create).expect("replicated create");

    // The create fanned out to exactly R = 2 of the 3 backends.
    let hosts: Vec<usize> = (0..names.len())
        .filter(|&i| {
            let addr = fleet[i].1.as_ref().unwrap().addr();
            let (_, body) = client::get(addr, "/v1/streams").expect("list");
            body.contains("wire")
        })
        .collect();
    assert_eq!(
        hosts.len(),
        2,
        "replica set must host the stream: {hosts:?}"
    );

    let request = RecommendRequest {
        stream: "wire".to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup),
        budget: BudgetSpec::Absolute(2),
    };
    let before = api.recommend(&request, None).expect("solve via router");

    // The solve landed on the primary: the replica-set member that saw
    // traffic. The other host is the (cold) secondary.
    let primary = *hosts
        .iter()
        .find(|&&i| fleet[i].0.stats().submitted > 0)
        .expect("one replica served the solve");

    // Repair re-warms the cold secondary over the wire: snapshot off
    // the warm primary, adopt-merge onto the secondary. A second pass
    // finds nothing left to move — the pass is idempotent.
    let report = router.repair();
    let moved = report
        .get("transfers")
        .and_then(Json::as_array)
        .unwrap()
        .len();
    assert!(moved >= 1, "repair must warm the cold secondary: {report}");
    let report = router.repair();
    assert_eq!(
        report
            .get("transfers")
            .and_then(Json::as_array)
            .unwrap()
            .len(),
        0,
        "a converged fleet repairs nothing: {report}"
    );

    // Kill the primary mid-run.
    fleet[primary].1.take().unwrap().shutdown();
    wait_for_backend(&router, names[primary], |b| {
        b.get("healthy").and_then(Json::as_bool) == Some(false)
    });

    // Every subsequent read is served by the secondary: same plan
    // bytes, fully warm, and no recreate round-trip happened — the
    // stream was simply already there.
    for _ in 0..3 {
        let after = api.recommend(&request, None).expect("failover read");
        assert_eq!(
            before.identity_json().to_string(),
            after.identity_json().to_string(),
            "failover must not change plan bytes"
        );
        assert_eq!(
            after.diagnostics.store_misses, 0,
            "the secondary must serve fully warm"
        );
    }

    // Repair restores two-replica residency on the survivors: the
    // secondary donates onto the next ring successor.
    let report = router.repair();
    let installed = report
        .get("transfers")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .any(|t| t.get("installed").and_then(Json::as_bool) == Some(true));
    assert!(
        installed,
        "repair must re-replicate onto a survivor: {report}"
    );
    let rehosted: Vec<usize> = (0..names.len())
        .filter(|&i| {
            fleet[i].1.as_ref().is_some_and(|handle| {
                let (_, body) = client::get(handle.addr(), "/v1/streams").expect("list");
                body.contains("wire")
            })
        })
        .collect();
    assert_eq!(rehosted.len(), 2, "R=2 residency restored: {rehosted:?}");

    // Deletes scope to the replica set; afterwards the id 404s
    // everywhere (a real 404, not a silent success on retry).
    api.delete_stream("wire").expect("scoped delete");
    match api.delete_stream("wire") {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 404, "{}", e.message),
        other => panic!("all-404 delete must surface 404, got {other:?}"),
    }

    router.shutdown();
    for (_, handle) in fleet {
        if let Some(handle) = handle {
            handle.shutdown();
        }
    }
}

/// Mirrors the router's ring placement (FNV-1a digests spread by a
/// splitmix64-style finalizer over [`VNODES`] virtual points per
/// backend) so tests can know a stream's replica set up front.
fn ring_order(names: &[&str], key: &str) -> Vec<usize> {
    fn mix64(mut x: u64) -> u64 {
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x
    }
    let mut ring = std::collections::BTreeMap::new();
    for (idx, name) in names.iter().enumerate() {
        for v in 0..VNODES as u64 {
            let mut h = Fnv1a::new();
            h.write_str(name);
            h.write_u64(v);
            ring.entry(mix64(h.finish())).or_insert(idx);
        }
    }
    let mut h = Fnv1a::new();
    h.write_str(key);
    let point = mix64(h.finish());
    let mut order = Vec::new();
    for &idx in ring.range(point..).chain(ring.range(..point)).map(|(_, i)| i) {
        if !order.contains(&idx) {
            order.push(idx);
            if order.len() == names.len() {
                break;
            }
        }
    }
    order
}

fn wire_create(id: &str) -> CreateStreamRequest {
    let base = session();
    CreateStreamRequest {
        id: id.to_string(),
        tenant: None,
        theta: None,
        discretize_support: None,
        data: base.data().clone(),
        claims: base.claims().clone(),
    }
}

fn hosts_stream(addr: SocketAddr, id: &str) -> bool {
    let (_, body) = client::get(addr, "/v1/streams").expect("list streams");
    body.contains(id)
}

/// Boots `names.len()` fresh backends behind an R=2 router whose
/// background repair pass is parked (only explicit `repair()` calls
/// run passes, keeping assertions deterministic).
fn boot_replicated_fleet(names: &[&str]) -> (Vec<(PlannerService, ServerHandle)>, RouterHandle) {
    let fleet: Vec<(PlannerService, ServerHandle)> =
        names.iter().map(|_| boot_backend(&[])).collect();
    let mut router = RouterServer::new().with_config(
        RouterConfig::new()
            .with_probe_interval(Duration::from_millis(25))
            .with_read_timeout(Duration::from_millis(500))
            .with_replication_factor(2)
            .with_repair_interval(Duration::from_secs(120)),
    );
    for (name, (_, handle)) in names.iter().zip(&fleet) {
        router = router.with_backend(*name, handle.addr().to_string());
    }
    (fleet, router.serve("127.0.0.1:0").expect("bind router"))
}

/// A straggler copy outside the current replica set — left by ring
/// churn — dies with the replicated delete: the router widens the
/// broadcast to every backend whose probed residency shows the
/// stream, so the repair pass has no donor to resurrect it from.
#[test]
fn replicated_delete_reaches_straggler_copies() {
    let names = ["a", "b", "c"];
    let order = ring_order(&names, "wire");
    let outsider = order[2];
    let (fleet, router) = boot_replicated_fleet(&names);
    let api = ApiClient::connect(router.addr()).expect("connect router");

    let create = wire_create("wire");
    api.create_stream(&create).expect("replicated create");
    assert!(
        !hosts_stream(fleet[outsider].1.addr(), "wire"),
        "the third backend is outside the R=2 set"
    );

    // Strand a copy on the outsider (as a failover-era create would
    // have) and let the prober notice it.
    ApiClient::connect(fleet[outsider].1.addr())
        .expect("connect outsider")
        .create_stream(&create)
        .expect("straggler copy");
    wait_for_backend(&router, names[outsider], |b| {
        b.get("streams").and_then(Json::as_array).is_some_and(|s| {
            s.iter()
                .any(|e| e.get("id").and_then(Json::as_str) == Some("wire"))
        })
    });

    api.delete_stream("wire").expect("replicated delete");
    assert!(
        !hosts_stream(fleet[outsider].1.addr(), "wire"),
        "the delete must reach the straggler copy"
    );

    // Nothing left to resurrect: repair moves no copies, reads 404,
    // and a second delete is the real 404 it should be.
    let report = router.repair();
    assert_eq!(
        report.get("transfers").and_then(Json::as_array).unwrap().len(),
        0,
        "no donor must survive the delete: {report}"
    );
    let request = RecommendRequest {
        stream: "wire".to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup),
        budget: BudgetSpec::Absolute(2),
    };
    match api.recommend(&request, None) {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 404, "{}", e.message),
        other => panic!("expected 404 after delete, got {other:?}"),
    }
    match api.delete_stream("wire") {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 404, "{}", e.message),
        other => panic!("all-404 delete must surface 404, got {other:?}"),
    }

    router.shutdown();
    for (_, handle) in fleet {
        handle.shutdown();
    }
}

/// A copy that survives the delete unseen (here: installed after the
/// delete, as a host dead at delete time would reveal on revival) is
/// purged by the repair pass via the delete tombstone — never adopted
/// back onto the replica set. Re-creating the id clears the
/// tombstone and the stream serves again.
#[test]
fn repair_purges_deleted_stream_copies_instead_of_resurrecting() {
    let names = ["a", "b", "c"];
    let order = ring_order(&names, "wire");
    let outsider = order[2];
    let (fleet, router) = boot_replicated_fleet(&names);
    let api = ApiClient::connect(router.addr()).expect("connect router");

    let create = wire_create("wire");
    api.create_stream(&create).expect("replicated create");
    api.delete_stream("wire").expect("replicated delete");

    // The revived copy the delete never saw.
    ApiClient::connect(fleet[outsider].1.addr())
        .expect("connect outsider")
        .create_stream(&create)
        .expect("revived copy");

    let report = router.repair();
    assert_eq!(
        report.get("transfers").and_then(Json::as_array).unwrap().len(),
        0,
        "a tombstoned stream must not be re-replicated: {report}"
    );
    assert!(
        !report.get("purges").and_then(Json::as_array).unwrap().is_empty(),
        "the leftover copy must be purged: {report}"
    );
    assert!(
        !hosts_stream(fleet[outsider].1.addr(), "wire"),
        "purge must remove the revived copy"
    );
    let request = RecommendRequest {
        stream: "wire".to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup),
        budget: BudgetSpec::Absolute(2),
    };
    match api.recommend(&request, None) {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 404, "{}", e.message),
        other => panic!("deleted stream must stay deleted, got {other:?}"),
    }

    // Recreating the id lifts the tombstone: the stream is live again
    // and repair leaves it alone.
    api.create_stream(&create).expect("recreate after delete");
    let report = router.repair();
    assert!(
        report.get("purges").and_then(Json::as_array).unwrap().is_empty(),
        "a recreated stream must not be purged: {report}"
    );
    api.recommend(&request, None)
        .expect("recreated stream serves");

    router.shutdown();
    for (_, handle) in fleet {
        handle.shutdown();
    }
}

/// A replicated create that finds an identical-definition leftover
/// copy on one member (409 amid 201s) converges to success — the
/// router probes the 409 member with an empty-slice adopt and counts
/// the idempotent merge as created. A *different* definition stays a
/// genuine divergence: 502.
#[test]
fn divergent_create_converges_on_identical_leftover_copies() {
    let names = ["a", "b", "c"];
    let order = ring_order(&names, "wire");
    let (fleet, router) = boot_replicated_fleet(&names);
    let api = ApiClient::connect(router.addr()).expect("connect router");

    // An identical copy already sits on the first set member.
    let create = wire_create("wire");
    ApiClient::connect(fleet[order[0]].1.addr())
        .expect("connect primary")
        .create_stream(&create)
        .expect("leftover copy");
    let info = api
        .create_stream(&create)
        .expect("mixed 201/409 fan-out must reconcile");
    assert_eq!(info.id, "wire");
    for &member in &order[..2] {
        assert!(
            hosts_stream(fleet[member].1.addr(), "wire"),
            "both set members host the stream after reconciliation"
        );
    }
    let request = RecommendRequest {
        stream: "wire".to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup),
        budget: BudgetSpec::Absolute(2),
    };
    api.recommend(&request, None).expect("stream serves");

    // A leftover with a *different* definition is a real conflict.
    let order2 = ring_order(&names, "wire2");
    let mut skewed = wire_create("wire2");
    skewed.tenant = Some("someone-else".to_string());
    ApiClient::connect(fleet[order2[0]].1.addr())
        .expect("connect primary")
        .create_stream(&skewed)
        .expect("conflicting copy");
    match api.create_stream(&wire_create("wire2")) {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 502, "{}", e.message),
        other => panic!("definition conflict must stay a 502, got {other:?}"),
    }

    router.shutdown();
    for (_, handle) in fleet {
        handle.shutdown();
    }
}

/// A secondary whose store is at capacity can never absorb the
/// donor's warm slice; the repair pass must notice the stalled
/// transfer and stop re-shipping the snapshot every pass instead of
/// looping forever.
#[test]
fn capacity_bound_rewarm_backs_off_instead_of_looping() {
    let names = ["a", "b"];
    // Pick a stream id whose primary is the *roomy* backend, so the
    // starved one is the re-warm target.
    let id = (0..64)
        .map(|i| format!("wire-{i}"))
        .find(|id| ring_order(&names, id)[0] == 0)
        .expect("some id hashes primary onto backend a");
    let roomy = boot_backend(&[]);
    let starved = boot_backend_with(&[], ServiceOptions::new().with_store_capacity(1));
    let mut router = RouterServer::new().with_config(
        RouterConfig::new()
            .with_probe_interval(Duration::from_millis(25))
            .with_read_timeout(Duration::from_millis(500))
            .with_replication_factor(2)
            .with_repair_interval(Duration::from_secs(120)),
    );
    router = router.with_backend("a", roomy.1.addr().to_string());
    router = router.with_backend("b", starved.1.addr().to_string());
    let router = router.serve("127.0.0.1:0").expect("bind router");
    let api = ApiClient::connect(router.addr()).expect("connect router");

    api.create_stream(&wire_create(&id)).expect("create");
    // Two distinct measures warm the primary past anything a
    // one-entry store can hold (budgets share a resumable sweep
    // entry; measures do not).
    for measure in [Measure::Dup, Measure::Frag] {
        let request = RecommendRequest {
            stream: id.clone(),
            spec: ObjectiveSpec::ascertain(measure),
            budget: BudgetSpec::Absolute(2),
        };
        api.recommend(&request, None).expect("warm the primary");
    }
    let (_, health) = client::get(roomy.1.addr(), "/v1/health").expect("health");
    let donor_warm = Json::parse(&health)
        .ok()
        .and_then(|j| {
            j.get("streams").and_then(Json::as_array).and_then(|s| {
                s.iter()
                    .find(|e| e.get("id").and_then(Json::as_str) == Some(id.as_str()))
                    .and_then(|e| e.get("warm_entries").and_then(Json::as_u64))
            })
        })
        .unwrap_or(0);
    assert!(donor_warm >= 2, "primary must outgrow the starved store");

    // The transfer stalls against the capacity wall within a few
    // passes — and *stays* quiet, instead of re-shipping the full
    // snapshot on every pass forever.
    let mut quiet_at = None;
    for pass in 0..4 {
        let report = router.repair();
        let moved = report.get("transfers").and_then(Json::as_array).unwrap().len();
        if moved == 0 {
            quiet_at = Some(pass);
            break;
        }
    }
    assert!(
        quiet_at.is_some(),
        "the stalled transfer must stop being retried"
    );
    let report = router.repair();
    assert_eq!(
        report.get("transfers").and_then(Json::as_array).unwrap().len(),
        0,
        "a stalled transfer must stay parked: {report}"
    );

    router.shutdown();
    roomy.1.shutdown();
    starved.1.shutdown();
}
