//! Integration tests for the consistent-hash routing front: topology
//! and health reporting, canonical error relay (the router never
//! rewrites a backend's 4xx bytes), operator and backend-advertised
//! drain, failover to the surviving replica, fleet-wide 503 when no
//! backend is reachable, clean broadcast (unanimous and divergent),
//! and aggregated stats.

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fact_clean::net::api::{BudgetSpec, CleanRequest, RecommendRequest};
use fact_clean::net::client::{self, ApiClient, ClientError};
use fact_clean::net::json::Json;
use fact_clean::net::{PlannerServer, RouterConfig, RouterHandle, RouterServer, ServerHandle};
use fact_clean::prelude::*;
use fc_core::SolverRegistry;

fn session() -> CleaningSession {
    let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0];
    let dists: Vec<DiscreteDist> = current
        .iter()
        .map(|&u| DiscreteDist::uniform_over(&[u - 40.0, u, u + 40.0]).unwrap())
        .collect();
    let instance = Instance::new(dists, current, vec![1; 5]).unwrap();
    let claims = ClaimSet::new(
        LinearClaim::window_comparison(3, 4, 1).unwrap(),
        vec![
            LinearClaim::window_comparison(2, 3, 1).unwrap(),
            LinearClaim::window_comparison(1, 2, 1).unwrap(),
            LinearClaim::window_comparison(0, 1, 1).unwrap(),
        ],
        vec![1.0; 3],
        Direction::HigherIsStronger,
    )
    .unwrap();
    CleaningSession::new(instance, claims)
}

/// Boots one backend registering `session()` under each given stream
/// id; the short read timeout keeps drains (and the test suite) fast.
fn boot_backend(streams: &[&str]) -> (PlannerService, ServerHandle) {
    let service = PlannerService::new(
        Arc::new(SolverRegistry::with_defaults()),
        ServiceOptions::new(),
    );
    let mut server = PlannerServer::new(service.clone()).with_config(
        fact_clean::net::ServerConfig::new().with_read_timeout(Duration::from_millis(200)),
    );
    for id in streams {
        server = server.with_stream(*id, ClaimStream::open(session(), service.clone()));
    }
    let handle = server.serve("127.0.0.1:0").expect("bind backend");
    (service, handle)
}

fn boot_router(backends: &[(&str, SocketAddr)]) -> RouterHandle {
    let mut router = RouterServer::new().with_config(
        RouterConfig::new()
            .with_probe_interval(Duration::from_millis(25))
            .with_read_timeout(Duration::from_millis(500)),
    );
    for (name, addr) in backends {
        router = router.with_backend(*name, addr.to_string());
    }
    router.serve("127.0.0.1:0").expect("bind router")
}

/// An address that was live long enough to resolve but refuses
/// connections now — a crashed backend as the router sees it.
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.local_addr().expect("addr")
}

fn crime_request() -> RecommendRequest {
    RecommendRequest {
        stream: "crime".to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup),
        budget: BudgetSpec::Absolute(2),
    }
}

/// Polls `/v1/topology` until `predicate` holds for the named backend.
fn wait_for_backend(router: &RouterHandle, name: &str, predicate: impl Fn(&Json) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = client::get(router.addr(), "/v1/topology").expect("topology");
        assert_eq!(status, 200, "topology errored: {body}");
        let json = Json::parse(&body).expect("topology JSON");
        let found = json
            .get("backends")
            .and_then(Json::as_array)
            .and_then(|backends| {
                backends
                    .iter()
                    .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
            })
            .is_some_and(&predicate);
        if found {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "backend {name} never reached the expected state"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn topology_and_health_report_the_fleet() {
    let (_service_a, backend_a) = boot_backend(&["crime"]);
    let (_service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    let (status, body) = client::get(router.addr(), "/v1/topology").expect("topology");
    assert_eq!(status, 200);
    let json = Json::parse(&body).expect("topology JSON");
    assert!(
        json.get("vnodes_per_backend")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    let backends = json.get("backends").and_then(Json::as_array).expect("list");
    assert_eq!(backends.len(), 2);
    for backend in backends {
        assert_eq!(backend.get("healthy").and_then(Json::as_bool), Some(true));
        assert_eq!(backend.get("draining").and_then(Json::as_bool), Some(false));
    }

    let (status, body) = client::get(router.addr(), "/v1/health").expect("health");
    assert_eq!(status, 200);
    let json = Json::parse(&body).expect("health JSON");
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(json.get("backends").and_then(Json::as_u64), Some(2));
    assert_eq!(json.get("backends_live").and_then(Json::as_u64), Some(2));

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn relays_canonical_errors_and_identical_plans() {
    let (_service_a, backend_a) = boot_backend(&["crime"]);
    let (_service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    // The canonical 404 and 400 come from the backend, byte-for-byte.
    let unknown = r#"{"stream":"nope","measure":"dup","budget":2}"#;
    let (via_router, body_router) =
        client::post(router.addr(), "/v1/recommend", unknown, &[]).expect("post");
    let (direct, body_direct) =
        client::post(backend_a.addr(), "/v1/recommend", unknown, &[]).expect("post");
    assert_eq!((via_router, &body_router), (direct, &body_direct));
    assert_eq!(via_router, 404);

    let malformed = r#"{"stream":"crime","measure":"dup"}"#;
    let (via_router, body_router) =
        client::post(router.addr(), "/v1/recommend", malformed, &[]).expect("post");
    let (direct, body_direct) =
        client::post(backend_a.addr(), "/v1/recommend", malformed, &[]).expect("post");
    assert_eq!((via_router, &body_router), (direct, &body_direct));
    assert_eq!(via_router, 400);

    // A well-formed request through the router matches a cold solve on
    // a backend the router did not pick (identical sessions).
    let routed = ApiClient::connect(router.addr())
        .expect("connect router")
        .recommend(&crime_request(), None)
        .expect("routed plan");
    let direct = ApiClient::connect(backend_b.addr())
        .expect("connect backend")
        .recommend(&crime_request(), None)
        .expect("direct plan");
    assert_eq!(
        routed.identity_json().to_string(),
        direct.identity_json().to_string()
    );

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn operator_drain_is_immediate_and_unknown_backend_is_404() {
    let (_service_a, backend_a) = boot_backend(&["crime"]);
    let (_service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    let (status, _) =
        client::post(router.addr(), "/v1/admin/backends/zz/drain", "", &[]).expect("post");
    assert_eq!(status, 404);

    let (status, body) =
        client::post(router.addr(), "/v1/admin/backends/a/drain", "", &[]).expect("post");
    assert_eq!(status, 200, "drain failed: {body}");
    wait_for_backend(&router, "a", |b| {
        b.get("draining").and_then(Json::as_bool) == Some(true)
            && b.get("drained_by_operator").and_then(Json::as_bool) == Some(true)
    });

    // Draining is a preference, not a partition: with b also present
    // the request lands on b, but a lone draining backend still serves.
    let api = ApiClient::connect(router.addr()).expect("connect");
    api.recommend(&crime_request(), None).expect("routed plan");

    let (status, _) =
        client::post(router.addr(), "/v1/admin/backends/a/undrain", "", &[]).expect("post");
    assert_eq!(status, 200);
    wait_for_backend(&router, "a", |b| {
        b.get("draining").and_then(Json::as_bool) == Some(false)
    });

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn backend_advertised_drain_reaches_the_ring() {
    let (_service_a, backend_a) = boot_backend(&["crime"]);
    let (_service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    // Drain a on the backend itself; the router's prober picks the
    // advertised flag up without any operator action on the router.
    let (status, _) = client::post(backend_a.addr(), "/v1/admin/drain", "", &[]).expect("post");
    assert_eq!(status, 200);
    wait_for_backend(&router, "a", |b| {
        b.get("draining").and_then(Json::as_bool) == Some(true)
            && b.get("drained_by_operator").and_then(Json::as_bool) == Some(false)
    });

    let (status, _) = client::post(backend_a.addr(), "/v1/admin/undrain", "", &[]).expect("post");
    assert_eq!(status, 200);
    wait_for_backend(&router, "a", |b| {
        b.get("draining").and_then(Json::as_bool) == Some(false)
    });

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn fails_over_to_the_surviving_replica() {
    let (_service, backend) = boot_backend(&["crime"]);
    let router = boot_router(&[("live", backend.addr()), ("dead", dead_addr())]);

    // Every stream id must succeed — including ones whose ring walk
    // starts at the dead replica.
    let api = ApiClient::connect(router.addr()).expect("connect");
    for i in 0..8u64 {
        let request = RecommendRequest {
            stream: "crime".to_string(),
            spec: ObjectiveSpec::ascertain(Measure::Dup),
            budget: BudgetSpec::Absolute(1 + i % 3),
        };
        api.recommend(&request, None)
            .unwrap_or_else(|e| panic!("request {i} failed over a dead replica: {e}"));
    }
    wait_for_backend(&router, "dead", |b| {
        b.get("healthy").and_then(Json::as_bool) == Some(false)
    });

    router.shutdown();
    backend.shutdown();
}

#[test]
fn no_reachable_backend_is_503() {
    let router = boot_router(&[("dead", dead_addr())]);
    let (status, body) =
        client::post(router.addr(), "/v1/recommend", r#"{"stream":"crime"}"#, &[]).expect("post");
    assert_eq!(status, 503, "expected fleet-wide 503, got {status} {body}");
    assert!(body.contains("no live backend"), "unexpected body: {body}");
    router.shutdown();
}

#[test]
fn clean_broadcast_requires_unanimity() {
    let (service_a, backend_a) = boot_backend(&["crime"]);
    let (service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);
    let api = ApiClient::connect(router.addr()).expect("connect");

    // Warm both replicas so the clean has cached plans to invalidate.
    for backend in [backend_a.addr(), backend_b.addr()] {
        ApiClient::connect(backend)
            .expect("connect backend")
            .recommend(&crime_request(), None)
            .expect("warm plan");
    }

    let clean = CleanRequest {
        objects: vec![0],
        revealed: vec![9_050.0],
    };
    let applied = api.clean("crime", &clean, None).expect("broadcast clean");
    assert_eq!(applied.objects, 1);
    // Both replicas saw the clean, not just the routed one: each had a
    // cached plan for the stream and each dropped it.
    assert!(service_a.store().stats().invalidations >= 1);
    assert!(service_b.store().stats().invalidations >= 1);

    // A clean the replicas answer differently (one lacks the stream)
    // is a divergence, surfaced as 502 rather than half-applied.
    let (_service_c, backend_c) = boot_backend(&["crime"]);
    let (_service_d, backend_d) = boot_backend(&["other"]);
    let skewed = boot_router(&[("c", backend_c.addr()), ("d", backend_d.addr())]);
    let err = ApiClient::connect(skewed.addr())
        .expect("connect")
        .clean("crime", &clean, None)
        .expect_err("divergent clean must not claim success");
    match err {
        ClientError::Api(e) => assert_eq!(e.status, 502, "expected divergence: {}", e.message),
        other => panic!("expected an API error, got {other}"),
    }

    skewed.shutdown();
    backend_c.shutdown();
    backend_d.shutdown();
    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn stats_aggregate_sums_the_fleet() {
    let (service_a, backend_a) = boot_backend(&["crime"]);
    let (service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    // Load both replicas directly so the aggregate provably spans more
    // than whichever one the ring favours.
    for backend in [backend_a.addr(), backend_b.addr()] {
        ApiClient::connect(backend)
            .expect("connect backend")
            .recommend(&crime_request(), None)
            .expect("plan");
    }

    let stats = ApiClient::connect(router.addr())
        .expect("connect router")
        .stats()
        .expect("aggregated stats");
    let submitted = service_a.stats().submitted + service_b.stats().submitted;
    let completed = service_a.stats().completed + service_b.stats().completed;
    assert_eq!(stats.service.submitted, submitted);
    assert_eq!(stats.service.completed, completed);
    assert_eq!(submitted, 2);

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}
