//! Integration tests for the consistent-hash routing front: topology
//! and health reporting, canonical error relay (the router never
//! rewrites a backend's 4xx bytes), operator and backend-advertised
//! drain, failover to the surviving replica, fleet-wide 503 when no
//! backend is reachable, clean broadcast (unanimous and divergent),
//! aggregated stats, streamed-sweep passthrough (chunk relay is
//! byte-preserving and client hangup cancels upstream), and the
//! wire-native stream lifecycle (create routes onto the ring, deletes
//! broadcast, and a dead host's streams recreate on the next replica).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fact_clean::net::api::{BudgetSpec, CleanRequest, CreateStreamRequest, RecommendRequest};
use fact_clean::net::client::{self, ApiClient, ClientError};
use fact_clean::net::json::Json;
use fact_clean::net::{PlannerServer, RouterConfig, RouterHandle, RouterServer, ServerHandle};
use fact_clean::prelude::*;
use fc_core::{EngineCache, Result as CoreResult, SolverRegistry, WorkerPool};

fn session() -> CleaningSession {
    let current = vec![9_010.0, 9_275.0, 9_300.0, 9_125.0, 9_430.0];
    let dists: Vec<DiscreteDist> = current
        .iter()
        .map(|&u| DiscreteDist::uniform_over(&[u - 40.0, u, u + 40.0]).unwrap())
        .collect();
    let instance = Instance::new(dists, current, vec![1; 5]).unwrap();
    let claims = ClaimSet::new(
        LinearClaim::window_comparison(3, 4, 1).unwrap(),
        vec![
            LinearClaim::window_comparison(2, 3, 1).unwrap(),
            LinearClaim::window_comparison(1, 2, 1).unwrap(),
            LinearClaim::window_comparison(0, 1, 1).unwrap(),
        ],
        vec![1.0; 3],
        Direction::HigherIsStronger,
    )
    .unwrap();
    CleaningSession::new(instance, claims)
}

/// Boots one backend registering `session()` under each given stream
/// id; the short read timeout keeps drains (and the test suite) fast.
fn boot_backend(streams: &[&str]) -> (PlannerService, ServerHandle) {
    let service = PlannerService::new(
        Arc::new(SolverRegistry::with_defaults()),
        ServiceOptions::new(),
    );
    let mut server = PlannerServer::new(service.clone()).with_config(
        fact_clean::net::ServerConfig::new().with_read_timeout(Duration::from_millis(200)),
    );
    for id in streams {
        server = server.with_stream(*id, ClaimStream::open(session(), service.clone()));
    }
    let handle = server.serve("127.0.0.1:0").expect("bind backend");
    (service, handle)
}

/// A solver that sleeps before delegating to greedy — long enough for
/// the router's disconnect probe to land between budget points.
struct SlowSolver {
    delegate: Arc<dyn Solver>,
    delay: Duration,
}

impl std::fmt::Debug for SlowSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowSolver")
            .field("delay", &self.delay)
            .finish()
    }
}

impl Solver for SlowSolver {
    fn name(&self) -> &'static str {
        "slow"
    }
    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> CoreResult<Plan> {
        std::thread::sleep(self.delay);
        self.delegate.solve_with_cache(problem, budget, cache)
    }
}

/// Boots a backend whose `"slow"` strategy sleeps per point on a
/// single worker, so a relayed sweep is provably mid-flight when the
/// client walks away.
fn boot_slow_backend(delay: Duration) -> (PlannerService, ServerHandle) {
    let mut registry = SolverRegistry::with_defaults();
    let delegate = registry.get("greedy").unwrap();
    registry.register_solver(Arc::new(SlowSolver { delegate, delay }));
    let service = PlannerService::new(
        Arc::new(registry),
        ServiceOptions::new()
            .with_inline_threshold(0)
            .with_pool(Arc::new(WorkerPool::new(1))),
    );
    let server = PlannerServer::new(service.clone())
        .with_config(
            fact_clean::net::ServerConfig::new()
                .with_read_timeout(Duration::from_millis(200))
                .with_disconnect_poll(Duration::from_millis(10)),
        )
        .with_stream("crime", ClaimStream::open(session(), service.clone()));
    let handle = server.serve("127.0.0.1:0").expect("bind backend");
    (service, handle)
}

fn boot_router(backends: &[(&str, SocketAddr)]) -> RouterHandle {
    let mut router = RouterServer::new().with_config(
        RouterConfig::new()
            .with_probe_interval(Duration::from_millis(25))
            .with_read_timeout(Duration::from_millis(500)),
    );
    for (name, addr) in backends {
        router = router.with_backend(*name, addr.to_string());
    }
    router.serve("127.0.0.1:0").expect("bind router")
}

/// An address that was live long enough to resolve but refuses
/// connections now — a crashed backend as the router sees it.
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.local_addr().expect("addr")
}

fn crime_request() -> RecommendRequest {
    RecommendRequest {
        stream: "crime".to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup),
        budget: BudgetSpec::Absolute(2),
    }
}

/// Polls `/v1/topology` until `predicate` holds for the named backend.
fn wait_for_backend(router: &RouterHandle, name: &str, predicate: impl Fn(&Json) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = client::get(router.addr(), "/v1/topology").expect("topology");
        assert_eq!(status, 200, "topology errored: {body}");
        let json = Json::parse(&body).expect("topology JSON");
        let found = json
            .get("backends")
            .and_then(Json::as_array)
            .and_then(|backends| {
                backends
                    .iter()
                    .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
            })
            .is_some_and(&predicate);
        if found {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "backend {name} never reached the expected state"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn topology_and_health_report_the_fleet() {
    let (_service_a, backend_a) = boot_backend(&["crime"]);
    let (_service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    let (status, body) = client::get(router.addr(), "/v1/topology").expect("topology");
    assert_eq!(status, 200);
    let json = Json::parse(&body).expect("topology JSON");
    assert!(
        json.get("vnodes_per_backend")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    let backends = json.get("backends").and_then(Json::as_array).expect("list");
    assert_eq!(backends.len(), 2);
    for backend in backends {
        assert_eq!(backend.get("healthy").and_then(Json::as_bool), Some(true));
        assert_eq!(backend.get("draining").and_then(Json::as_bool), Some(false));
    }

    let (status, body) = client::get(router.addr(), "/v1/health").expect("health");
    assert_eq!(status, 200);
    let json = Json::parse(&body).expect("health JSON");
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(json.get("backends").and_then(Json::as_u64), Some(2));
    assert_eq!(json.get("backends_live").and_then(Json::as_u64), Some(2));

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn relays_canonical_errors_and_identical_plans() {
    let (_service_a, backend_a) = boot_backend(&["crime"]);
    let (_service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    // The canonical 404 and 400 come from the backend, byte-for-byte.
    let unknown = r#"{"stream":"nope","measure":"dup","budget":2}"#;
    let (via_router, body_router) =
        client::post(router.addr(), "/v1/recommend", unknown, &[]).expect("post");
    let (direct, body_direct) =
        client::post(backend_a.addr(), "/v1/recommend", unknown, &[]).expect("post");
    assert_eq!((via_router, &body_router), (direct, &body_direct));
    assert_eq!(via_router, 404);

    let malformed = r#"{"stream":"crime","measure":"dup"}"#;
    let (via_router, body_router) =
        client::post(router.addr(), "/v1/recommend", malformed, &[]).expect("post");
    let (direct, body_direct) =
        client::post(backend_a.addr(), "/v1/recommend", malformed, &[]).expect("post");
    assert_eq!((via_router, &body_router), (direct, &body_direct));
    assert_eq!(via_router, 400);

    // A well-formed request through the router matches a cold solve on
    // a backend the router did not pick (identical sessions).
    let routed = ApiClient::connect(router.addr())
        .expect("connect router")
        .recommend(&crime_request(), None)
        .expect("routed plan");
    let direct = ApiClient::connect(backend_b.addr())
        .expect("connect backend")
        .recommend(&crime_request(), None)
        .expect("direct plan");
    assert_eq!(
        routed.identity_json().to_string(),
        direct.identity_json().to_string()
    );

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn operator_drain_is_immediate_and_unknown_backend_is_404() {
    let (_service_a, backend_a) = boot_backend(&["crime"]);
    let (_service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    let (status, _) =
        client::post(router.addr(), "/v1/admin/backends/zz/drain", "", &[]).expect("post");
    assert_eq!(status, 404);

    let (status, body) =
        client::post(router.addr(), "/v1/admin/backends/a/drain", "", &[]).expect("post");
    assert_eq!(status, 200, "drain failed: {body}");
    wait_for_backend(&router, "a", |b| {
        b.get("draining").and_then(Json::as_bool) == Some(true)
            && b.get("drained_by_operator").and_then(Json::as_bool) == Some(true)
    });

    // Draining is a preference, not a partition: with b also present
    // the request lands on b, but a lone draining backend still serves.
    let api = ApiClient::connect(router.addr()).expect("connect");
    api.recommend(&crime_request(), None).expect("routed plan");

    let (status, _) =
        client::post(router.addr(), "/v1/admin/backends/a/undrain", "", &[]).expect("post");
    assert_eq!(status, 200);
    wait_for_backend(&router, "a", |b| {
        b.get("draining").and_then(Json::as_bool) == Some(false)
    });

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn backend_advertised_drain_reaches_the_ring() {
    let (_service_a, backend_a) = boot_backend(&["crime"]);
    let (_service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    // Drain a on the backend itself; the router's prober picks the
    // advertised flag up without any operator action on the router.
    let (status, _) = client::post(backend_a.addr(), "/v1/admin/drain", "", &[]).expect("post");
    assert_eq!(status, 200);
    wait_for_backend(&router, "a", |b| {
        b.get("draining").and_then(Json::as_bool) == Some(true)
            && b.get("drained_by_operator").and_then(Json::as_bool) == Some(false)
    });

    let (status, _) = client::post(backend_a.addr(), "/v1/admin/undrain", "", &[]).expect("post");
    assert_eq!(status, 200);
    wait_for_backend(&router, "a", |b| {
        b.get("draining").and_then(Json::as_bool) == Some(false)
    });

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn fails_over_to_the_surviving_replica() {
    let (_service, backend) = boot_backend(&["crime"]);
    let router = boot_router(&[("live", backend.addr()), ("dead", dead_addr())]);

    // Every stream id must succeed — including ones whose ring walk
    // starts at the dead replica.
    let api = ApiClient::connect(router.addr()).expect("connect");
    for i in 0..8u64 {
        let request = RecommendRequest {
            stream: "crime".to_string(),
            spec: ObjectiveSpec::ascertain(Measure::Dup),
            budget: BudgetSpec::Absolute(1 + i % 3),
        };
        api.recommend(&request, None)
            .unwrap_or_else(|e| panic!("request {i} failed over a dead replica: {e}"));
    }
    wait_for_backend(&router, "dead", |b| {
        b.get("healthy").and_then(Json::as_bool) == Some(false)
    });

    router.shutdown();
    backend.shutdown();
}

#[test]
fn no_reachable_backend_is_503() {
    let router = boot_router(&[("dead", dead_addr())]);
    let (status, body) =
        client::post(router.addr(), "/v1/recommend", r#"{"stream":"crime"}"#, &[]).expect("post");
    assert_eq!(status, 503, "expected fleet-wide 503, got {status} {body}");
    assert!(body.contains("no live backend"), "unexpected body: {body}");
    router.shutdown();
}

#[test]
fn clean_broadcast_requires_unanimity() {
    let (service_a, backend_a) = boot_backend(&["crime"]);
    let (service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);
    let api = ApiClient::connect(router.addr()).expect("connect");

    // Warm both replicas so the clean has cached plans to invalidate.
    for backend in [backend_a.addr(), backend_b.addr()] {
        ApiClient::connect(backend)
            .expect("connect backend")
            .recommend(&crime_request(), None)
            .expect("warm plan");
    }

    let clean = CleanRequest {
        objects: vec![0],
        revealed: vec![9_050.0],
    };
    let applied = api.clean("crime", &clean, None).expect("broadcast clean");
    assert_eq!(applied.objects, 1);
    // Both replicas saw the clean, not just the routed one: each had a
    // cached plan for the stream and each dropped it.
    assert!(service_a.store().stats().invalidations >= 1);
    assert!(service_b.store().stats().invalidations >= 1);

    // A clean the replicas answer differently (one lacks the stream)
    // is a divergence, surfaced as 502 rather than half-applied.
    let (_service_c, backend_c) = boot_backend(&["crime"]);
    let (_service_d, backend_d) = boot_backend(&["other"]);
    let skewed = boot_router(&[("c", backend_c.addr()), ("d", backend_d.addr())]);
    let err = ApiClient::connect(skewed.addr())
        .expect("connect")
        .clean("crime", &clean, None)
        .expect_err("divergent clean must not claim success");
    match err {
        ClientError::Api(e) => assert_eq!(e.status, 502, "expected divergence: {}", e.message),
        other => panic!("expected an API error, got {other}"),
    }

    skewed.shutdown();
    backend_c.shutdown();
    backend_d.shutdown();
    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn stats_aggregate_sums_the_fleet() {
    let (service_a, backend_a) = boot_backend(&["crime"]);
    let (service_b, backend_b) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);

    // Load both replicas directly so the aggregate provably spans more
    // than whichever one the ring favours.
    for backend in [backend_a.addr(), backend_b.addr()] {
        ApiClient::connect(backend)
            .expect("connect backend")
            .recommend(&crime_request(), None)
            .expect("plan");
    }

    let stats = ApiClient::connect(router.addr())
        .expect("connect router")
        .stats()
        .expect("aggregated stats");
    let submitted = service_a.stats().submitted + service_b.stats().submitted;
    let completed = service_a.stats().completed + service_b.stats().completed;
    assert_eq!(stats.service.submitted, submitted);
    assert_eq!(stats.service.completed, completed);
    assert_eq!(submitted, 2);

    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn streamed_sweeps_relay_through_the_router_unchanged() {
    for body in [
        r#"{"stream":"crime","measure":"dup","budgets":[1,2,3]}"#,
        r#"{"stream":"crime","measure":"bias","goal":{"maxpr":5},"budgets":[1,3]}"#,
    ] {
        // Fresh backends per body: cold caches on both sides, so the
        // diagnostics (and therefore every byte) must line up.
        let (_service, backend) = boot_backend(&["crime"]);
        let (_reference_service, reference) = boot_backend(&["crime"]);
        let router = boot_router(&[("a", backend.addr())]);

        let (status, buffered) =
            client::post(reference.addr(), "/v1/sweep", body, &[]).expect("buffered sweep");
        assert_eq!(status, 200, "{buffered}");
        let (status, streamed) =
            client::post(router.addr(), "/v1/sweep?stream=1", body, &[]).expect("streamed sweep");
        assert_eq!(status, 200, "{streamed}");
        assert_eq!(
            streamed, buffered,
            "chunks relayed through the router concatenate to the buffered body"
        );

        router.shutdown();
        backend.shutdown();
        reference.shutdown();
    }

    // A refusal never starts a chunked stream: the backend's buffered
    // 404 passes through the streamed relay byte-for-byte.
    let (_service, backend) = boot_backend(&["crime"]);
    let router = boot_router(&[("a", backend.addr())]);
    let unknown = r#"{"stream":"nope","measure":"dup","budgets":[1]}"#;
    let (via_router, body_router) =
        client::post(router.addr(), "/v1/sweep?stream=1", unknown, &[]).expect("post");
    let (direct, body_direct) =
        client::post(backend.addr(), "/v1/sweep?stream=1", unknown, &[]).expect("post");
    assert_eq!((via_router, &body_router), (direct, &body_direct));
    assert_eq!(via_router, 404);
    router.shutdown();
    backend.shutdown();
}

#[test]
fn client_hangup_mid_stream_cancels_upstream_points() {
    let (service, backend) = boot_slow_backend(Duration::from_millis(300));
    let router = boot_router(&[("a", backend.addr())]);

    let body = r#"{"stream":"crime","measure":"dup","strategy":"slow","budgets":[1,2,3,4]}"#;
    let raw = format!(
        "POST /v1/sweep?stream=1 HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut sock = TcpStream::connect(router.addr()).unwrap();
    sock.write_all(raw.as_bytes()).unwrap();
    // Read the relayed head (proof the stream reached us through the
    // router), then walk away mid-stream.
    let mut buf = [0u8; 32];
    let n = sock.read(&mut buf).unwrap();
    assert!(n > 0, "stream head arrived through the router");
    drop(sock);

    // The router notices the hangup, drops its upstream connection,
    // and the backend's own disconnect probe cancels the sweep.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if service.stats().cancelled > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backend never cancelled the abandoned sweep: {:?}",
            service.stats()
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    router.shutdown();
    backend.shutdown();
}

#[test]
fn wire_created_streams_fail_over_to_the_next_replica() {
    let (_service_a, backend_a) = boot_backend(&[]);
    let (_service_b, backend_b) = boot_backend(&[]);
    let router = boot_router(&[("a", backend_a.addr()), ("b", backend_b.addr())]);
    let api = ApiClient::connect(router.addr()).expect("connect router");

    let base = session();
    let create = CreateStreamRequest {
        id: "wire".to_string(),
        tenant: None,
        theta: None,
        discretize_support: None,
        data: base.data().clone(),
        claims: base.claims().clone(),
    };
    let info = api.create_stream(&create).expect("create via router");
    assert_eq!(info.id, "wire");

    // The create landed on exactly one replica — the same one the ring
    // sends solves to.
    let on_a = {
        let (_, body) = client::get(backend_a.addr(), "/v1/streams").expect("list a");
        body.contains("wire")
    };
    let on_b = {
        let (_, body) = client::get(backend_b.addr(), "/v1/streams").expect("list b");
        body.contains("wire")
    };
    assert!(on_a ^ on_b, "stream must live on exactly one replica");
    let request = RecommendRequest {
        stream: "wire".to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup),
        budget: BudgetSpec::Absolute(2),
    };
    let plan = api
        .recommend(&request, None)
        .expect("solve on created stream");

    // Kill the host. Its wire-created stream dies with it; the ring
    // fails solves over to the survivor, which answers the canonical
    // 404 until the stream is recreated there.
    let (host, host_name, survivor) = if on_a {
        (backend_a, "a", backend_b)
    } else {
        (backend_b, "b", backend_a)
    };
    host.shutdown();
    wait_for_backend(&router, host_name, |b| {
        b.get("healthy").and_then(Json::as_bool) == Some(false)
    });
    match api.recommend(&request, None) {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 404, "{}", e.message),
        other => panic!("expected 404 after the host died, got {other:?}"),
    }

    // Recreate over the wire: the ring walk now lands on the survivor.
    let recreated = api.create_stream(&create).expect("recreate after failover");
    assert_eq!(recreated, info);
    let (_, body) = client::get(survivor.addr(), "/v1/streams").expect("list survivor");
    assert!(
        body.contains("wire"),
        "survivor hosts the recreated stream: {body}"
    );
    let again = api.recommend(&request, None).expect("solve after recreate");
    assert_eq!(
        plan.identity_json().to_string(),
        again.identity_json().to_string(),
        "identical session, identical plan either side of the failover"
    );

    // Deletes broadcast; with the host dead only the survivor answers,
    // and the id is free for yet another create afterwards.
    api.delete_stream("wire").expect("delete via router");
    match api.recommend(&request, None) {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 404, "{}", e.message),
        other => panic!("expected 404 after delete, got {other:?}"),
    }
    api.create_stream(&create).expect("recreate after delete");

    router.shutdown();
    survivor.shutdown();
}

/// The tentpole end-to-end: with `replication_factor(2)` a created
/// stream lands on two ring backends, the repair pass warms the
/// secondary via snapshot transfer, and killing the primary mid-run
/// leaves every subsequent read served by the secondary — same plan
/// bytes, `store_misses == 0`, no recreate — while another repair
/// restores two-replica residency on the survivors.
#[test]
fn replicated_streams_survive_primary_loss_with_warm_failover() {
    let names = ["a", "b", "c"];
    let mut fleet: Vec<(PlannerService, Option<ServerHandle>)> = names
        .iter()
        .map(|_| {
            let (service, handle) = boot_backend(&[]);
            (service, Some(handle))
        })
        .collect();
    let mut router = RouterServer::new().with_config(
        RouterConfig::new()
            .with_probe_interval(Duration::from_millis(25))
            .with_read_timeout(Duration::from_millis(500))
            .with_replication_factor(2)
            // Long enough that only the explicit `repair()` calls run
            // passes — the assertions below stay deterministic.
            .with_repair_interval(Duration::from_secs(120)),
    );
    for (name, (_, handle)) in names.iter().zip(&fleet) {
        router = router.with_backend(*name, handle.as_ref().unwrap().addr().to_string());
    }
    let router = router.serve("127.0.0.1:0").expect("bind router");
    let api = ApiClient::connect(router.addr()).expect("connect router");

    let base = session();
    let create = CreateStreamRequest {
        id: "wire".to_string(),
        tenant: None,
        theta: None,
        discretize_support: None,
        data: base.data().clone(),
        claims: base.claims().clone(),
    };
    api.create_stream(&create).expect("replicated create");

    // The create fanned out to exactly R = 2 of the 3 backends.
    let hosts: Vec<usize> = (0..names.len())
        .filter(|&i| {
            let addr = fleet[i].1.as_ref().unwrap().addr();
            let (_, body) = client::get(addr, "/v1/streams").expect("list");
            body.contains("wire")
        })
        .collect();
    assert_eq!(
        hosts.len(),
        2,
        "replica set must host the stream: {hosts:?}"
    );

    let request = RecommendRequest {
        stream: "wire".to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup),
        budget: BudgetSpec::Absolute(2),
    };
    let before = api.recommend(&request, None).expect("solve via router");

    // The solve landed on the primary: the replica-set member that saw
    // traffic. The other host is the (cold) secondary.
    let primary = *hosts
        .iter()
        .find(|&&i| fleet[i].0.stats().submitted > 0)
        .expect("one replica served the solve");

    // Repair re-warms the cold secondary over the wire: snapshot off
    // the warm primary, adopt-merge onto the secondary. A second pass
    // finds nothing left to move — the pass is idempotent.
    let report = router.repair();
    let moved = report
        .get("transfers")
        .and_then(Json::as_array)
        .unwrap()
        .len();
    assert!(moved >= 1, "repair must warm the cold secondary: {report}");
    let report = router.repair();
    assert_eq!(
        report
            .get("transfers")
            .and_then(Json::as_array)
            .unwrap()
            .len(),
        0,
        "a converged fleet repairs nothing: {report}"
    );

    // Kill the primary mid-run.
    fleet[primary].1.take().unwrap().shutdown();
    wait_for_backend(&router, names[primary], |b| {
        b.get("healthy").and_then(Json::as_bool) == Some(false)
    });

    // Every subsequent read is served by the secondary: same plan
    // bytes, fully warm, and no recreate round-trip happened — the
    // stream was simply already there.
    for _ in 0..3 {
        let after = api.recommend(&request, None).expect("failover read");
        assert_eq!(
            before.identity_json().to_string(),
            after.identity_json().to_string(),
            "failover must not change plan bytes"
        );
        assert_eq!(
            after.diagnostics.store_misses, 0,
            "the secondary must serve fully warm"
        );
    }

    // Repair restores two-replica residency on the survivors: the
    // secondary donates onto the next ring successor.
    let report = router.repair();
    let installed = report
        .get("transfers")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .any(|t| t.get("installed").and_then(Json::as_bool) == Some(true));
    assert!(
        installed,
        "repair must re-replicate onto a survivor: {report}"
    );
    let rehosted: Vec<usize> = (0..names.len())
        .filter(|&i| {
            fleet[i].1.as_ref().is_some_and(|handle| {
                let (_, body) = client::get(handle.addr(), "/v1/streams").expect("list");
                body.contains("wire")
            })
        })
        .collect();
    assert_eq!(rehosted.len(), 2, "R=2 residency restored: {rehosted:?}");

    // Deletes scope to the replica set; afterwards the id 404s
    // everywhere (a real 404, not a silent success on retry).
    api.delete_stream("wire").expect("scoped delete");
    match api.delete_stream("wire") {
        Err(ClientError::Api(e)) => assert_eq!(e.status, 404, "{}", e.message),
        other => panic!("all-404 delete must surface 404, got {other:?}"),
    }

    router.shutdown();
    for (_, handle) in fleet {
        if let Some(handle) = handle {
            handle.shutdown();
        }
    }
}
