//! Deterministic surprise probability for affine queries over discrete
//! independent values, via binned convolution.
//!
//! The deviation `D = Σ_{i∈T} wᵢ (Xᵢ − uᵢ)` is a sum of independent
//! discrete variables; its exact support grows as `Π |Vᵢ|`, so instead we
//! convolve on a fixed grid with linear (two-bin) interpolation of every
//! mass point. With the default 2¹⁴ bins the binning error is far below
//! the decision noise of any greedy that consumes these probabilities,
//! and — unlike Monte Carlo — the result is deterministic, which keeps
//! `GreedyMaxPr` runs reproducible.

use std::cell::RefCell;

use crate::instance::Instance;
use crate::{CoreError, Result};
use fc_claims::QueryFunction;

/// Default number of grid bins.
pub const DEFAULT_BINS: usize = 1 << 14;

/// Bins per cache block in the convolution inner loop: 4096 × 8 B =
/// 32 KiB, sized so one source block stays L1-resident while every
/// outcome of the current variable streams over it.
const BLOCK_BINS: usize = 4096;

thread_local! {
    /// Ping-pong grid buffers recycled across calls on this thread.
    /// `GreedyMaxPr` calls the convolution O(candidates × rounds)
    /// times per solve; reusing the two `bins`-sized buffers replaces
    /// that many allocation pairs with two `memset`s per call.
    static SCRATCH: RefCell<Option<(Vec<f64>, Vec<f64>)>> = const { RefCell::new(None) };
}

/// Takes the thread-local ping-pong buffers, zeroed and sized to
/// `bins`. Pair with [`recycle_scratch`].
fn take_scratch(bins: usize) -> (Vec<f64>, Vec<f64>) {
    let (mut pmf, mut next) = SCRATCH.with(|s| s.borrow_mut().take()).unwrap_or_default();
    pmf.clear();
    pmf.resize(bins, 0.0);
    next.clear();
    next.resize(bins, 0.0);
    (pmf, next)
}

fn recycle_scratch(bufs: (Vec<f64>, Vec<f64>)) {
    SCRATCH.with(|s| *s.borrow_mut() = Some(bufs));
}

/// `Pr[f(X) < f(u) − τ | X_{O\T} = u_{O\T}]` for an affine query over a
/// discrete instance, via grid convolution with `bins` cells.
pub fn surprise_prob_convolution(
    instance: &Instance,
    query: &dyn QueryFunction,
    cleaned: &[usize],
    tau: f64,
    bins: Option<usize>,
) -> Result<f64> {
    let n = instance.len();
    let (weights, _b) = query.as_affine(n).ok_or(CoreError::NotAffine)?;
    let bins = bins.unwrap_or(DEFAULT_BINS).max(8);
    let u = instance.current();
    // Only cleaned objects with nonzero weight shift the deviation.
    let active: Vec<usize> = cleaned
        .iter()
        .copied()
        .filter(|&i| weights[i] != 0.0)
        .collect();
    if active.is_empty() {
        return Ok(if -tau > 0.0 { 1.0 } else { 0.0 });
    }
    // Support bounds of D.
    let mut lo = 0.0f64;
    let mut hi = 0.0f64;
    for &i in &active {
        let d = instance.dist(i);
        let w = weights[i];
        let a = w * (d.min_value() - u[i]);
        let b = w * (d.max_value() - u[i]);
        lo += a.min(b);
        hi += a.max(b);
    }
    if hi - lo < 1e-12 {
        // Degenerate: D is a constant (lo == hi).
        return Ok(if lo < -tau { 1.0 } else { 0.0 });
    }
    let width = (hi - lo) / (bins - 1) as f64;
    let top = (bins - 1) as f64;
    let (mut pmf, mut next) = take_scratch(bins);
    // Start with the point mass at D = 0, and track the live support
    // `[live.0, live.1]` (inclusive): bins outside it are exactly zero,
    // so the per-variable passes never have to scan the full grid — the
    // support grows only by each variable's shift span.
    let x0 = ((0.0 - lo) / width).clamp(0.0, top);
    deposit(&mut pmf, x0, 1.0);
    let mut live = (x0.floor() as usize, (x0.floor() as usize + 1).min(bins - 1));
    let mut shifts: Vec<(f64, f64)> = Vec::with_capacity(4);
    for &i in &active {
        let d = instance.dist(i);
        let w = weights[i];
        shifts.clear();
        let mut min_shift = f64::INFINITY;
        let mut max_shift = f64::NEG_INFINITY;
        for (v, p) in d.iter() {
            let shift = w * (v - u[i]) / width;
            min_shift = min_shift.min(shift);
            max_shift = max_shift.max(shift);
            shifts.push((shift, p));
        }
        // Every deposit this pass lands in [new_lo, new_hi] (deposits
        // are monotone in bin + shift, and `deposit` clamps to the
        // grid), so that is the only range of `next` that needs
        // zeroing — stale mass elsewhere is never read.
        let new_lo = (live.0 as f64 + min_shift).clamp(0.0, top).floor() as usize;
        let new_hi =
            ((live.1 as f64 + max_shift).clamp(0.0, top).floor() as usize + 1).min(bins - 1);
        next[new_lo..=new_hi].iter_mut().for_each(|x| *x = 0.0);
        // Blocked convolution: walk the live support in L1-sized
        // blocks, replaying every outcome against the resident block
        // instead of streaming the whole grid once per outcome.
        let mut start = live.0;
        while start <= live.1 {
            let end = (start + BLOCK_BINS - 1).min(live.1);
            for &(shift, p) in &shifts {
                for (bin, &mass) in pmf.iter().enumerate().take(end + 1).skip(start) {
                    if mass > 0.0 {
                        deposit(&mut next, bin as f64 + shift, mass * p);
                    }
                }
            }
            start = end + 1;
        }
        std::mem::swap(&mut pmf, &mut next);
        live = (new_lo, new_hi);
    }
    // Pr[D < −τ]: sum full bins below the threshold coordinate, and take
    // the boundary bin's mass as a point mass at its grid coordinate
    // (consistent with how `deposit` splits mass between neighbours).
    let target = (-tau - lo) / width;
    let mut p = 0.0;
    for (bin, &mass) in pmf.iter().enumerate().take(live.1 + 1).skip(live.0) {
        if (bin as f64) < target {
            p += mass;
        }
    }
    recycle_scratch((pmf, next));
    Ok(p.clamp(0.0, 1.0))
}

/// Splits `mass` at fractional grid coordinate `x` between the two
/// neighbouring bins (linear interpolation), clamping at the edges.
#[inline]
fn deposit(pmf: &mut [f64], x: f64, mass: f64) {
    let n = pmf.len();
    let x = x.clamp(0.0, (n - 1) as f64);
    let lo = x.floor() as usize;
    let frac = x - lo as f64;
    if lo + 1 < n {
        pmf[lo] += mass * (1.0 - frac);
        pmf[lo + 1] += mass * frac;
    } else {
        pmf[lo] += mass;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxpr::enumerate::surprise_prob_exact;
    use fc_claims::{BiasQuery, ClaimSet, Direction, LinearClaim};
    use fc_uncertain::{rng_from_seed, DiscreteDist};
    use rand::Rng;

    fn bias_query(n: usize) -> BiasQuery {
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, n).unwrap(),
            vec![LinearClaim::window_sum(0, n).unwrap()],
            vec![1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        BiasQuery::new(cs, 0.0)
    }

    #[test]
    fn matches_exact_on_small_instances() {
        let mut rng = rng_from_seed(5);
        for trial in 0..10 {
            let n = 4;
            let dists: Vec<DiscreteDist> = (0..n)
                .map(|_| {
                    let k = rng.gen_range(2..=4);
                    let vals: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..20.0)).collect();
                    DiscreteDist::uniform_over(&vals).unwrap()
                })
                .collect();
            let current: Vec<f64> = (0..n).map(|_| rng.gen_range(5.0..15.0)).collect();
            let inst = Instance::new(dists, current, vec![1; n]).unwrap();
            let q = bias_query(n);
            let tau = rng.gen_range(0.0..5.0);
            let cleaned = vec![0, 2, 3];
            let exact = surprise_prob_exact(&inst, &q, &cleaned, tau, None).unwrap();
            let conv = surprise_prob_convolution(&inst, &q, &cleaned, tau, Some(1 << 16)).unwrap();
            assert!(
                (exact - conv).abs() < 5e-3,
                "trial {trial}: exact {exact} vs conv {conv}"
            );
        }
    }

    #[test]
    fn empty_active_set() {
        let inst = Instance::new(
            vec![DiscreteDist::uniform_over(&[0.0, 1.0]).unwrap(); 2],
            vec![0.5, 0.5],
            vec![1, 1],
        )
        .unwrap();
        let q = bias_query(2);
        let p = surprise_prob_convolution(&inst, &q, &[], 0.1, None).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn non_affine_rejected() {
        let inst = Instance::new(
            vec![DiscreteDist::uniform_over(&[0.0, 1.0]).unwrap(); 2],
            vec![0.5, 0.5],
            vec![1, 1],
        )
        .unwrap();
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![LinearClaim::window_sum(0, 2).unwrap()],
            vec![1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let q = fc_claims::DupQuery::new(cs, 1.0);
        assert!(matches!(
            surprise_prob_convolution(&inst, &q, &[0], 0.1, None),
            Err(CoreError::NotAffine)
        ));
    }

    #[test]
    fn degenerate_point_masses() {
        // All cleaned objects certain: D is constant.
        let inst = Instance::new(
            vec![DiscreteDist::point(3.0), DiscreteDist::point(4.0)],
            vec![5.0, 4.0],
            vec![1, 1],
        )
        .unwrap();
        let q = bias_query(2);
        // D = (3−5) + (4−4) = −2 ⇒ surprise iff τ < 2.
        assert_eq!(
            surprise_prob_convolution(&inst, &q, &[0, 1], 1.0, None).unwrap(),
            1.0
        );
        assert_eq!(
            surprise_prob_convolution(&inst, &q, &[0, 1], 3.0, None).unwrap(),
            0.0
        );
    }
}
