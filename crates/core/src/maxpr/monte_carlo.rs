//! Monte Carlo surprise probability for arbitrary queries.

use crate::instance::Instance;
use fc_claims::QueryFunction;
use rand::Rng;

/// Estimates `Pr[f(X) < f(u) − τ | X_{O\T} = u_{O\T}]` with `samples`
/// draws of the cleaned objects (everything else pinned at the current
/// values).
pub fn surprise_prob_mc<R: Rng + ?Sized>(
    instance: &Instance,
    query: &dyn QueryFunction,
    cleaned: &[usize],
    tau: f64,
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let scope = query.objects();
    let cleaned_scope: Vec<usize> = scope
        .iter()
        .copied()
        .filter(|i| cleaned.contains(i))
        .collect();
    let mut values = instance.current().to_vec();
    let baseline = query.eval(&values);
    let threshold = baseline - tau;
    if cleaned_scope.is_empty() {
        return if baseline < threshold { 1.0 } else { 0.0 };
    }
    let joint = instance.joint();
    let mut hits = 0usize;
    for _ in 0..samples {
        for &obj in &cleaned_scope {
            values[obj] = joint.dist(obj).sample(rng);
        }
        if query.eval(&values) < threshold {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxpr::enumerate::surprise_prob_exact;
    use fc_claims::{BiasQuery, ClaimSet, Direction, LinearClaim};
    use fc_uncertain::{rng_from_seed, DiscreteDist};

    #[test]
    fn agrees_with_exact() {
        let inst = Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap(),
                DiscreteDist::uniform_over(&[1.0 / 3.0, 1.0, 5.0 / 3.0]).unwrap(),
            ],
            vec![1.0, 1.0],
            vec![1, 1],
        )
        .unwrap();
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![LinearClaim::window_sum(0, 2).unwrap()],
            vec![1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let q = BiasQuery::new(cs, 2.0);
        let tau = 7.0 / 12.0;
        let mut rng = rng_from_seed(99);
        for cleaned in [vec![0], vec![1], vec![0, 1]] {
            let exact = surprise_prob_exact(&inst, &q, &cleaned, tau, None).unwrap();
            let mc = surprise_prob_mc(&inst, &q, &cleaned, tau, 40_000, &mut rng);
            assert!(
                (mc - exact).abs() < 0.01,
                "cleaned {cleaned:?}: mc {mc} vs exact {exact}"
            );
        }
    }
}
