//! Closed-form surprise probability for affine queries over Gaussian
//! errors (the setting of Lemma 3.3 and Theorem 3.9).
//!
//! With `f = b + wᵀX` and uncleaned objects pinned at `u`, the deviation
//! `D = f(X) − f(u) = Σ_{i∈T} wᵢ (Xᵢ − uᵢ)` is normal, so
//! `Pr[D < −τ] = Φ((−τ − E[D]) / sd[D])`.
//!
//! * Under [`MvnSemantics::Marginal`] the cleaned values are draws from
//!   the marginal law: `E[D] = Σ_{i∈T} wᵢ(μᵢ − uᵢ)`,
//!   `Var[D] = w_Tᵀ Σ_TT w_T`. When additionally `μ = u` this reduces to
//!   the paper's `Φ(−τ / √(Σ wᵢ²σᵢ²))` and maximizing it is the knapsack
//!   of Lemma 3.3.
//! * Under [`MvnSemantics::Conditional`] the cleaned values are drawn
//!   from the posterior given `X_{O\T} = u_{O\T}`.

use crate::instance::GaussianInstance;
use crate::Result;
use fc_uncertain::mvn::MvnSemantics;
use fc_uncertain::Normal;

/// `Pr[f(X) < f(u) − τ | X_{O\T} = u_{O\T}]` for affine `f = b + wᵀX`.
///
/// Returns 0 for an empty `T` with `τ > 0` (nothing changes, no surprise)
/// and handles degenerate (zero-variance) deviations deterministically.
pub fn surprise_prob_gaussian(
    instance: &GaussianInstance,
    weights: &[f64],
    cleaned: &[usize],
    tau: f64,
    semantics: MvnSemantics,
) -> Result<f64> {
    let mut t: Vec<usize> = cleaned.to_vec();
    t.sort_unstable();
    t.dedup();
    let u = instance.current();
    let (mean_shift, var) = match semantics {
        MvnSemantics::Marginal => {
            let shift: f64 = t
                .iter()
                .map(|&i| weights[i] * (instance.mean(i) - u[i]))
                .sum();
            let sub = instance.mvn().cov().principal_submatrix(&t);
            let w_t: Vec<f64> = t.iter().map(|&i| weights[i]).collect();
            (shift, sub.quadratic_form(&w_t))
        }
        MvnSemantics::Conditional => {
            let uncleaned: Vec<usize> = (0..instance.len()).filter(|i| !t.contains(i)).collect();
            let obs_vals: Vec<f64> = uncleaned.iter().map(|&i| u[i]).collect();
            let (hidden, mean, cov) = instance.mvn().conditional(&uncleaned, &obs_vals)?;
            debug_assert_eq!(hidden, t);
            let shift: f64 = hidden
                .iter()
                .zip(&mean)
                .map(|(&i, &m)| weights[i] * (m - u[i]))
                .sum();
            let w_t: Vec<f64> = hidden.iter().map(|&i| weights[i]).collect();
            (shift, cov.quadratic_form(&w_t))
        }
    };
    let target = -tau - mean_shift;
    if var <= 0.0 {
        // Deterministic deviation: surprise iff the shift already clears τ.
        return Ok(if target > 0.0 { 1.0 } else { 0.0 });
    }
    Ok(Normal::standard().cdf(target / var.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::GaussianInstance;
    use fc_uncertain::MultivariateNormal;

    #[test]
    fn empty_selection_no_surprise() {
        let g = GaussianInstance::centered_independent(vec![5.0], &[1.0], vec![1]).unwrap();
        let p = surprise_prob_gaussian(&g, &[1.0], &[], 0.5, MvnSemantics::Marginal).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn centered_reduces_to_phi() {
        // μ = u ⇒ p = Φ(−τ/σ_T) with σ_T² = Σ_{i∈T} wᵢ²σᵢ².
        let g = GaussianInstance::centered_independent(
            vec![0.0, 0.0, 0.0],
            &[1.0, 2.0, 3.0],
            vec![1; 3],
        )
        .unwrap();
        let w = [1.0, 1.0, 1.0];
        let p = surprise_prob_gaussian(&g, &w, &[0, 2], 1.0, MvnSemantics::Marginal).unwrap();
        let want = fc_uncertain::Normal::standard().cdf(-1.0 / (10.0f64).sqrt());
        assert!((p - want).abs() < 1e-12);
        // More cleaned variance ⇒ higher surprise probability.
        let p_small = surprise_prob_gaussian(&g, &w, &[0], 1.0, MvnSemantics::Marginal).unwrap();
        assert!(p > p_small);
    }

    #[test]
    fn mean_shift_can_hurt() {
        // An object whose mean sits *above* its current value pushes the
        // deviation up, reducing the chance of a downward surprise — the
        // Fig. 12 "refuses to clean" behaviour.
        let g =
            GaussianInstance::independent(vec![10.0, 0.0], &[1.0, 1.0], vec![0.0, 0.0], vec![1, 1])
                .unwrap();
        let w = [1.0, 1.0];
        let p_both = surprise_prob_gaussian(&g, &w, &[0, 1], 0.5, MvnSemantics::Marginal).unwrap();
        let p_good = surprise_prob_gaussian(&g, &w, &[1], 0.5, MvnSemantics::Marginal).unwrap();
        assert!(
            p_good > p_both,
            "adding the upward-shifted object should hurt: {p_good} vs {p_both}"
        );
    }

    #[test]
    fn centered_marginal_equals_conditional_for_independent() {
        let g = GaussianInstance::centered_independent(vec![1.0, 2.0], &[0.5, 1.5], vec![1, 1])
            .unwrap();
        let w = [2.0, -1.0];
        for cleaned in [vec![0], vec![1], vec![0, 1]] {
            let a = surprise_prob_gaussian(&g, &w, &cleaned, 0.3, MvnSemantics::Marginal).unwrap();
            let b =
                surprise_prob_gaussian(&g, &w, &cleaned, 0.3, MvnSemantics::Conditional).unwrap();
            assert!((a - b).abs() < 1e-12, "cleaned {cleaned:?}");
        }
    }

    #[test]
    fn correlated_conditional_shifts_mean() {
        // Centered at u, but correlated: observing X1 = u1 keeps the
        // conditional mean at u ⇒ still Φ(−τ/σ) with the Schur variance.
        let mvn = MultivariateNormal::with_geometric_dependency(vec![0.0, 0.0], &[1.0, 1.0], 0.8)
            .unwrap();
        let g = GaussianInstance::with_mvn(mvn, vec![0.0, 0.0], vec![1, 1]).unwrap();
        let w = [1.0, 0.0];
        let p = surprise_prob_gaussian(&g, &w, &[0], 0.5, MvnSemantics::Conditional).unwrap();
        // Var[X0 | X1] = 1 − 0.64 = 0.36 ⇒ σ = 0.6.
        let want = fc_uncertain::Normal::standard().cdf(-0.5 / 0.6);
        assert!((p - want).abs() < 1e-12);
        // Marginal semantics would use σ = 1.
        let pm = surprise_prob_gaussian(&g, &w, &[0], 0.5, MvnSemantics::Marginal).unwrap();
        assert!(pm > p);
    }
}
