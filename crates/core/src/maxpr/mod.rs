//! MaxPr — the surprise probability
//! `Pr[f(X) < f(u) − τ | X_{O\T} = u_{O\T}]`.
//!
//! Cleaning `T` replaces the current values of `T` with fresh draws while
//! everything else stays at `u`; MaxPr maximizes the probability that the
//! refreshed query result lands more than `τ` *below* the pre-cleaning
//! value — i.e. that cleaning surfaces a counterargument.
//!
//! Engines:
//!
//! | engine | requirements | nature |
//! |---|---|---|
//! | [`gaussian::surprise_prob_gaussian`] | affine `f`, Gaussian errors (Lemma 3.3 closed form; both covariance semantics) | exact |
//! | [`enumerate::surprise_prob_exact`] | discrete instance, any query; `O(V^{\|T ∩ objs(f)\|})` | exact, small `T` |
//! | [`convolution::surprise_prob_convolution`] | discrete instance, affine `f` | deterministic, binned |
//! | [`monte_carlo::surprise_prob_mc`] | anything | sampling |

pub mod convolution;
pub mod enumerate;
pub mod gaussian;
pub mod monte_carlo;

pub use convolution::surprise_prob_convolution;
pub use enumerate::surprise_prob_exact;
pub use gaussian::surprise_prob_gaussian;
pub use monte_carlo::surprise_prob_mc;
