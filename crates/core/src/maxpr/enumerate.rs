//! Exact surprise probability by enumerating the cleaned scope.

use crate::instance::Instance;
use fc_claims::QueryFunction;

/// Default cap on the enumerated outcome count.
pub const DEFAULT_ENUMERATION_LIMIT: usize = 4_000_000;

/// Computes `Pr[f(X) < f(u) − τ | X_{O\T} = u_{O\T}]` exactly by
/// enumerating every outcome of `T ∩ objs(f)` (everything else stays at
/// the current values). Returns `None` when the outcome space exceeds
/// `limit` — callers should fall back to the convolution or Monte Carlo
/// engines.
pub fn surprise_prob_exact(
    instance: &Instance,
    query: &dyn QueryFunction,
    cleaned: &[usize],
    tau: f64,
    limit: Option<usize>,
) -> Option<f64> {
    let limit = limit.unwrap_or(DEFAULT_ENUMERATION_LIMIT);
    let scope = query.objects();
    let cleaned_scope: Vec<usize> = scope
        .iter()
        .copied()
        .filter(|i| cleaned.contains(i))
        .collect();
    let joint = instance.joint();
    if joint.scope_size(&cleaned_scope) > limit {
        return None;
    }
    let mut values = instance.current().to_vec();
    let baseline = query.eval(&values);
    let threshold = baseline - tau;
    let mut p = 0.0;
    joint.for_each_outcome(&cleaned_scope, |vals, prob| {
        for (pos, &obj) in cleaned_scope.iter().enumerate() {
            values[obj] = vals[pos];
        }
        if query.eval(&values) < threshold {
            p += prob;
        }
    });
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_claims::{BiasQuery, ClaimSet, Direction, LinearClaim};
    use fc_uncertain::DiscreteDist;

    fn example5() -> (Instance, BiasQuery) {
        let inst = Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap(),
                DiscreteDist::uniform_over(&[1.0 / 3.0, 1.0, 5.0 / 3.0]).unwrap(),
            ],
            vec![1.0, 1.0],
            vec![1, 1],
        )
        .unwrap();
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![LinearClaim::window_sum(0, 2).unwrap()],
            vec![1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        // bias = X1 + X2 − 2; f(u) = 0; target f < −τ ⇔ X1+X2 < 2 − τ.
        let q = BiasQuery::new(cs, 2.0);
        (inst, q)
    }

    #[test]
    fn example5_probabilities() {
        // Example 5 with τ = 7/12: X1+X2 < 17/12.
        let (inst, q) = example5();
        let tau = 7.0 / 12.0;
        let p1 = surprise_prob_exact(&inst, &q, &[0], tau, None).unwrap();
        assert!((p1 - 0.2).abs() < 1e-12, "clean X1: {p1}");
        let p2 = surprise_prob_exact(&inst, &q, &[1], tau, None).unwrap();
        assert!((p2 - 1.0 / 3.0).abs() < 1e-12, "clean X2: {p2}");
        // MaxPr prefers X2 — the opposite of MinVar's choice (Example 5).
        assert!(p2 > p1);
    }

    #[test]
    fn empty_selection_is_zero() {
        let (inst, q) = example5();
        let p = surprise_prob_exact(&inst, &q, &[], 0.1, None).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn limit_triggers_fallback() {
        let (inst, q) = example5();
        assert!(surprise_prob_exact(&inst, &q, &[0, 1], 0.1, Some(10)).is_none());
    }

    #[test]
    fn zero_tau_counts_strict_decreases() {
        let (inst, q) = example5();
        // τ = 0: Pr[X1 + X2 < 2 | X2 = 1] = Pr[X1 < 1] = 2/5.
        let p = surprise_prob_exact(&inst, &q, &[0], 0.0, None).unwrap();
        assert!((p - 0.4).abs() < 1e-12);
    }
}
