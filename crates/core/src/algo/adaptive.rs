//! Adaptive (sequential) cleaning for MaxPr — the §6 future-work
//! extension: "instead of making all choices upfront, an algorithm can
//! adapt its data cleaning actions to the outcome of its earlier
//! actions, which is particularly useful to MaxPr."
//!
//! The policy below cleans one object at a time. After each cleaning the
//! revealed true value replaces the current value, the remaining
//! deviation target is re-derived, and the next object is chosen to
//! maximize the one-step surprise probability. The simulation stops as
//! soon as the surprise threshold is met (a counterargument exists) or
//! no affordable candidate can still help.

use crate::budget::Budget;
use crate::instance::Instance;
use crate::maxpr::convolution::surprise_prob_convolution;
use crate::selection::Selection;
use crate::{CoreError, Result};
use fc_claims::QueryFunction;

/// Result of an adaptive MaxPr simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOutcome {
    /// Objects cleaned, in cleaning order.
    pub order: Vec<usize>,
    /// The final selection (same objects as `order`).
    pub selection: Selection,
    /// Whether the surprise target `f(final) < f(u) − τ` was reached.
    pub surprised: bool,
    /// The query value on the final (partially revealed) database.
    pub final_value: f64,
}

/// Simulates the adaptive policy against hidden ground-truth values.
///
/// `truth[i]` is the value revealed when object `i` is cleaned. The
/// query must be affine (the one-step probabilities use the convolution
/// engine).
pub fn adaptive_max_pr_simulate(
    instance: &Instance,
    query: &dyn QueryFunction,
    budget: Budget,
    tau: f64,
    truth: &[f64],
) -> Result<AdaptiveOutcome> {
    let n = instance.len();
    if truth.len() != n {
        return Err(CoreError::LengthMismatch {
            what: "truth values",
            expected: n,
            got: truth.len(),
        });
    }
    let (weights, _) = query.as_affine(n).ok_or(CoreError::NotAffine)?;
    let baseline = query.eval(instance.current());
    let target = baseline - tau;

    let mut working = instance.clone();
    let mut order = Vec::new();
    let mut sel = Selection::empty();
    loop {
        let value_now = query.eval(working.current());
        if value_now < target {
            return Ok(AdaptiveOutcome {
                selection: sel,
                order,
                surprised: true,
                final_value: value_now,
            });
        }
        // Pick the affordable candidate maximizing, lexicographically:
        // (1) the one-step probability of reaching the *original* target,
        // (2) the expected decrease of the query, (3) the variance it
        // injects. The later criteria keep the policy moving when no
        // single step can reach the target yet (a purely myopic policy
        // would freeze on workloads where the surprise needs several
        // cleanings to accumulate).
        let residual_tau = value_now - target;
        let mut best: Option<(usize, (f64, f64, f64))> = None;
        for (i, &wi) in weights.iter().enumerate() {
            if sel.contains(i) || wi == 0.0 {
                continue;
            }
            if !budget.fits(sel.cost(), working.cost(i)) {
                continue;
            }
            let p = surprise_prob_convolution(&working, query, &[i], residual_tau, None)?;
            let d = working.dist(i);
            let expected_drop = wi * (working.current()[i] - d.mean());
            let injected_var = wi * wi * d.variance();
            let score = (p, expected_drop, injected_var);
            let helps = p > 0.0 || expected_drop > 0.0 || injected_var > 0.0;
            if !helps {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, bs)) => (score.0, score.1, score.2) > (bs.0, bs.1, bs.2),
            };
            if better {
                best = Some((i, score));
            }
        }
        let Some((obj, _)) = best else {
            let final_value = query.eval(working.current());
            return Ok(AdaptiveOutcome {
                selection: sel,
                order,
                surprised: final_value < target,
                final_value,
            });
        };
        // Clean: reveal the truth and pin the object there.
        let mut current = working.current().to_vec();
        current[obj] = truth[obj];
        let mut dists: Vec<fc_uncertain::DiscreteDist> = working.joint().dists().to_vec();
        dists[obj] = fc_uncertain::DiscreteDist::point(truth[obj]);
        let costs = working.costs().to_vec();
        let cost_obj = working.cost(obj);
        working = Instance::new(dists, current, costs)?;
        sel.insert(obj, cost_obj);
        order.push(obj);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_claims::{BiasQuery, ClaimSet, Direction, LinearClaim};
    use fc_uncertain::DiscreteDist;

    fn workload() -> (Instance, BiasQuery, Vec<f64>) {
        // Four objects around 10; truth pushes two of them well below.
        let dists: Vec<DiscreteDist> = (0..4)
            .map(|_| DiscreteDist::uniform_over(&[6.0, 8.0, 10.0, 12.0]).unwrap())
            .collect();
        let inst = Instance::new(dists, vec![10.0; 4], vec![1; 4]).unwrap();
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 4).unwrap(),
            vec![LinearClaim::window_sum(0, 4).unwrap()],
            vec![1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let theta = 40.0;
        let q = BiasQuery::new(cs, theta);
        let truth = vec![6.0, 10.0, 6.0, 10.0];
        (inst, q, truth)
    }

    #[test]
    fn finds_surprise_without_exhausting_budget() {
        let (inst, q, truth) = workload();
        // Need the sum to drop by more than 5 from 40: truth offers −8.
        let out = adaptive_max_pr_simulate(&inst, &q, Budget::absolute(4), 5.0, &truth).unwrap();
        assert!(out.surprised, "outcome: {out:?}");
        assert!(out.final_value < -5.0 + 1e-12); // bias scale: f = sum − 40
                                                 // Adaptivity should stop at or before cleaning everything.
        assert!(out.order.len() <= 4);
    }

    #[test]
    fn stops_early_when_target_unreachable() {
        let (inst, q, _) = workload();
        // Truth equal to current values: no surprise possible; τ big.
        let truth = vec![10.0; 4];
        let out = adaptive_max_pr_simulate(&inst, &q, Budget::absolute(4), 30.0, &truth).unwrap();
        assert!(!out.surprised);
    }

    #[test]
    fn truth_length_validated() {
        let (inst, q, _) = workload();
        assert!(matches!(
            adaptive_max_pr_simulate(&inst, &q, Budget::absolute(1), 1.0, &[1.0]),
            Err(CoreError::LengthMismatch { .. })
        ));
    }
}
