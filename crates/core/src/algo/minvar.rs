//! `GreedyMinVar` and the knapsack `Optimum` for MinVar.

use crate::algo::greedy::{
    greedy_exhaustive, greedy_incremental, greedy_incremental_resumed, greedy_static, GreedyConfig,
    IncrementalOracle, SweepEngine,
};
use crate::algo::knapsack::max_knapsack_dp;
use crate::budget::Budget;
use crate::ev::gaussian::MvnSemantics;
use crate::ev::modular::{modular_benefits, modular_benefits_gaussian};
use crate::ev::scoped::{EvState, ScopedEv};
use crate::instance::{GaussianInstance, Instance};
use crate::selection::Selection;
use crate::Result;
use fc_claims::{DecomposableQuery, QueryFunction};

/// Benefit oracle backed by the scoped Theorem 3.8 engine with
/// incremental state — benefits are exact objective deltas
/// `EV(T) − EV(T ∪ {i})`.
struct ScopedOracle<'e, 'a, Q: DecomposableQuery + ?Sized> {
    eng: &'e ScopedEv<'a, Q>,
    st: EvState,
}

impl<Q: DecomposableQuery + ?Sized> IncrementalOracle for ScopedOracle<'_, '_, Q> {
    fn benefit(&mut self, candidate: usize) -> f64 {
        self.eng.delta(&self.st, candidate)
    }
    fn commit(&mut self, obj: usize) {
        self.eng.apply(&mut self.st, obj);
    }
    fn affected(&self, obj: usize) -> Vec<usize> {
        self.eng.affected_by(obj)
    }
    fn note_memoized_benefit(&mut self) {
        // A memo hit replaces exactly one `delta` evaluation; count it
        // so resumed plans report identical diagnostics.
        self.eng.count_cached_eval();
    }
}

/// `GreedyMinVar` (§3.1): the benefit of each candidate is its actual
/// marginal reduction of `EV`, per unit cost.
///
/// Fast paths:
/// * affine query ⇒ Lemma 3.1 modular benefits, single sort
///   (`O(n(t + log n))`);
/// * otherwise ⇒ scoped Theorem 3.8 engine + versioned-heap incremental
///   greedy, exact via claim-scope locality. (Benefits *grow* as the
///   chosen set grows — Lemma 3.5's reversed-sense submodularity — so a
///   classic lazy heap would be unsound here.)
pub fn greedy_min_var<Q: DecomposableQuery + ?Sized>(
    instance: &Instance,
    query: &Q,
    budget: Budget,
) -> Selection {
    if let Ok(benefits) = modular_benefits(instance, query) {
        return greedy_static(&benefits, instance.costs(), budget, GreedyConfig::default());
    }
    let eng = ScopedEv::new(instance, query);
    greedy_min_var_with_engine(instance, &eng, budget)
}

/// `GreedyMinVar` reusing a prebuilt scoped engine (lets callers amortize
/// the engine across budget sweeps).
pub fn greedy_min_var_with_engine<Q: DecomposableQuery + ?Sized>(
    instance: &Instance,
    eng: &ScopedEv<'_, Q>,
    budget: Budget,
) -> Selection {
    let candidates = eng.relevant_objects();
    let mut oracle = ScopedOracle {
        eng,
        st: eng.initial_state(),
    };
    greedy_incremental(
        &candidates,
        instance.costs(),
        budget,
        &mut oracle,
        GreedyConfig::default(),
    )
}

/// [`greedy_min_var_with_engine`] with sweep-to-sweep resumption: the
/// [`SweepEngine`] carries the previous budget point's commit
/// trajectory and benefit memo, so adjacent points replay heap
/// maintenance instead of re-evaluating the scoped engine. Selections
/// (and evaluation diagnostics) are byte-identical to independent
/// solves at every budget, in any sweep order.
pub fn greedy_min_var_resumed<Q: DecomposableQuery + ?Sized>(
    instance: &Instance,
    eng: &ScopedEv<'_, Q>,
    budget: Budget,
    sweep: &mut SweepEngine,
) -> Selection {
    let candidates = eng.relevant_objects();
    let mut oracle = ScopedOracle {
        eng,
        st: eng.initial_state(),
    };
    greedy_incremental_resumed(
        &candidates,
        instance.costs(),
        budget,
        &mut oracle,
        GreedyConfig::default(),
        sweep,
    )
}

/// The ablation variant: a straightforward `O(n²γ)` greedy that
/// recomputes every candidate's `EV` delta from scratch each iteration
/// (no incremental state, no heap maintenance). Kept for the
/// `ablate_incremental_ev` benchmark and as a correctness cross-check.
pub fn greedy_min_var_from_scratch<Q: DecomposableQuery + ?Sized>(
    instance: &Instance,
    query: &Q,
    budget: Budget,
) -> Selection {
    let eng = ScopedEv::new(instance, query);
    let candidates = eng.relevant_objects();
    greedy_exhaustive(
        &candidates,
        instance.costs(),
        budget,
        |sel, i| {
            let mut with: Vec<usize> = sel.objects().to_vec();
            let base = eng.ev_of(&with);
            with.push(i);
            base - eng.ev_of(&with)
        },
        GreedyConfig::default(),
    )
}

/// `Optimum` (Lemma 3.2): the exact pseudo-polynomial solution for
/// modular (affine-query) MinVar, via the max-knapsack DP on the
/// benefits. Errors with [`CoreError::NotAffine`](crate::CoreError::NotAffine) otherwise.
pub fn knapsack_optimum_min_var(
    instance: &Instance,
    query: &dyn QueryFunction,
    budget: Budget,
) -> Result<Selection> {
    let benefits = modular_benefits(instance, query)?;
    let (chosen, _) = max_knapsack_dp(&benefits, instance.costs(), budget.get());
    Ok(Selection::from_objects(chosen, instance.costs()))
}

/// `GreedyMinVar` over a Gaussian instance with a linear query: modular
/// benefits `wᵢ = aᵢ²σᵢ²` (exact for diagonal covariance; the paper's
/// independence-assuming algorithm when correlations exist but are
/// unknown to it).
pub fn greedy_min_var_gaussian(
    instance: &GaussianInstance,
    weights: &[f64],
    budget: Budget,
) -> Selection {
    let benefits = modular_benefits_gaussian(instance, weights);
    greedy_static(&benefits, instance.costs(), budget, GreedyConfig::default())
}

/// `Optimum` over a Gaussian instance with a linear query (same caveats
/// as [`greedy_min_var_gaussian`]).
pub fn knapsack_optimum_min_var_gaussian(
    instance: &GaussianInstance,
    weights: &[f64],
    budget: Budget,
) -> Selection {
    let benefits = modular_benefits_gaussian(instance, weights);
    let (chosen, _) = max_knapsack_dp(&benefits, instance.costs(), budget.get());
    Selection::from_objects(chosen, instance.costs())
}

/// Dependency-*aware* exact `EV` objective value for a cleaned set over a
/// Gaussian instance (conditional semantics) — the quantity the §4.5
/// figures plot.
pub fn gaussian_ev_conditional(
    instance: &GaussianInstance,
    weights: &[f64],
    selection: &Selection,
) -> Result<f64> {
    crate::ev::gaussian::ev_gaussian_linear(
        instance,
        weights,
        selection.objects(),
        MvnSemantics::Conditional,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_claims::query::IndicatorSense;
    use fc_claims::{
        BiasQuery, ClaimSet, Direction, DupQuery, LinearClaim, ThresholdIndicatorQuery,
    };
    use fc_uncertain::DiscreteDist;

    fn example6_instance() -> Instance {
        Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap(),
                DiscreteDist::uniform_over(&[1.0 / 3.0, 1.0, 5.0 / 3.0]).unwrap(),
            ],
            vec![1.0, 1.0],
            vec![1, 1],
        )
        .unwrap()
    }

    #[test]
    fn example6_greedy_min_var_picks_x2() {
        // GreedyMinVar must clean X2 (improvement 0.0355 > 0.0266), the
        // opposite of GreedyNaive's variance-based choice.
        let inst = example6_instance();
        let q = ThresholdIndicatorQuery::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            11.0 / 12.0,
            IndicatorSense::Below,
        );
        let sel = greedy_min_var(&inst, &q, Budget::absolute(1));
        assert_eq!(sel.objects(), &[1]);
        // The from-scratch ablation agrees.
        let sel2 = greedy_min_var_from_scratch(&inst, &q, Budget::absolute(1));
        assert_eq!(sel2.objects(), &[1]);
    }

    #[test]
    fn example5_modular_picks_x1() {
        // For the affine bias query, MinVar cleans X1 (larger variance).
        let inst = example6_instance();
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![LinearClaim::window_sum(0, 2).unwrap()],
            vec![1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let q = BiasQuery::new(cs, 2.0);
        let sel = greedy_min_var(&inst, &q, Budget::absolute(1));
        assert_eq!(sel.objects(), &[0]);
        let opt = knapsack_optimum_min_var(&inst, &q, Budget::absolute(1)).unwrap();
        assert_eq!(opt.objects(), &[0]);
    }

    #[test]
    fn incremental_matches_from_scratch_on_overlapping_claims() {
        let dists = vec![
            DiscreteDist::uniform_over(&[0.0, 3.0, 7.0]).unwrap(),
            DiscreteDist::uniform_over(&[1.0, 2.0]).unwrap(),
            DiscreteDist::uniform_over(&[0.0, 5.0, 9.0]).unwrap(),
            DiscreteDist::uniform_over(&[2.0, 4.0]).unwrap(),
            DiscreteDist::uniform_over(&[0.0, 8.0]).unwrap(),
        ];
        let inst = Instance::new(dists, vec![3.0; 5], vec![2, 1, 3, 1, 2]).unwrap();
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![
                LinearClaim::window_sum(0, 2).unwrap(),
                LinearClaim::window_sum(1, 2).unwrap(),
                LinearClaim::window_sum(2, 2).unwrap(),
                LinearClaim::window_sum(3, 2).unwrap(),
            ],
            vec![1.0; 4],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let q = DupQuery::new(cs, 8.0);
        for budget in [1u64, 3, 5, 9] {
            let a = greedy_min_var(&inst, &q, Budget::absolute(budget));
            let b = greedy_min_var_from_scratch(&inst, &q, Budget::absolute(budget));
            assert_eq!(a, b, "budget {budget}");
        }
    }

    #[test]
    fn gaussian_modular_paths_agree() {
        let g = GaussianInstance::centered_independent(
            vec![10.0, 20.0, 30.0, 40.0],
            &[4.0, 1.0, 3.0, 2.0],
            vec![2, 1, 2, 1],
        )
        .unwrap();
        let w = [1.0, 1.0, -1.0, 1.0];
        // With enough budget both clean everything relevant.
        let sel = greedy_min_var_gaussian(&g, &w, Budget::absolute(6));
        let opt = knapsack_optimum_min_var_gaussian(&g, &w, Budget::absolute(6));
        assert_eq!(sel.objects(), &[0, 1, 2, 3]);
        assert_eq!(opt.objects(), &[0, 1, 2, 3]);
        // Tight budget: optimum ≥ greedy in achieved benefit.
        let benefits = modular_benefits_gaussian(&g, &w);
        for b in [1u64, 2, 3, 4] {
            let gsel = greedy_min_var_gaussian(&g, &w, Budget::absolute(b));
            let osel = knapsack_optimum_min_var_gaussian(&g, &w, Budget::absolute(b));
            let gval: f64 = gsel.objects().iter().map(|&i| benefits[i]).sum();
            let oval: f64 = osel.objects().iter().map(|&i| benefits[i]).sum();
            assert!(oval >= gval - 1e-12, "budget {b}");
            assert!(oval <= 2.0 * gval + 1e-12, "2-approx, budget {b}");
        }
    }
}
