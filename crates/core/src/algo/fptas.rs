//! Fully polynomial-time approximation schemes for the knapsack
//! reductions (Lemmas 3.2/3.3, following Ibarra–Kim profit scaling and
//! the Bentz–Le Bodic note the paper cites for the minimum variant).
//!
//! * [`fptas_max_knapsack`] — (1−ε)-approximate maximum knapsack in
//!   `O(n³/ε)`: scale profits by `K = ε·v_max/n`, DP over scaled profit
//!   (`dp[p]` = min cost achieving scaled profit `p`), return the best
//!   affordable profit level.
//! * [`fptas_min_knapsack_cover`] — (1+ε)-approximate minimum knapsack
//!   cover: same DP shape over scaled *weights* (`dp[w]` = max coverage
//!   achievable with scaled weight `w`), return the smallest weight level
//!   whose coverage meets the requirement.

use crate::selection::Selection;

/// (1−ε)-approximation for maximum knapsack. Returns the selection and
/// its (unscaled) value.
pub fn fptas_max_knapsack(
    values: &[f64],
    costs: &[u64],
    capacity: u64,
    epsilon: f64,
) -> (Vec<usize>, f64) {
    let n = values.len();
    debug_assert_eq!(n, costs.len());
    assert!(epsilon > 0.0, "epsilon must be positive");
    let vmax = values
        .iter()
        .zip(costs)
        .filter(|&(_, &c)| c <= capacity)
        .map(|(&v, _)| v)
        .fold(0.0f64, f64::max);
    if vmax <= 0.0 {
        return (Vec::new(), 0.0);
    }
    let k = epsilon * vmax / n as f64;
    let scaled: Vec<usize> = values.iter().map(|&v| (v / k).floor() as usize).collect();
    let pmax: usize = scaled
        .iter()
        .zip(costs)
        .filter(|&(_, &c)| c <= capacity)
        .map(|(&s, _)| s)
        .sum();
    // dp[p] = min cost to achieve scaled profit exactly p; full per-item
    // table for unambiguous traceback.
    let row = pmax + 1;
    let mut dp = vec![u64::MAX; (n + 1) * row];
    dp[0] = 0;
    for i in 0..n {
        let (prev_all, cur_all) = dp.split_at_mut((i + 1) * row);
        let prev = &prev_all[i * row..];
        let cur = &mut cur_all[..row];
        let s = scaled[i];
        let c = costs[i];
        for p in 0..row {
            let mut best = prev[p];
            if p >= s && prev[p - s] != u64::MAX {
                let cand = prev[p - s].saturating_add(c);
                if cand < best {
                    best = cand;
                }
            }
            cur[p] = best;
        }
    }
    let best_p = (0..row)
        .rev()
        .find(|&p| dp[n * row + p] <= capacity)
        .unwrap_or(0);
    // Trace back.
    let mut chosen = Vec::new();
    let mut p = best_p;
    for i in (0..n).rev() {
        if dp[(i + 1) * row + p] < dp[i * row + p] {
            chosen.push(i);
            p -= scaled[i];
        }
    }
    chosen.reverse();
    let total: f64 = chosen.iter().map(|&i| values[i]).sum();
    (chosen, total)
}

/// (1+ε)-approximation for minimum knapsack cover: minimize `Σ weights`
/// subject to `Σ costs ≥ required`. Returns the chosen indices and their
/// weight. Falls back to all items when the requirement is unsatisfiable.
///
/// Uses the standard "guess the heaviest item of OPT" outer loop (as in
/// the Bentz–Le Bodic note the paper cites): for each guess `g`, only
/// items no heavier than `g` may be used, `g` is forced in, and weights
/// are scaled by `K = ε·w_g/n`. Since `OPT ≥ w_g` for the correct guess,
/// the additive rounding error `≤ ε·w_g ≤ ε·OPT`. `O(n⁴/ε)` overall.
pub fn fptas_min_knapsack_cover(
    weights: &[f64],
    costs: &[u64],
    required: u64,
    epsilon: f64,
) -> (Vec<usize>, f64) {
    let n = weights.len();
    debug_assert_eq!(n, costs.len());
    assert!(epsilon > 0.0, "epsilon must be positive");
    if required == 0 {
        return (Vec::new(), 0.0);
    }
    let total: u64 = costs.iter().sum();
    if total < required {
        return ((0..n).collect(), weights.iter().sum());
    }
    // Zero-weight items are free coverage: always take them.
    let free: Vec<usize> = (0..n).filter(|&i| weights[i] <= 0.0).collect();
    let free_cover: u64 = free.iter().map(|&i| costs[i]).sum();
    if free_cover >= required {
        return (free, 0.0);
    }
    let residual = required - free_cover;
    let mut best: Option<(Vec<usize>, f64)> = None;
    for g in 0..n {
        let wg = weights[g];
        if wg <= 0.0 {
            continue;
        }
        // Items usable under guess g: strictly lighter, or equal weight
        // with index ≤ g (canonical tie-break), and positive weight.
        let allowed: Vec<usize> = (0..n)
            .filter(|&i| {
                i != g && weights[i] > 0.0 && (weights[i] < wg || (weights[i] == wg && i < g))
            })
            .collect();
        let k = epsilon * wg / n as f64;
        let scaled: Vec<usize> = allowed
            .iter()
            .map(|&i| (weights[i] / k).ceil() as usize)
            .collect();
        let need = residual.saturating_sub(costs[g]);
        let (sub, _) = scaled_cover_dp(&scaled, &allowed, costs, need);
        let Some(mut chosen) = sub else { continue };
        chosen.push(g);
        chosen.extend(free.iter().copied());
        chosen.sort_unstable();
        let w: f64 = chosen.iter().map(|&i| weights[i]).sum();
        if best.as_ref().is_none_or(|(_, bw)| w < *bw) {
            best = Some((chosen, w));
        }
    }
    best.unwrap_or_else(|| ((0..n).collect(), weights.iter().sum()))
}

/// Inner DP for the cover FPTAS: minimize total scaled weight subject to
/// covering `need` with the `allowed` items. Returns the chosen original
/// indices (or `None` if even all allowed items cannot cover `need`).
fn scaled_cover_dp(
    scaled: &[usize],
    allowed: &[usize],
    costs: &[u64],
    need: u64,
) -> (Option<Vec<usize>>, usize) {
    if need == 0 {
        return (Some(Vec::new()), 0);
    }
    let cover: u64 = allowed.iter().map(|&i| costs[i]).sum();
    if cover < need {
        return (None, 0);
    }
    let m = allowed.len();
    let wtot: usize = scaled.iter().sum();
    let row = wtot + 1;
    // dp[w] = max coverage (capped) using scaled weight exactly ≤ w.
    let mut dp = vec![0u64; (m + 1) * row];
    for i in 0..m {
        let (prev_all, cur_all) = dp.split_at_mut((i + 1) * row);
        let prev = &prev_all[i * row..];
        let cur = &mut cur_all[..row];
        let s = scaled[i];
        let c = costs[allowed[i]];
        for w in 0..row {
            let mut bestv = prev[w];
            if w >= s {
                let cand = (prev[w - s] + c).min(need);
                if cand > bestv {
                    bestv = cand;
                }
            }
            cur[w] = bestv;
        }
    }
    let Some(best_w) = (0..row).find(|&w| dp[m * row + w] >= need) else {
        return (None, 0);
    };
    let mut chosen = Vec::new();
    let mut w = best_w;
    for i in (0..m).rev() {
        if dp[(i + 1) * row + w] > dp[i * row + w] {
            chosen.push(allowed[i]);
            w -= scaled[i];
        }
    }
    chosen.reverse();
    (Some(chosen), best_w)
}

/// Convenience: the FPTAS max-knapsack result as a [`Selection`].
pub fn fptas_max_knapsack_selection(
    values: &[f64],
    costs: &[u64],
    capacity: u64,
    epsilon: f64,
) -> Selection {
    let (chosen, _) = fptas_max_knapsack(values, costs, capacity, epsilon);
    Selection::from_objects(chosen, costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::knapsack::{max_knapsack_dp, min_knapsack_cover_dp};
    use fc_uncertain::rng_from_seed;
    use rand::Rng;

    #[test]
    fn max_fptas_within_bound() {
        let mut rng = rng_from_seed(31);
        for trial in 0..20 {
            let n = 12;
            let values: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..50.0)).collect();
            let costs: Vec<u64> = (0..n).map(|_| rng.gen_range(1..20)).collect();
            let cap = rng.gen_range(10..80);
            let (_, opt) = max_knapsack_dp(&values, &costs, cap);
            for eps in [0.5, 0.1] {
                let (chosen, approx) = fptas_max_knapsack(&values, &costs, cap, eps);
                let cost: u64 = chosen.iter().map(|&i| costs[i]).sum();
                assert!(cost <= cap, "trial {trial}: cost {cost} > cap {cap}");
                assert!(
                    approx >= (1.0 - eps) * opt - 1e-9,
                    "trial {trial} eps {eps}: {approx} < (1−ε)·{opt}"
                );
            }
        }
    }

    #[test]
    fn min_cover_fptas_within_bound() {
        let mut rng = rng_from_seed(77);
        for trial in 0..20 {
            let n = 10;
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..30.0)).collect();
            let costs: Vec<u64> = (0..n).map(|_| rng.gen_range(1..15)).collect();
            let total: u64 = costs.iter().sum();
            let required = rng.gen_range(1..=total);
            let (_, opt) = min_knapsack_cover_dp(&weights, &costs, required);
            for eps in [0.5, 0.1] {
                let (chosen, approx) = fptas_min_knapsack_cover(&weights, &costs, required, eps);
                let cov: u64 = chosen.iter().map(|&i| costs[i]).sum();
                assert!(cov >= required, "trial {trial}: cover {cov} < {required}");
                assert!(
                    approx <= (1.0 + eps) * opt + 1e-9,
                    "trial {trial} eps {eps}: {approx} > (1+ε)·{opt}"
                );
            }
        }
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(
            fptas_max_knapsack(&[1.0], &[5], 1, 0.1).0,
            Vec::<usize>::new()
        );
        assert_eq!(
            fptas_min_knapsack_cover(&[1.0, 1.0], &[1, 1], 0, 0.1).0,
            Vec::<usize>::new()
        );
        // Unsatisfiable cover takes everything.
        assert_eq!(
            fptas_min_knapsack_cover(&[1.0, 1.0], &[1, 1], 10, 0.1).0,
            vec![0, 1]
        );
    }
}
