//! Algorithms for MinVar and MaxPr.
//!
//! * [`greedy`] — the Algorithm 1 template in three drivers: static
//!   benefits, versioned-heap incremental (exact under local benefit
//!   updates — the scoped MinVar case), and exhaustive re-evaluation
//!   (MaxPr, dependency-aware objectives);
//! * [`baselines`] — `Random`, `GreedyNaive`, `GreedyNaiveCostBlind`;
//! * [`minvar`] — `GreedyMinVar` (modular fast path / scoped incremental /
//!   from-scratch ablation) and the knapsack `Optimum`;
//! * [`maxpr_algo`] — `GreedyMaxPr` for Gaussian and discrete instances;
//! * [`knapsack`] — exact pseudo-polynomial DPs (max knapsack, min
//!   knapsack cover) and the greedy 2-approximation;
//! * [`fptas`] — the (1+ε) approximation schemes of Lemmas 3.2/3.3;
//! * [`submodular`] — `Best`: Theorem 3.7 via Iyer–Bilmes-style
//!   majorization–minimization with exact min-knapsack-cover subproblems;
//! * [`bicriteria`] — the budget-relaxed bi-criteria variant (§3.3);
//! * [`brute`] — exhaustive `OPT` for small instances (§4.5 yardstick);
//! * [`dep`] — `GreedyDep`: covariance-aware greedy over the Gaussian
//!   posterior (§4.5);
//! * [`adaptive`] — sequential (adaptive) cleaning for MaxPr (§6 future
//!   work, implemented as an extension);
//! * [`partial`] — partial cleaning: cleaning shrinks uncertainty by a
//!   residual factor instead of eliminating it (§6 future work,
//!   implemented as an extension).

pub mod adaptive;
pub mod baselines;
pub mod bicriteria;
pub mod brute;
pub mod dep;
pub mod fptas;
pub mod greedy;
pub mod knapsack;
pub mod maxpr_algo;
pub mod minvar;
pub mod partial;
pub mod submodular;

pub use adaptive::{adaptive_max_pr_simulate, AdaptiveOutcome};
pub use baselines::{greedy_naive, greedy_naive_cost_blind, random_select};
pub use bicriteria::bicriteria_min_var;
pub use brute::brute_force_best;
pub use dep::{greedy_dep, opt_gaussian};
pub use fptas::{fptas_max_knapsack, fptas_min_knapsack_cover};
pub use greedy::{
    greedy_exhaustive, greedy_incremental, greedy_incremental_resumed, greedy_static, GreedyConfig,
    IncrementalOracle, SweepEngine,
};
pub use knapsack::{greedy_knapsack, max_knapsack_dp, min_knapsack_cover_dp};
pub use maxpr_algo::{greedy_max_pr, greedy_max_pr_discrete, max_pr_optimum_centered};
pub use minvar::{
    gaussian_ev_conditional, greedy_min_var, greedy_min_var_from_scratch, greedy_min_var_gaussian,
    greedy_min_var_resumed, greedy_min_var_with_engine, knapsack_optimum_min_var,
    knapsack_optimum_min_var_gaussian,
};
pub use partial::{
    greedy_min_var_partial, optimum_min_var_partial, partial_modular_benefits, shrink_cleaned,
    ResidualModel,
};
pub use submodular::{best_min_var, best_min_var_with_engine, BestConfig};
