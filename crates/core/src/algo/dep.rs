//! Dependency-aware algorithms for correlated Gaussian errors (§4.5).
//!
//! `GreedyDep` is `GreedyMinVar` "given the dependency knowledge": its
//! benefit for a candidate is the exact reduction of the *conditional*
//! (Schur-complement) residual variance of the linear query. `OPT`
//! exhaustively searches all affordable subsets under the same objective.

use crate::algo::brute::brute_force_best;
use crate::algo::greedy::{greedy_exhaustive, GreedyConfig};
use crate::budget::Budget;
use crate::ev::gaussian::{ev_gaussian_linear, MvnSemantics};
use crate::instance::GaussianInstance;
use crate::selection::Selection;
use crate::Result;

/// `GreedyDep`: covariance-aware greedy over the Gaussian posterior.
pub fn greedy_dep(instance: &GaussianInstance, weights: &[f64], budget: Budget) -> Selection {
    let candidates: Vec<usize> = (0..instance.len()).collect();
    greedy_exhaustive(
        &candidates,
        instance.costs(),
        budget,
        |sel, i| {
            let base =
                ev_gaussian_linear(instance, weights, sel.objects(), MvnSemantics::Conditional)
                    .unwrap_or(f64::INFINITY);
            let mut with: Vec<usize> = sel.objects().to_vec();
            with.push(i);
            let after = ev_gaussian_linear(instance, weights, &with, MvnSemantics::Conditional)
                .unwrap_or(f64::INFINITY);
            base - after
        },
        GreedyConfig::default(),
    )
}

/// `OPT`: exhaustive search under the conditional-EV objective — the
/// yardstick of Fig. 11 ("has full knowledge of data dependency,
/// exhaustively considers all possible subsets").
pub fn opt_gaussian(
    instance: &GaussianInstance,
    weights: &[f64],
    budget: Budget,
) -> Result<Selection> {
    brute_force_best(
        instance.costs(),
        budget,
        |sel| {
            ev_gaussian_linear(instance, weights, sel.objects(), MvnSemantics::Conditional)
                .unwrap_or(f64::INFINITY)
        },
        true,
        crate::algo::brute::BRUTE_FORCE_MAX_N,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_uncertain::MultivariateNormal;

    fn correlated_instance(gamma: f64) -> GaussianInstance {
        let sds = [3.0, 1.0, 2.0, 1.5];
        let mvn = MultivariateNormal::with_geometric_dependency(vec![0.0; 4], &sds, gamma).unwrap();
        GaussianInstance::with_mvn(mvn, vec![0.0; 4], vec![2, 1, 2, 1]).unwrap()
    }

    #[test]
    fn greedy_dep_matches_opt_on_independent_data() {
        let inst = correlated_instance(0.0);
        let w = [1.0, 1.0, 1.0, 1.0];
        for b in [1u64, 2, 3, 4] {
            let g = greedy_dep(&inst, &w, Budget::absolute(b));
            let o = opt_gaussian(&inst, &w, Budget::absolute(b)).unwrap();
            let ev_g =
                ev_gaussian_linear(&inst, &w, g.objects(), MvnSemantics::Conditional).unwrap();
            let ev_o =
                ev_gaussian_linear(&inst, &w, o.objects(), MvnSemantics::Conditional).unwrap();
            // Greedy may differ from OPT but never by much here; at
            // minimum it must be within the 2-approx sandwich.
            assert!(ev_g <= 2.0 * ev_o + 1e-9, "budget {b}: {ev_g} vs {ev_o}");
        }
    }

    #[test]
    fn dependency_knowledge_helps_on_redundant_pairs() {
        // Objects 0 and 1 are near-duplicates (ρ = 0.99): cleaning one
        // all but resolves the other. The blind modular greedy wastes its
        // budget cleaning both; the dependency-aware greedy cleans one of
        // them plus the independent object 2.
        let mut cov = fc_uncertain::SymMatrix::zeros(3);
        cov.set(0, 0, 4.0);
        cov.set(1, 1, 4.0);
        cov.set(0, 1, 0.99 * 4.0);
        cov.set(2, 2, 2.25);
        let mvn = MultivariateNormal::new(vec![0.0; 3], cov).unwrap();
        let inst = GaussianInstance::with_mvn(mvn, vec![0.0; 3], vec![1, 1, 1]).unwrap();
        let w = [1.0, 1.0, 1.0];
        let budget = Budget::absolute(2);
        let dep = greedy_dep(&inst, &w, budget);
        let blind = crate::algo::minvar::greedy_min_var_gaussian(&inst, &w, budget);
        assert_eq!(blind.objects(), &[0, 1], "blind doubles up on the pair");
        let ev_dep =
            ev_gaussian_linear(&inst, &w, dep.objects(), MvnSemantics::Conditional).unwrap();
        let ev_blind =
            ev_gaussian_linear(&inst, &w, blind.objects(), MvnSemantics::Conditional).unwrap();
        assert!(
            ev_dep < 0.5 * ev_blind,
            "dep-aware {ev_dep} should crush blind {ev_blind} here"
        );
        // And it should match OPT on this tiny instance.
        let opt = opt_gaussian(&inst, &w, budget).unwrap();
        let ev_opt =
            ev_gaussian_linear(&inst, &w, opt.objects(), MvnSemantics::Conditional).unwrap();
        assert!((ev_dep - ev_opt).abs() < 1e-9);
    }

    #[test]
    fn greedy_dep_within_factor_of_opt_under_strong_correlation() {
        // No optimality guarantee exists for greedy under correlation;
        // sanity-check it stays within a small constant of OPT here.
        let inst = correlated_instance(0.9);
        let w = [1.0, 1.0, 1.0, 1.0];
        let budget = Budget::absolute(3);
        let dep = greedy_dep(&inst, &w, budget);
        let opt = opt_gaussian(&inst, &w, budget).unwrap();
        let ev_dep =
            ev_gaussian_linear(&inst, &w, dep.objects(), MvnSemantics::Conditional).unwrap();
        let ev_opt =
            ev_gaussian_linear(&inst, &w, opt.objects(), MvnSemantics::Conditional).unwrap();
        assert!(
            ev_dep <= 4.0 * ev_opt + 1e-9,
            "dep {ev_dep} too far above OPT {ev_opt}"
        );
    }

    #[test]
    fn opt_is_lower_bound_for_greedy_dep() {
        let inst = correlated_instance(0.7);
        let w = [1.0, -1.0, 1.0, -1.0];
        let budget = Budget::absolute(3);
        let g = greedy_dep(&inst, &w, budget);
        let o = opt_gaussian(&inst, &w, budget).unwrap();
        let ev_g = ev_gaussian_linear(&inst, &w, g.objects(), MvnSemantics::Conditional).unwrap();
        let ev_o = ev_gaussian_linear(&inst, &w, o.objects(), MvnSemantics::Conditional).unwrap();
        assert!(ev_o <= ev_g + 1e-12);
    }
}
