//! Bi-criteria approximation for MinVar (§3.3, after Svitkina–Fleischer
//! and Hayrapetyan et al.): trade budget slack for objective quality.
//!
//! For `0 < α < 1`, the returned set `T` satisfies
//! `c(T) ≤ C/(1−α)` — i.e. the budget may be exceeded by the slack
//! factor — in exchange for an `EV` guarantee of the form
//! `EV(T) ≤ EV(T*)/α` in the unit-cost setting the paper states it for.
//! Implementation: the scoped-engine greedy run with the inflated budget.

use crate::algo::minvar::greedy_min_var_with_engine;
use crate::budget::Budget;
use crate::ev::scoped::ScopedEv;
use crate::instance::Instance;
use crate::selection::Selection;
use fc_claims::DecomposableQuery;

/// Bi-criteria MinVar: greedy with budget inflated to `C/(1−α)`.
/// `alpha` is clamped to `(0, 0.95]` to keep the inflation bounded.
pub fn bicriteria_min_var<Q: DecomposableQuery + ?Sized>(
    instance: &Instance,
    query: &Q,
    budget: Budget,
    alpha: f64,
) -> Selection {
    let alpha = alpha.clamp(1e-6, 0.95);
    let inflated = (budget.get() as f64 / (1.0 - alpha)).floor() as u64;
    let eng = ScopedEv::new(instance, query);
    greedy_min_var_with_engine(instance, &eng, Budget::absolute(inflated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_claims::{ClaimSet, Direction, DupQuery, LinearClaim};
    use fc_uncertain::DiscreteDist;

    #[test]
    fn budget_slack_is_bounded() {
        let dists = vec![DiscreteDist::uniform_over(&[0.0, 4.0]).unwrap(); 6];
        let inst = Instance::new(dists, vec![2.0; 6], vec![1; 6]).unwrap();
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![
                LinearClaim::window_sum(0, 2).unwrap(),
                LinearClaim::window_sum(2, 2).unwrap(),
                LinearClaim::window_sum(4, 2).unwrap(),
            ],
            vec![1.0; 3],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let q = DupQuery::new(cs, 5.0);
        let budget = Budget::absolute(2);
        let sel = bicriteria_min_var(&inst, &q, budget, 0.5);
        assert!(sel.cost() <= 4, "α = 0.5 allows at most 2·C");
        // The relaxed run must do at least as well as the strict one.
        let strict = crate::algo::minvar::greedy_min_var(&inst, &q, budget);
        let eng = crate::ev::scoped::ScopedEv::new(&inst, &q);
        assert!(eng.ev_of(sel.objects()) <= eng.ev_of(strict.objects()) + 1e-12);
    }
}
