//! Exact pseudo-polynomial knapsack solvers (Lemmas 3.2/3.3).
//!
//! Modular MinVar is a *minimum knapsack* (choose what **not** to clean,
//! minimizing kept weight subject to a cost lower bound); modular MaxPr is
//! a *maximum knapsack*. Both DPs run in `O(n·C)` with integer costs.

use crate::algo::greedy::{greedy_static, GreedyConfig};
use crate::budget::Budget;
use crate::selection::Selection;

/// Maximum 0/1 knapsack by DP over capacity: maximize `Σ values[i]` with
/// `Σ costs[i] ≤ capacity`. Returns the chosen indices and their value.
#[allow(clippy::needless_range_loop)] // index math mirrors the DP recurrence
pub fn max_knapsack_dp(values: &[f64], costs: &[u64], capacity: u64) -> (Vec<usize>, f64) {
    let n = values.len();
    debug_assert_eq!(n, costs.len());
    let cap = capacity as usize;
    let row = cap + 1;
    // Full per-item table so the traceback is unambiguous:
    // dp[i][j] = best value using the first i items within capacity j.
    let mut dp = vec![0.0f64; (n + 1) * row];
    for i in 0..n {
        let c = costs[i] as usize;
        let v = values[i];
        let (prev, cur) = dp.split_at_mut((i + 1) * row);
        let prev = &prev[i * row..];
        let cur = &mut cur[..row];
        for j in 0..row {
            let skip = prev[j];
            cur[j] = if j >= c && c <= cap {
                skip.max(prev[j - c] + v)
            } else {
                skip
            };
        }
    }
    let mut chosen = Vec::new();
    let mut j = cap;
    for i in (0..n).rev() {
        let c = costs[i] as usize;
        // dp[i+1][j] > dp[i][j] can only come from taking item i, whose
        // value is then exactly dp[i][j−c] + v (no intermediate rounding).
        if j >= c && dp[(i + 1) * row + j] > dp[i * row + j] {
            chosen.push(i);
            j -= c;
        }
    }
    chosen.reverse();
    (chosen, dp[n * row + cap])
}

/// Minimum knapsack cover by DP: minimize `Σ weights[i]` subject to
/// `Σ costs[i] ≥ required`. Returns the chosen indices and their weight.
/// If the constraint is unsatisfiable even with all items, returns all
/// items.
#[allow(clippy::needless_range_loop)] // index math mirrors the DP recurrence
pub fn min_knapsack_cover_dp(weights: &[f64], costs: &[u64], required: u64) -> (Vec<usize>, f64) {
    let n = weights.len();
    debug_assert_eq!(n, costs.len());
    let req = required as usize;
    if req == 0 {
        return (Vec::new(), 0.0);
    }
    let total: u64 = costs.iter().sum();
    if total < required {
        let w = weights.iter().sum();
        return ((0..n).collect(), w);
    }
    // Two-row DP (each row derived fresh from the previous) with a parent
    // matrix: parent[i][t] = source coverage j when the *final* value of
    // dp_{i+1}[t] came from taking item i (coverage capped at req).
    const UNSET: usize = usize::MAX;
    let row = req + 1;
    let mut prev = vec![f64::INFINITY; row];
    prev[0] = 0.0;
    let mut cur = vec![f64::INFINITY; row];
    let mut parent = vec![UNSET; n * row];
    for i in 0..n {
        let c = costs[i] as usize;
        let w = weights[i];
        cur.copy_from_slice(&prev);
        for j in 0..row {
            if prev[j].is_finite() {
                let t = (j + c).min(req);
                let cand = prev[j] + w;
                if cand < cur[t] {
                    cur[t] = cand;
                    parent[i * row + t] = j;
                }
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    // Trace back from req across items in reverse order: parent[i][j] set
    // means dp_{i+1}[j]'s final value was produced by taking item i.
    let mut chosen = Vec::new();
    let mut j = req;
    for i in (0..n).rev() {
        let src = parent[i * row + j];
        if src != UNSET {
            chosen.push(i);
            j = src;
        }
        if j == 0 {
            break;
        }
    }
    chosen.reverse();
    let w = chosen.iter().map(|&i| weights[i]).sum();
    (chosen, w)
}

/// The greedy 2-approximation for maximum knapsack (ratio order plus the
/// best-single-item fix-up) — used as the `GreedyMinVar`/`GreedyMaxPr`
/// fast path for modular objectives.
pub fn greedy_knapsack(values: &[f64], costs: &[u64], capacity: u64) -> Selection {
    greedy_static(
        values,
        costs,
        Budget::absolute(capacity),
        GreedyConfig::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_knapsack_classic() {
        let values = [60.0, 100.0, 120.0];
        let costs = [10, 20, 30];
        let (chosen, v) = max_knapsack_dp(&values, &costs, 50);
        assert_eq!(chosen, vec![1, 2]);
        assert!((v - 220.0).abs() < 1e-12);
    }

    #[test]
    fn max_knapsack_zero_capacity() {
        let (chosen, v) = max_knapsack_dp(&[5.0], &[1], 0);
        assert!(chosen.is_empty());
        assert_eq!(v, 0.0);
    }

    #[test]
    fn greedy_within_half_of_dp() {
        // Random-ish instance where greedy ≠ optimal but ≥ OPT/2.
        let values = [9.0, 11.0, 13.0, 4.0, 8.0];
        let costs = [3u64, 4, 5, 2, 3];
        for cap in [5u64, 7, 9, 11] {
            let (_, opt) = max_knapsack_dp(&values, &costs, cap);
            let g = greedy_knapsack(&values, &costs, cap);
            let gv: f64 = g.objects().iter().map(|&i| values[i]).sum();
            assert!(gv >= opt / 2.0 - 1e-12, "cap {cap}: {gv} < {opt}/2");
            assert!(g.cost() <= cap);
        }
    }

    #[test]
    fn min_cover_picks_cheap_weights() {
        // Cover ≥ 5 cost units minimizing weight.
        let weights = [10.0, 1.0, 3.0, 8.0];
        let costs = [3u64, 2, 3, 4];
        let (chosen, w) = min_knapsack_cover_dp(&weights, &costs, 5);
        let cov: u64 = chosen.iter().map(|&i| costs[i]).sum();
        assert!(cov >= 5, "coverage {cov}");
        assert!((w - 4.0).abs() < 1e-12, "chosen {chosen:?} weight {w}");
        assert_eq!(chosen, vec![1, 2]);
    }

    #[test]
    fn min_cover_infeasible_returns_everything() {
        let (chosen, _) = min_knapsack_cover_dp(&[1.0, 2.0], &[1, 1], 10);
        assert_eq!(chosen, vec![0, 1]);
    }

    #[test]
    fn min_cover_zero_required() {
        let (chosen, w) = min_knapsack_cover_dp(&[1.0, 2.0], &[1, 1], 0);
        assert!(chosen.is_empty());
        assert_eq!(w, 0.0);
    }

    #[test]
    fn min_cover_exhaustive_cross_check() {
        // Brute-force verify on small instances.
        let weights = [4.0, 7.0, 1.0, 3.0, 6.0];
        let costs = [2u64, 5, 1, 3, 4];
        for req in 1..=15u64 {
            let (chosen, w) = min_knapsack_cover_dp(&weights, &costs, req);
            let cov: u64 = chosen.iter().map(|&i| costs[i]).sum();
            let total: u64 = costs.iter().sum();
            if req <= total {
                assert!(cov >= req, "req {req}: coverage {cov}");
            }
            // brute force
            let mut best = f64::INFINITY;
            for mask in 0u32..32 {
                let c: u64 = (0..5)
                    .filter(|&i| mask >> i & 1 == 1)
                    .map(|i| costs[i])
                    .sum();
                if c >= req.min(total) {
                    let ww: f64 = (0..5)
                        .filter(|&i| mask >> i & 1 == 1)
                        .map(|i| weights[i])
                        .sum();
                    best = best.min(ww);
                }
            }
            assert!(
                (w - best).abs() < 1e-9,
                "req {req}: dp {w} vs brute {best} (chosen {chosen:?})"
            );
        }
    }

    #[test]
    fn max_knapsack_exhaustive_cross_check() {
        let values = [3.5, 2.0, 4.0, 1.0, 6.5];
        let costs = [2u64, 1, 3, 1, 4];
        for cap in 0..=11u64 {
            let (chosen, v) = max_knapsack_dp(&values, &costs, cap);
            let c: u64 = chosen.iter().map(|&i| costs[i]).sum();
            assert!(c <= cap);
            let mut best = 0.0f64;
            for mask in 0u32..32 {
                let cc: u64 = (0..5)
                    .filter(|&i| mask >> i & 1 == 1)
                    .map(|i| costs[i])
                    .sum();
                if cc <= cap {
                    let vv: f64 = (0..5)
                        .filter(|&i| mask >> i & 1 == 1)
                        .map(|i| values[i])
                        .sum();
                    best = best.max(vv);
                }
            }
            assert!((v - best).abs() < 1e-9, "cap {cap}: dp {v} vs brute {best}");
        }
    }
}
