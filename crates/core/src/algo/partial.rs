//! Partial cleaning — the paper's final future-work item (§6):
//! "it will be useful to study settings where cleaning an individual
//! value only reduces the uncertainty thereof, but does not completely
//! eliminate it."
//!
//! Model: cleaning object `i` shrinks its distribution toward its mean
//! by a per-object *residual factor* `ρᵢ ∈ [0, 1]` — the cleaned value
//! is `μᵢ + ρᵢ (Xᵢ − μᵢ)`, so `Var` drops to `ρᵢ² Var[Xᵢ]` while the
//! mean is preserved. `ρᵢ = 0` recovers the paper's full-cleaning model;
//! `ρᵢ = 1` makes cleaning useless.
//!
//! For affine queries with uncorrelated values the Lemma 3.1 algebra
//! goes through verbatim with benefits
//! `wᵢ = aᵢ² (1 − ρᵢ²) Var[Xᵢ]`, so the knapsack/greedy machinery
//! applies unchanged — that is what this module wires up, plus the
//! instance transformer for the general engines.

use crate::algo::greedy::{greedy_static, GreedyConfig};
use crate::algo::knapsack::max_knapsack_dp;
use crate::budget::Budget;
use crate::instance::Instance;
use crate::selection::Selection;
use crate::{CoreError, Result};
use fc_claims::QueryFunction;
use fc_uncertain::DiscreteDist;

/// Per-object residual factors `ρᵢ` (validated into `[0, 1]`).
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualModel {
    rho: Vec<f64>,
}

impl ResidualModel {
    /// Builds a residual model; every factor must lie in `[0, 1]`.
    pub fn new(rho: Vec<f64>) -> Result<Self> {
        if let Some(i) = rho
            .iter()
            .position(|r| !r.is_finite() || !(0.0..=1.0).contains(r))
        {
            return Err(CoreError::BadObject {
                object: i,
                len: rho.len(),
            });
        }
        Ok(Self { rho })
    }

    /// The paper's full-cleaning model (`ρ = 0` everywhere).
    pub fn full_cleaning(n: usize) -> Self {
        Self { rho: vec![0.0; n] }
    }

    /// A uniform residual factor.
    pub fn uniform(n: usize, rho: f64) -> Result<Self> {
        Self::new(vec![rho; n])
    }

    /// Residual factor of object `i`.
    #[inline]
    pub fn rho(&self, i: usize) -> f64 {
        self.rho[i]
    }

    /// Number of objects covered.
    pub fn len(&self) -> usize {
        self.rho.len()
    }

    /// Whether the model covers no objects.
    pub fn is_empty(&self) -> bool {
        self.rho.is_empty()
    }
}

/// Modular partial-cleaning benefits for an affine query:
/// `wᵢ = aᵢ² (1 − ρᵢ²) Var[Xᵢ]`.
pub fn partial_modular_benefits(
    instance: &Instance,
    query: &dyn QueryFunction,
    residual: &ResidualModel,
) -> Result<Vec<f64>> {
    if residual.len() != instance.len() {
        return Err(CoreError::LengthMismatch {
            what: "residual factors",
            expected: instance.len(),
            got: residual.len(),
        });
    }
    let (weights, _b) = query
        .as_affine(instance.len())
        .ok_or(CoreError::NotAffine)?;
    Ok(weights
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let r = residual.rho(i);
            a * a * (1.0 - r * r) * instance.variance(i)
        })
        .collect())
}

/// `GreedyMinVar` under partial cleaning (modular objective).
pub fn greedy_min_var_partial(
    instance: &Instance,
    query: &dyn QueryFunction,
    residual: &ResidualModel,
    budget: Budget,
) -> Result<Selection> {
    let benefits = partial_modular_benefits(instance, query, residual)?;
    Ok(greedy_static(
        &benefits,
        instance.costs(),
        budget,
        GreedyConfig::default(),
    ))
}

/// `Optimum` under partial cleaning (modular objective).
pub fn optimum_min_var_partial(
    instance: &Instance,
    query: &dyn QueryFunction,
    residual: &ResidualModel,
    budget: Budget,
) -> Result<Selection> {
    let benefits = partial_modular_benefits(instance, query, residual)?;
    let (chosen, _) = max_knapsack_dp(&benefits, instance.costs(), budget.get());
    Ok(Selection::from_objects(chosen, instance.costs()))
}

/// Applies a partial-cleaning outcome: each selected object's
/// distribution is shrunk toward its mean by `ρᵢ` (support mapped
/// through `μ + ρ (v − μ)`), modelling the post-cleaning residual
/// uncertainty. The returned instance can be fed back into any engine
/// for a second cleaning round — partial cleaning composes.
pub fn shrink_cleaned(
    instance: &Instance,
    selection: &Selection,
    residual: &ResidualModel,
) -> Result<Instance> {
    if residual.len() != instance.len() {
        return Err(CoreError::LengthMismatch {
            what: "residual factors",
            expected: instance.len(),
            got: residual.len(),
        });
    }
    let dists: Vec<DiscreteDist> = (0..instance.len())
        .map(|i| {
            let d = instance.dist(i);
            if selection.contains(i) {
                let mu = d.mean();
                let r = residual.rho(i);
                d.map(|v| mu + r * (v - mu))
            } else {
                d.clone()
            }
        })
        .collect();
    Instance::new(
        dists,
        instance.current().to_vec(),
        instance.costs().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ev::modular::modular_benefits;
    use fc_claims::{BiasQuery, ClaimSet, Direction, LinearClaim};

    fn workload() -> (Instance, BiasQuery) {
        let inst = Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0, 4.0]).unwrap(), // var 4
                DiscreteDist::uniform_over(&[0.0, 2.0]).unwrap(), // var 1
                DiscreteDist::uniform_over(&[0.0, 6.0]).unwrap(), // var 9
            ],
            vec![2.0, 1.0, 3.0],
            vec![1, 1, 1],
        )
        .unwrap();
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 3).unwrap(),
            vec![LinearClaim::window_sum(0, 3).unwrap()],
            vec![1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        (inst, BiasQuery::new(cs, 6.0))
    }

    #[test]
    fn zero_residual_recovers_full_cleaning() {
        let (inst, q) = workload();
        let full = ResidualModel::full_cleaning(3);
        let a = partial_modular_benefits(&inst, &q, &full).unwrap();
        let b = modular_benefits(&inst, &q).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_residual_makes_cleaning_useless() {
        let (inst, q) = workload();
        let useless = ResidualModel::uniform(3, 1.0).unwrap();
        let w = partial_modular_benefits(&inst, &q, &useless).unwrap();
        assert!(w.iter().all(|&x| x.abs() < 1e-12));
        let sel = greedy_min_var_partial(&inst, &q, &useless, Budget::absolute(3)).unwrap();
        // Greedy may still fill the budget, but the benefit is zero —
        // Optimum correctly cleans nothing.
        let opt = optimum_min_var_partial(&inst, &q, &useless, Budget::absolute(3)).unwrap();
        assert!(opt.is_empty());
        let _ = sel;
    }

    #[test]
    fn heterogeneous_residuals_change_the_pick() {
        let (inst, q) = workload();
        // Object 2 has the largest variance (9) but cleaning it barely
        // helps (ρ = 0.95); object 0 (var 4) cleans perfectly.
        let residual = ResidualModel::new(vec![0.0, 0.0, 0.95]).unwrap();
        let sel = optimum_min_var_partial(&inst, &q, &residual, Budget::absolute(1)).unwrap();
        assert_eq!(sel.objects(), &[0]);
        // With full cleaning the pick would have been object 2.
        let full = ResidualModel::full_cleaning(3);
        let sel_full = optimum_min_var_partial(&inst, &q, &full, Budget::absolute(1)).unwrap();
        assert_eq!(sel_full.objects(), &[2]);
    }

    #[test]
    fn shrink_cleaned_reduces_variance_by_rho_squared() {
        let (inst, _q) = workload();
        let residual = ResidualModel::uniform(3, 0.5).unwrap();
        let sel = Selection::from_objects([0, 2], inst.costs());
        let shrunk = shrink_cleaned(&inst, &sel, &residual).unwrap();
        // Cleaned: variance × ρ² = ×0.25; mean preserved.
        assert!((shrunk.variance(0) - 1.0).abs() < 1e-12);
        assert!((shrunk.dist(0).mean() - inst.dist(0).mean()).abs() < 1e-12);
        assert!((shrunk.variance(2) - 2.25).abs() < 1e-12);
        // Untouched object unchanged.
        assert_eq!(shrunk.dist(1), inst.dist(1));
    }

    #[test]
    fn repeated_partial_cleaning_composes() {
        let (inst, q) = workload();
        let residual = ResidualModel::uniform(3, 0.5).unwrap();
        let sel = Selection::from_objects([2], inst.costs());
        let once = shrink_cleaned(&inst, &sel, &residual).unwrap();
        let twice = shrink_cleaned(&once, &sel, &residual).unwrap();
        assert!((twice.variance(2) - 9.0 * 0.0625).abs() < 1e-12);
        // A second round still has positive (shrinking) benefit.
        let w = partial_modular_benefits(&twice, &q, &residual).unwrap();
        assert!(w[2] > 0.0);
    }

    #[test]
    fn validation() {
        assert!(ResidualModel::new(vec![0.5, 1.5]).is_err());
        assert!(ResidualModel::new(vec![f64::NAN]).is_err());
        let (inst, q) = workload();
        let short = ResidualModel::uniform(2, 0.5).unwrap();
        assert!(matches!(
            partial_modular_benefits(&inst, &q, &short),
            Err(CoreError::LengthMismatch { .. })
        ));
    }
}
