//! `Best` — the Theorem 3.7 submodular-optimization yardstick.
//!
//! Lemma 3.6 maps MinVar to `M̄inVar`: choose the set `S` of objects to
//! *keep dirty*, minimizing the non-decreasing submodular
//! `ḡ(S) = EV(O \ S)` subject to the cost lower bound `c(S) ≥ C̄` with
//! `C̄ = c(O) − C`. Following Iyer & Bilmes (NeurIPS 2013), we run
//! majorization–minimization: at the current `S`, replace `ḡ` with a
//! *modular upper bound* tight at `S`, solve the resulting minimum
//! knapsack cover exactly (pseudo-polynomial DP), and iterate. Both of
//! the standard bound families are used and the best end point wins:
//!
//! ```text
//! m¹_S(Y) = ḡ(S) − Σ_{j∈S\Y} ḡ(j | S\{j}) + Σ_{j∈Y\S} ḡ(j | ∅)
//! m²_S(Y) = ḡ(S) − Σ_{j∈S\Y} ḡ(j | O\{j}) + Σ_{j∈Y\S} ḡ(j | S)
//! ```
//!
//! All marginals reduce to local scoped-engine deltas:
//! `ḡ(j|S\{j}) = eng.delta(state_S, j)`, `ḡ(j|∅) = removal delta at the
//! all-cleaned state`, `ḡ(j|O\{j}) = eng.delta(empty state, j)`, and
//! `ḡ(j|S) = removal delta at state_S`.

use crate::algo::knapsack::min_knapsack_cover_dp;
use crate::budget::Budget;
use crate::ev::scoped::ScopedEv;
use crate::instance::Instance;
use crate::selection::Selection;
use fc_claims::DecomposableQuery;

/// Tuning for [`best_min_var`].
#[derive(Debug, Clone, Copy)]
pub struct BestConfig {
    /// Maximum majorization–minimization iterations per bound.
    pub max_iters: usize,
}

impl Default for BestConfig {
    fn default() -> Self {
        Self { max_iters: 20 }
    }
}

/// `Best`: approximate MinVar via submodular optimization (Theorem 3.7).
/// Returns the cleaning selection `T = O \ S`.
pub fn best_min_var<Q: DecomposableQuery + ?Sized>(
    instance: &Instance,
    query: &Q,
    budget: Budget,
    cfg: BestConfig,
) -> Selection {
    let eng = ScopedEv::new(instance, query);
    best_min_var_with_engine(instance, &eng, budget, cfg)
}

/// [`best_min_var`] reusing a prebuilt scoped engine.
pub fn best_min_var_with_engine<Q: DecomposableQuery + ?Sized>(
    instance: &Instance,
    eng: &ScopedEv<'_, Q>,
    budget: Budget,
    cfg: BestConfig,
) -> Selection {
    let n = instance.len();
    let costs = instance.costs();
    let total: u64 = costs.iter().sum();
    let cbar = Budget::absolute(budget.get()).complement(total);

    // T-independent marginal families.
    let empty = eng.initial_state();
    let full = eng.full_state();
    // ḡ(j | ∅) = EV(O\{j}) − EV(O) = removal delta at the full state.
    let g_given_empty: Vec<f64> = (0..n).map(|j| eng.removal_delta(&full, j)).collect();
    // ḡ(j | O\{j}) = EV(∅) − EV({j}) = add delta at the empty state.
    let g_given_rest: Vec<f64> = (0..n).map(|j| eng.delta(&empty, j)).collect();

    // Evaluate a keep-dirty set S: EV of cleaning the complement.
    let ev_of_keep = |s: &Selection| -> f64 {
        let cleaned: Vec<usize> = (0..n).filter(|i| !s.contains(*i)).collect();
        eng.ev_of(&cleaned)
    };

    // Warm starts: (a) complement of the greedy MinVar solution,
    // (b) cheapest-per-damage cover of C̄.
    let greedy_t = crate::algo::minvar::greedy_min_var_with_engine(instance, eng, budget);
    let start_a = greedy_t.complement(n, costs);
    let start_b = {
        let mut order: Vec<usize> = (0..n).collect();
        // Keep-dirty preference: low damage ḡ(j|∅) per unit cost kept.
        order.sort_by(|&x, &y| {
            (g_given_empty[x] / costs[x] as f64).total_cmp(&(g_given_empty[y] / costs[y] as f64))
        });
        let mut s = Selection::empty();
        for i in order {
            if s.cost() >= cbar {
                break;
            }
            s.insert(i, costs[i]);
        }
        s
    };

    let mut best: Option<(Selection, f64)> = None;
    for start in [start_a, start_b] {
        if start.cost() < cbar {
            continue; // infeasible start (can happen when budget ≈ total)
        }
        for bound in [1u8, 2] {
            let mut s = start.clone();
            let mut s_val = ev_of_keep(&s);
            for _ in 0..cfg.max_iters {
                // Build modular weights for the chosen bound at S.
                let cleaned: Vec<usize> = (0..n).filter(|i| !s.contains(*i)).collect();
                let st = eng.state_for(&cleaned);
                let weights: Vec<f64> = (0..n)
                    .map(|j| {
                        let w = if s.contains(j) {
                            // Removing j from S means cleaning j.
                            if bound == 1 {
                                // ḡ(j | S\{j}) = delta of cleaning j given
                                // the complement of S cleaned.
                                eng.delta(&st, j)
                            } else {
                                g_given_rest[j]
                            }
                        } else if bound == 1 {
                            g_given_empty[j]
                        } else {
                            // ḡ(j | S) = removal delta of j at state
                            // cleaned = O\S ∪ ... : j currently cleaned.
                            eng.removal_delta(&st, j)
                        };
                        w.max(0.0)
                    })
                    .collect();
                let (chosen, _) = min_knapsack_cover_dp(&weights, costs, cbar);
                let s_new = Selection::from_objects(chosen, costs);
                if s_new.cost() < cbar {
                    break;
                }
                let v_new = ev_of_keep(&s_new);
                if v_new + 1e-12 >= s_val {
                    break;
                }
                s = s_new;
                s_val = v_new;
            }
            if best.as_ref().is_none_or(|(_, bv)| s_val < *bv) {
                best = Some((s.clone(), s_val));
            }
        }
    }

    match best {
        Some((s, _)) => s.complement(n, costs),
        // Budget covers everything: clean it all.
        None => Selection::from_objects(0..n, costs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::brute::brute_force_best;
    use crate::ev::scoped::ScopedEv;
    use fc_claims::{ClaimSet, Direction, DupQuery, LinearClaim};
    use fc_uncertain::{rng_from_seed, DiscreteDist};
    use rand::Rng;

    fn small_workload(seed: u64) -> (Instance, DupQuery) {
        let mut rng = rng_from_seed(seed);
        let n = 6;
        let dists: Vec<DiscreteDist> = (0..n)
            .map(|_| {
                let k = rng.gen_range(2..=3);
                let vals: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..10.0)).collect();
                DiscreteDist::uniform_over(&vals).unwrap()
            })
            .collect();
        let costs: Vec<u64> = (0..n).map(|_| rng.gen_range(1..5)).collect();
        let inst = Instance::new(dists, vec![5.0; n], costs).unwrap();
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![
                LinearClaim::window_sum(0, 2).unwrap(),
                LinearClaim::window_sum(2, 2).unwrap(),
                LinearClaim::window_sum(4, 2).unwrap(),
                LinearClaim::window_sum(1, 2).unwrap(),
            ],
            vec![1.0; 4],
            Direction::HigherIsStronger,
        )
        .unwrap();
        (inst, DupQuery::new(cs, 9.0))
    }

    #[test]
    fn best_respects_budget_and_beats_nothing() {
        for seed in [3u64, 11, 42] {
            let (inst, q) = small_workload(seed);
            let eng = ScopedEv::new(&inst, &q);
            let total = inst.total_cost();
            for frac in [0.25, 0.5, 0.75] {
                let budget = Budget::fraction(total, frac);
                let sel = best_min_var(&inst, &q, budget, BestConfig::default());
                assert!(sel.cost() <= budget.get(), "seed {seed} frac {frac}");
                let ev = eng.ev_of(sel.objects());
                let ev0 = eng.ev_of(&[]);
                assert!(ev <= ev0 + 1e-12, "seed {seed}: {ev} > {ev0}");
            }
        }
    }

    #[test]
    fn best_is_near_optimal_on_small_instances() {
        for seed in [5u64, 19] {
            let (inst, q) = small_workload(seed);
            let eng = ScopedEv::new(&inst, &q);
            let budget = Budget::fraction(inst.total_cost(), 0.5);
            let sel = best_min_var(&inst, &q, budget, BestConfig::default());
            let ev_best = eng.ev_of(sel.objects());
            let opt = brute_force_best(inst.costs(), budget, |s| eng.ev_of(s.objects()), true, 20)
                .unwrap();
            let ev_opt = eng.ev_of(opt.objects());
            // Not guaranteed optimal, but must be within a generous factor
            // on these toy instances (paper: "almost indistinguishable").
            assert!(
                ev_best <= 1.5 * ev_opt + 1e-9,
                "seed {seed}: best {ev_best} vs opt {ev_opt}"
            );
        }
    }

    #[test]
    fn full_budget_cleans_everything_relevant() {
        let (inst, q) = small_workload(7);
        let sel = best_min_var(
            &inst,
            &q,
            Budget::absolute(inst.total_cost()),
            BestConfig::default(),
        );
        let eng = ScopedEv::new(&inst, &q);
        assert!(eng.ev_of(sel.objects()) < 1e-9);
    }
}
