//! `GreedyMaxPr` — greedy for the surprise-probability objective.
//!
//! MaxPr is *not* submodular in general (a probability can fall when a
//! badly-shifted object joins `T`), so the drivers below use exhaustive
//! re-evaluation and stop as soon as no candidate improves the
//! probability — reproducing the Fig. 12 behaviour where `GreedyMaxPr`
//! "refuses to clean any more values" past ~48% budget.

use crate::algo::greedy::{greedy_exhaustive, greedy_static, GreedyConfig};
use crate::algo::knapsack::max_knapsack_dp;
use crate::budget::Budget;
use crate::ev::modular::modular_benefits_gaussian;
use crate::instance::{GaussianInstance, Instance};
use crate::maxpr::convolution::surprise_prob_convolution;
use crate::maxpr::gaussian::surprise_prob_gaussian;
use crate::selection::Selection;
use crate::{CoreError, Result};
use fc_claims::QueryFunction;
use fc_uncertain::mvn::MvnSemantics;

/// `GreedyMaxPr` over a Gaussian instance with an affine query: benefit
/// of a candidate is the exact closed-form probability delta.
pub fn greedy_max_pr(
    instance: &GaussianInstance,
    weights: &[f64],
    budget: Budget,
    tau: f64,
    semantics: MvnSemantics,
) -> Selection {
    let candidates: Vec<usize> = (0..instance.len()).filter(|&i| weights[i] != 0.0).collect();
    // The base probability depends only on the committed selection, so
    // within one greedy round it is identical for every candidate:
    // memoize it per selection size and halve the probability evals.
    let mut base_memo: Option<(usize, f64)> = None;
    greedy_exhaustive(
        &candidates,
        instance.costs(),
        budget,
        |sel, i| {
            let base = match base_memo {
                Some((len, p)) if len == sel.len() => p,
                _ => {
                    let p =
                        surprise_prob_gaussian(instance, weights, sel.objects(), tau, semantics)
                            .unwrap_or(0.0);
                    base_memo = Some((sel.len(), p));
                    p
                }
            };
            let mut with: Vec<usize> = sel.objects().to_vec();
            with.push(i);
            let after =
                surprise_prob_gaussian(instance, weights, &with, tau, semantics).unwrap_or(0.0);
            after - base
        },
        GreedyConfig {
            stop_when_nonpositive: true,
            fixup: false,
        },
    )
}

/// `GreedyMaxPr` over a discrete instance with an affine query, using the
/// deterministic binned-convolution probability engine.
pub fn greedy_max_pr_discrete(
    instance: &Instance,
    query: &dyn QueryFunction,
    budget: Budget,
    tau: f64,
    bins: Option<usize>,
) -> Result<Selection> {
    // Validate affinity up front so the closure can unwrap.
    let (weights, _) = query
        .as_affine(instance.len())
        .ok_or(CoreError::NotAffine)?;
    let candidates: Vec<usize> = (0..instance.len()).filter(|&i| weights[i] != 0.0).collect();
    // As in `greedy_max_pr`: the base probability is per-round
    // constant, so memoizing it halves the convolution calls.
    let mut base_memo: Option<(usize, f64)> = None;
    Ok(greedy_exhaustive(
        &candidates,
        instance.costs(),
        budget,
        |sel, i| {
            let base = match base_memo {
                Some((len, p)) if len == sel.len() => p,
                _ => {
                    let p = surprise_prob_convolution(instance, query, sel.objects(), tau, bins)
                        .expect("affinity validated");
                    base_memo = Some((sel.len(), p));
                    p
                }
            };
            let mut with: Vec<usize> = sel.objects().to_vec();
            with.push(i);
            let after = surprise_prob_convolution(instance, query, &with, tau, bins)
                .expect("affinity validated");
            after - base
        },
        GreedyConfig {
            stop_when_nonpositive: true,
            fixup: false,
        },
    ))
}

/// `Optimum` for MaxPr in the Lemma 3.3 setting (independent normals
/// *centered at the current values*): maximizing `Φ(−τ/σ_T)` is
/// equivalent to the max-knapsack on `wᵢ = aᵢ²σᵢ²`, solved exactly by DP.
pub fn max_pr_optimum_centered(
    instance: &GaussianInstance,
    weights: &[f64],
    budget: Budget,
) -> Selection {
    let benefits = modular_benefits_gaussian(instance, weights);
    let (chosen, _) = max_knapsack_dp(&benefits, instance.costs(), budget.get());
    Selection::from_objects(chosen, instance.costs())
}

/// The greedy constant-approximation for the same centered setting
/// (§3.2 "Greedy for modularizable objectives").
pub fn greedy_max_pr_centered(
    instance: &GaussianInstance,
    weights: &[f64],
    budget: Budget,
) -> Selection {
    let benefits = modular_benefits_gaussian(instance, weights);
    greedy_static(&benefits, instance.costs(), budget, GreedyConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_claims::{BiasQuery, ClaimSet, Direction, LinearClaim};
    use fc_uncertain::DiscreteDist;

    #[test]
    fn example5_greedy_max_pr_picks_x2() {
        // Example 5: MaxPr prefers X2 (prob 1/3 > 1/5).
        let inst = Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap(),
                DiscreteDist::uniform_over(&[1.0 / 3.0, 1.0, 5.0 / 3.0]).unwrap(),
            ],
            vec![1.0, 1.0],
            vec![1, 1],
        )
        .unwrap();
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![LinearClaim::window_sum(0, 2).unwrap()],
            vec![1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let q = BiasQuery::new(cs, 2.0);
        let sel = greedy_max_pr_discrete(&inst, &q, Budget::absolute(1), 7.0 / 12.0, None).unwrap();
        assert_eq!(sel.objects(), &[1]);
    }

    #[test]
    fn centered_gaussian_greedy_matches_dp_direction() {
        let g =
            GaussianInstance::centered_independent(vec![0.0; 3], &[3.0, 1.0, 2.0], vec![1, 1, 1])
                .unwrap();
        let w = [1.0, 1.0, 1.0];
        let sel = greedy_max_pr_centered(&g, &w, Budget::absolute(2));
        let opt = max_pr_optimum_centered(&g, &w, Budget::absolute(2));
        // Both should pick the two highest-variance objects {0, 2}.
        assert_eq!(sel.objects(), &[0, 2]);
        assert_eq!(opt.objects(), &[0, 2]);
    }

    #[test]
    fn greedy_max_pr_stops_when_cleaning_hurts() {
        // Object 1's mean sits far above its current value: cleaning it
        // would push the query up, killing the downward surprise.
        let g =
            GaussianInstance::independent(vec![0.0, 50.0], &[2.0, 1.0], vec![0.0, 0.0], vec![1, 1])
                .unwrap();
        let w = [1.0, 1.0];
        let sel = greedy_max_pr(&g, &w, Budget::absolute(2), 0.5, MvnSemantics::Marginal);
        assert_eq!(sel.objects(), &[0], "must refuse the harmful object");
    }

    #[test]
    fn non_affine_discrete_rejected() {
        let inst = Instance::new(
            vec![DiscreteDist::uniform_over(&[0.0, 1.0]).unwrap(); 2],
            vec![0.0, 0.0],
            vec![1, 1],
        )
        .unwrap();
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![LinearClaim::window_sum(0, 2).unwrap()],
            vec![1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let q = fc_claims::DupQuery::new(cs, 1.0);
        assert!(matches!(
            greedy_max_pr_discrete(&inst, &q, Budget::absolute(1), 0.1, None),
            Err(CoreError::NotAffine)
        ));
    }
}
