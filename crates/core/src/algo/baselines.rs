//! Baseline selection strategies from §4.1.

use crate::algo::greedy::{greedy_static, GreedyConfig};
use crate::budget::Budget;
use crate::instance::Instance;
use crate::selection::Selection;
use fc_claims::QueryFunction;
use rand::seq::SliceRandom;
use rand::Rng;

/// `Random`: shuffles the objects and cleans each one that still fits the
/// budget.
pub fn random_select<R: Rng + ?Sized>(
    instance: &Instance,
    budget: Budget,
    rng: &mut R,
) -> Selection {
    let mut order: Vec<usize> = (0..instance.len()).collect();
    order.shuffle(rng);
    let mut sel = Selection::empty();
    for i in order {
        if budget.fits(sel.cost(), instance.cost(i)) {
            sel.insert(i, instance.cost(i));
        }
    }
    sel
}

/// Per-object naive benefits: `Var[Xᵢ]` when the query references `i`,
/// else 0 (cleaning an unreferenced object can never help).
pub fn naive_benefits(instance: &Instance, query: &dyn QueryFunction) -> Vec<f64> {
    let referenced = query.objects();
    let mut b = vec![0.0; instance.len()];
    for &i in &referenced {
        b[i] = instance.variance(i);
    }
    b
}

/// `GreedyNaive` (§3.1): benefit = marginal variance, scored per unit
/// cost — ignores the query's structure but not the costs.
pub fn greedy_naive(instance: &Instance, query: &dyn QueryFunction, budget: Budget) -> Selection {
    greedy_static(
        &naive_benefits(instance, query),
        instance.costs(),
        budget,
        GreedyConfig::default(),
    )
}

/// `GreedyNaiveCostBlind` (§4.1): cleans objects in descending order of
/// marginal variance, ignoring costs entirely (each object that still
/// fits is taken).
pub fn greedy_naive_cost_blind(
    instance: &Instance,
    query: &dyn QueryFunction,
    budget: Budget,
) -> Selection {
    let benefits = naive_benefits(instance, query);
    let mut order: Vec<usize> = (0..instance.len()).collect();
    order.sort_by(|&a, &b| benefits[b].total_cmp(&benefits[a]).then(a.cmp(&b)));
    let mut sel = Selection::empty();
    for i in order {
        if benefits[i] <= 0.0 {
            break;
        }
        if budget.fits(sel.cost(), instance.cost(i)) {
            sel.insert(i, instance.cost(i));
        }
    }
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_claims::{BiasQuery, ClaimSet, Direction, LinearClaim};
    use fc_uncertain::{rng_from_seed, DiscreteDist};

    fn instance() -> Instance {
        Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0, 10.0]).unwrap(), // var 25
                DiscreteDist::uniform_over(&[0.0, 2.0]).unwrap(),  // var 1
                DiscreteDist::uniform_over(&[0.0, 6.0]).unwrap(),  // var 9
            ],
            vec![5.0, 1.0, 3.0],
            vec![10, 1, 2],
        )
        .unwrap()
    }

    fn query_over_first_two() -> BiasQuery {
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![LinearClaim::window_sum(0, 2).unwrap()],
            vec![1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        BiasQuery::new(cs, 0.0)
    }

    #[test]
    fn naive_benefits_zero_outside_query() {
        let inst = instance();
        let q = query_over_first_two();
        let b = naive_benefits(&inst, &q);
        assert_eq!(b[2], 0.0);
        assert!((b[0] - 25.0).abs() < 1e-12);
        assert!((b[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn naive_is_cost_aware() {
        // Ratios: obj0 = 25/10 = 2.5, obj1 = 1/1 = 1. Budget 1 → obj1.
        let inst = instance();
        let q = query_over_first_two();
        let sel = greedy_naive(&inst, &q, Budget::absolute(1));
        assert_eq!(sel.objects(), &[1]);
    }

    #[test]
    fn cost_blind_prefers_raw_variance() {
        let inst = instance();
        let q = query_over_first_two();
        // Budget 10: cost-blind takes obj0 (var 25, cost 10) and stops
        // fitting obj1 afterwards (cost 1 > 0 left).
        let sel = greedy_naive_cost_blind(&inst, &q, Budget::absolute(10));
        assert_eq!(sel.objects(), &[0]);
    }

    #[test]
    fn random_respects_budget_and_is_deterministic_per_seed() {
        let inst = instance();
        let a = random_select(&inst, Budget::absolute(3), &mut rng_from_seed(1));
        let b = random_select(&inst, Budget::absolute(3), &mut rng_from_seed(1));
        assert_eq!(a, b);
        assert!(a.cost() <= 3);
    }
}
