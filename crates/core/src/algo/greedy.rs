//! The Algorithm 1 greedy template.
//!
//! ```text
//! T ← ∅; c ← 0
//! while ∃ o ∈ O\T with c + c_o ≤ C:
//!     o ← argmax_{o: c + c_o ≤ C} β(o)/c_o
//!     T ← T ∪ {o}; c ← c + c_o
//! // 2-approximation fix-up (lines 5–8):
//! o_l ← argmax_{o ∈ O\T: c_o ≤ C} β(o)/c_o
//! if β(o_l) > Σ_{o ∈ T} β(o): T ← {o_l}
//! ```
//!
//! Three drivers share this skeleton:
//!
//! * [`greedy_static`] — `β` fixed up front (GreedyNaive, modular
//!   objectives): sort once by ratio, `O(n log n)`;
//! * [`greedy_incremental`] — `β` depends on the chosen set but changes
//!   only *locally*: committing an object can alter the benefits of a
//!   known set of "affected" candidates (scope-mates through shared
//!   claims). A versioned max-heap keeps every candidate's benefit
//!   **exact** — on each commit the affected candidates are re-scored
//!   and re-pushed, and stale heap entries are discarded on pop. Note
//!   the classic *lazy* greedy would be wrong here: by Lemma 3.5, `EV`'s
//!   marginal reductions **grow** as `T` grows (the reduction function
//!   is supermodular — see the paper's §5 remark contrasting with
//!   Krause's variance-reduction setting), so stale priorities are lower
//!   bounds rather than upper bounds;
//! * [`greedy_exhaustive`] — no structural assumption (MaxPr, correlated
//!   objectives): re-evaluates every remaining candidate each iteration,
//!   the paper's `O(n² γ)` form.

use crate::budget::Budget;
use crate::selection::Selection;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Knobs for the greedy drivers.
#[derive(Debug, Clone, Copy)]
pub struct GreedyConfig {
    /// Stop as soon as the best available benefit is ≤ 0 (used by
    /// GreedyMaxPr, where cleaning more can *hurt* — the Fig. 12
    /// "refuses to clean" behaviour). MinVar benefits are always ≥ 0
    /// (Lemma 3.4), so this is moot there.
    pub stop_when_nonpositive: bool,
    /// Run the 2-approximation fix-up (Algorithm 1 lines 5–8).
    pub fixup: bool,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        Self {
            stop_when_nonpositive: false,
            fixup: true,
        }
    }
}

/// A benefit oracle whose marginal benefits change only for a known set
/// of candidates when an object is committed (required for
/// [`greedy_incremental`] to be exact).
pub trait IncrementalOracle {
    /// Current marginal benefit of cleaning `candidate` on top of the
    /// committed set.
    fn benefit(&mut self, candidate: usize) -> f64;
    /// Commits `obj` into the chosen set.
    fn commit(&mut self, obj: usize);
    /// Candidates whose benefit may have changed after committing `obj`
    /// (excluding `obj` itself).
    fn affected(&self, obj: usize) -> Vec<usize>;
    /// A benefit that [`greedy_incremental_resumed`] served from a
    /// [`SweepEngine`] memo instead of calling [`Self::benefit`].
    /// Oracles that count evaluations for diagnostics should count the
    /// memo hit too, so resumed runs report the same evaluation totals
    /// as from-scratch ones (the byte-identity contract covers the
    /// diagnostic counters). The default is a no-op.
    fn note_memoized_benefit(&mut self) {}
}

/// Carried greedy state for budget sweeps: the commit trajectory of the
/// previous run plus every benefit the oracle produced along it, keyed
/// by (commit-prefix length, candidate).
///
/// [`greedy_incremental_resumed`] replays the exact
/// [`greedy_incremental`] loop but serves benefit queries from this
/// memo while the current run's commit sequence still matches the
/// recorded trajectory. The benefit of a candidate depends only on the
/// committed *set*, and the loop's commit sequence is a deterministic
/// function of the benefit values it sees — so every memo hit is
/// bit-identical to the evaluation it replaces, and resumed runs
/// produce byte-identical selections (including the stop/fix-up
/// decisions) at any budget, larger or smaller. When a budget change
/// makes the trajectory diverge (e.g. a smaller budget drops an item
/// the recorded run committed), the trajectory and memo are truncated
/// at the divergence point and re-recorded live from there — a rewind,
/// not an error.
///
/// The win: a sweep point re-pays cheap heap maintenance and one
/// `commit` per selected object, but skips the `O(candidates)` initial
/// scoring and the per-commit affected-set re-scoring — the oracle
/// evaluations that dominate scoped MinVar solves.
#[derive(Debug, Default)]
pub struct SweepEngine {
    /// Commit sequence of the most recent run.
    trajectory: Vec<usize>,
    /// `memo[j][obj]` = benefit of `obj` with `trajectory[..j]`
    /// committed. Always `trajectory.len() + 1` maps once seeded.
    memo: Vec<HashMap<usize, f64>>,
    /// Benefit queries served from the memo (across all runs).
    memo_hits: u64,
    /// Benefit queries that fell through to the oracle.
    live_evals: u64,
}

impl SweepEngine {
    /// A fresh engine with no recorded trajectory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length of the recorded commit trajectory.
    pub fn recorded_commits(&self) -> usize {
        self.trajectory.len()
    }

    /// Benefit queries served from the memo so far.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Benefit queries that went to the live oracle so far.
    pub fn live_evals(&self) -> u64 {
        self.live_evals
    }

    /// Drops all recorded state (e.g. after the underlying problem
    /// changes).
    pub fn clear(&mut self) {
        self.trajectory.clear();
        self.memo.clear();
    }

    fn seed(&mut self) {
        if self.memo.is_empty() {
            self.memo.push(HashMap::new());
        }
        debug_assert_eq!(self.memo.len(), self.trajectory.len() + 1);
    }

    /// The benefit of `obj` with `committed` commits replayed, served
    /// from the memo when this run is still on the recorded trajectory.
    fn benefit<O: IncrementalOracle>(
        &mut self,
        oracle: &mut O,
        committed: usize,
        obj: usize,
    ) -> f64 {
        if let Some(&b) = self.memo.get(committed).and_then(|m| m.get(&obj)) {
            self.memo_hits += 1;
            oracle.note_memoized_benefit();
            return b;
        }
        let b = oracle.benefit(obj);
        self.live_evals += 1;
        self.memo[committed].insert(obj, b);
        b
    }

    /// Records the `committed`-th commit of this run, truncating the
    /// trajectory and memo at the first divergence from the recording.
    fn commit(&mut self, committed: usize, obj: usize) {
        if self.trajectory.get(committed) != Some(&obj) {
            self.trajectory.truncate(committed);
            self.memo.truncate(committed + 1);
            self.trajectory.push(obj);
            self.memo.push(HashMap::new());
        }
    }
}

#[derive(PartialEq)]
struct HeapItem {
    ratio: f64,
    benefit: f64,
    obj: usize,
    version: u64,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.ratio
            .total_cmp(&other.ratio)
            .then_with(|| other.obj.cmp(&self.obj))
    }
}

/// Greedy with *fixed* per-object benefits.
pub fn greedy_static(
    benefits: &[f64],
    costs: &[u64],
    budget: Budget,
    cfg: GreedyConfig,
) -> Selection {
    let n = benefits.len();
    debug_assert_eq!(n, costs.len());
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ra = benefits[a] / costs[a] as f64;
        let rb = benefits[b] / costs[b] as f64;
        rb.total_cmp(&ra).then(a.cmp(&b))
    });
    let mut sel = Selection::empty();
    let mut chosen_benefit = 0.0;
    for &i in &order {
        if cfg.stop_when_nonpositive && benefits[i] <= 0.0 {
            break;
        }
        if budget.fits(sel.cost(), costs[i]) {
            sel.insert(i, costs[i]);
            chosen_benefit += benefits[i];
        }
    }
    if cfg.fixup {
        if let Some(best) = (0..n)
            .filter(|&i| !sel.contains(i) && costs[i] <= budget.get())
            .max_by(|&a, &b| {
                (benefits[a] / costs[a] as f64).total_cmp(&(benefits[b] / costs[b] as f64))
            })
        {
            if benefits[best] > chosen_benefit {
                let mut only = Selection::empty();
                only.insert(best, costs[best]);
                return only;
            }
        }
    }
    sel
}

/// Versioned-heap greedy for oracles with *local* benefit updates: every
/// candidate's heap priority is exact (entries are refreshed whenever a
/// commit can affect them; outdated entries are discarded on pop), so no
/// monotonicity assumption on the marginals is needed.
pub fn greedy_incremental<O: IncrementalOracle>(
    candidates: &[usize],
    costs: &[u64],
    budget: Budget,
    oracle: &mut O,
    cfg: GreedyConfig,
) -> Selection {
    let n_max = candidates.iter().copied().max().map_or(0, |m| m + 1);
    let mut cur_version: Vec<u64> = vec![0; n_max];
    let mut is_candidate = vec![false; n_max];
    // Empty-state benefits, kept for the fix-up comparison: the chosen
    // set's at-selection benefits telescope to the total objective gain,
    // and the competitor value of a singleton {o} is its benefit at ∅.
    let mut initial_benefit: Vec<(usize, f64)> = Vec::with_capacity(candidates.len());
    let mut heap: BinaryHeap<HeapItem> = candidates
        .iter()
        .map(|&i| {
            let b = oracle.benefit(i);
            initial_benefit.push((i, b));
            is_candidate[i] = true;
            HeapItem {
                ratio: b / costs[i] as f64,
                benefit: b,
                obj: i,
                version: 0,
            }
        })
        .collect();
    let mut sel = Selection::empty();
    let mut chosen_benefit = 0.0;
    while let Some(top) = heap.pop() {
        if sel.contains(top.obj) || top.version != cur_version[top.obj] {
            continue; // superseded entry
        }
        if !budget.fits(sel.cost(), costs[top.obj]) {
            // Infeasible now and forever (remaining budget only shrinks) —
            // drop permanently.
            continue;
        }
        if cfg.stop_when_nonpositive && top.benefit <= 0.0 {
            break;
        }
        oracle.commit(top.obj);
        sel.insert(top.obj, costs[top.obj]);
        chosen_benefit += top.benefit;
        // Re-score everyone whose benefit the commit may have changed.
        for a in oracle.affected(top.obj) {
            if a < n_max && is_candidate[a] && !sel.contains(a) {
                let b = oracle.benefit(a);
                cur_version[a] += 1;
                heap.push(HeapItem {
                    ratio: b / costs[a] as f64,
                    benefit: b,
                    obj: a,
                    version: cur_version[a],
                });
            }
        }
    }
    if cfg.fixup {
        let best = initial_benefit
            .iter()
            .copied()
            .filter(|&(i, _)| !sel.contains(i) && costs[i] <= budget.get())
            .max_by(|a, b| (a.1 / costs[a.0] as f64).total_cmp(&(b.1 / costs[b.0] as f64)));
        if let Some((i, b)) = best {
            if b > chosen_benefit {
                let mut only = Selection::empty();
                only.insert(i, costs[i]);
                return only;
            }
        }
    }
    sel
}

/// [`greedy_incremental`] with sweep-to-sweep state reuse: identical
/// loop, identical selections, but benefit queries are served from
/// `engine`'s memo while the commit sequence matches the recorded
/// trajectory (see [`SweepEngine`]). Call with the *same* oracle
/// construction per budget point (fresh oracle at `T = ∅`) and any
/// budget sequence — ascending sweeps replay almost everything,
/// descending or shuffled ones rewind by truncation and still match
/// from-scratch runs byte for byte.
pub fn greedy_incremental_resumed<O: IncrementalOracle>(
    candidates: &[usize],
    costs: &[u64],
    budget: Budget,
    oracle: &mut O,
    cfg: GreedyConfig,
    engine: &mut SweepEngine,
) -> Selection {
    engine.seed();
    let n_max = candidates.iter().copied().max().map_or(0, |m| m + 1);
    let mut cur_version: Vec<u64> = vec![0; n_max];
    let mut is_candidate = vec![false; n_max];
    let mut committed = 0usize;
    let mut initial_benefit: Vec<(usize, f64)> = Vec::with_capacity(candidates.len());
    let mut heap: BinaryHeap<HeapItem> = candidates
        .iter()
        .map(|&i| {
            let b = engine.benefit(oracle, committed, i);
            initial_benefit.push((i, b));
            is_candidate[i] = true;
            HeapItem {
                ratio: b / costs[i] as f64,
                benefit: b,
                obj: i,
                version: 0,
            }
        })
        .collect();
    let mut sel = Selection::empty();
    let mut chosen_benefit = 0.0;
    while let Some(top) = heap.pop() {
        if sel.contains(top.obj) || top.version != cur_version[top.obj] {
            continue; // superseded entry
        }
        if !budget.fits(sel.cost(), costs[top.obj]) {
            continue; // infeasible now and forever — drop permanently
        }
        if cfg.stop_when_nonpositive && top.benefit <= 0.0 {
            break;
        }
        oracle.commit(top.obj);
        engine.commit(committed, top.obj);
        committed += 1;
        sel.insert(top.obj, costs[top.obj]);
        chosen_benefit += top.benefit;
        for a in oracle.affected(top.obj) {
            if a < n_max && is_candidate[a] && !sel.contains(a) {
                let b = engine.benefit(oracle, committed, a);
                cur_version[a] += 1;
                heap.push(HeapItem {
                    ratio: b / costs[a] as f64,
                    benefit: b,
                    obj: a,
                    version: cur_version[a],
                });
            }
        }
    }
    if cfg.fixup {
        let best = initial_benefit
            .iter()
            .copied()
            .filter(|&(i, _)| !sel.contains(i) && costs[i] <= budget.get())
            .max_by(|a, b| (a.1 / costs[a.0] as f64).total_cmp(&(b.1 / costs[b.0] as f64)));
        if let Some((i, b)) = best {
            if b > chosen_benefit {
                let mut only = Selection::empty();
                only.insert(i, costs[i]);
                return only;
            }
        }
    }
    sel
}

/// Exhaustive-re-evaluation greedy: each iteration scores every remaining
/// feasible candidate with `benefit(&chosen, candidate)`. Makes no
/// structural assumption — the driver for MaxPr and correlated
/// objectives.
pub fn greedy_exhaustive(
    candidates: &[usize],
    costs: &[u64],
    budget: Budget,
    mut benefit: impl FnMut(&Selection, usize) -> f64,
    cfg: GreedyConfig,
) -> Selection {
    let mut sel = Selection::empty();
    let mut remaining: Vec<usize> = candidates.to_vec();
    let mut chosen_benefit = 0.0;
    loop {
        let mut best: Option<(usize, usize, f64)> = None; // (pos, obj, benefit)
        for (pos, &i) in remaining.iter().enumerate() {
            if !budget.fits(sel.cost(), costs[i]) {
                continue;
            }
            let b = benefit(&sel, i);
            let r = b / costs[i] as f64;
            let better = match best {
                None => true,
                Some((_, bi, bb)) => r > bb / costs[bi] as f64,
            };
            if better {
                best = Some((pos, i, b));
            }
        }
        match best {
            Some((pos, obj, b)) => {
                if cfg.stop_when_nonpositive && b <= 0.0 {
                    break;
                }
                remaining.swap_remove(pos);
                sel.insert(obj, costs[obj]);
                chosen_benefit += b;
            }
            None => break,
        }
    }
    if cfg.fixup {
        // Singleton competitor scored at T = ∅ (see greedy_lazy).
        let empty = Selection::empty();
        let best = remaining
            .iter()
            .copied()
            .filter(|&i| costs[i] <= budget.get())
            .map(|i| (i, benefit(&empty, i)))
            .max_by(|a, b| (a.1 / costs[a.0] as f64).total_cmp(&(b.1 / costs[b.0] as f64)));
        if let Some((i, b)) = best {
            if b > chosen_benefit {
                let mut only = Selection::empty();
                only.insert(i, costs[i]);
                return only;
            }
        }
    }
    sel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_greedy_fills_by_ratio() {
        // benefits 10,6,1 at costs 5,3,1 → ratios 2,2,1; budget 8 fits 0,1.
        let sel = greedy_static(
            &[10.0, 6.0, 1.0],
            &[5, 3, 1],
            Budget::absolute(8),
            GreedyConfig::default(),
        );
        assert_eq!(sel.objects(), &[0, 1]);
        assert_eq!(sel.cost(), 8);
    }

    #[test]
    fn fixup_rescues_pathological_instance() {
        // The §3.1 example: β = (0.1, 10), c = (1, 2000) scaled to ints.
        // Ratio greedy picks item 0 (ratio 0.1) over item 1
        // (ratio 0.005), then can't afford item 1 ⇒ value 0.1.
        // The fix-up replaces T with {item 1} (value 10).
        let benefits = [0.1, 10.0];
        let costs = [1u64, 2000];
        let budget = Budget::absolute(2000);
        let with = greedy_static(&benefits, &costs, budget, GreedyConfig::default());
        assert_eq!(with.objects(), &[1]);
        let without = greedy_static(
            &benefits,
            &costs,
            budget,
            GreedyConfig {
                fixup: false,
                ..Default::default()
            },
        );
        assert_eq!(without.objects(), &[0]);
    }

    struct ScalingOracle {
        base: Vec<f64>,
        factor: f64,
        committed: usize,
    }

    impl IncrementalOracle for ScalingOracle {
        fn benefit(&mut self, candidate: usize) -> f64 {
            self.base[candidate] * self.factor.powi(self.committed as i32)
        }
        fn commit(&mut self, obj: usize) {
            let _ = obj;
            self.committed += 1;
        }
        fn affected(&self, _obj: usize) -> Vec<usize> {
            (0..self.base.len()).collect()
        }
    }

    #[test]
    fn incremental_matches_exhaustive_on_decreasing_benefits() {
        let base = vec![8.0, 6.0, 4.0, 2.0, 1.0];
        let costs = vec![2u64, 2, 2, 2, 2];
        let budget = Budget::absolute(6);
        let mut oracle = ScalingOracle {
            base: base.clone(),
            factor: 0.5,
            committed: 0,
        };
        let inc = greedy_incremental(
            &[0, 1, 2, 3, 4],
            &costs,
            budget,
            &mut oracle,
            GreedyConfig::default(),
        );
        let exhaustive = greedy_exhaustive(
            &[0, 1, 2, 3, 4],
            &costs,
            budget,
            |sel, i| base[i] * 0.5f64.powi(sel.len() as i32),
            GreedyConfig::default(),
        );
        assert_eq!(inc, exhaustive);
        assert_eq!(inc.objects(), &[0, 1, 2]);
    }

    #[test]
    fn incremental_matches_exhaustive_on_increasing_benefits() {
        // The MinVar case: marginal reductions *grow* as the chosen set
        // grows (Lemma 3.5 reversed-sense submodularity). A lazy heap
        // would under-prioritize here; the versioned heap stays exact.
        let base = vec![8.0, 6.0, 4.0, 2.0, 1.0];
        let costs = vec![2u64, 2, 2, 2, 2];
        let budget = Budget::absolute(6);
        let mut oracle = ScalingOracle {
            base: base.clone(),
            factor: 1.5,
            committed: 0,
        };
        let inc = greedy_incremental(
            &[0, 1, 2, 3, 4],
            &costs,
            budget,
            &mut oracle,
            GreedyConfig::default(),
        );
        let exhaustive = greedy_exhaustive(
            &[0, 1, 2, 3, 4],
            &costs,
            budget,
            |sel, i| base[i] * 1.5f64.powi(sel.len() as i32),
            GreedyConfig::default(),
        );
        assert_eq!(inc, exhaustive);
    }

    struct LocalOracle {
        /// benefit[i] doubles once its neighbour (i ^ 1) is committed.
        boosted: Vec<bool>,
        base: Vec<f64>,
    }

    impl IncrementalOracle for LocalOracle {
        fn benefit(&mut self, candidate: usize) -> f64 {
            self.base[candidate] * if self.boosted[candidate] { 2.0 } else { 1.0 }
        }
        fn commit(&mut self, obj: usize) {
            let buddy = obj ^ 1;
            if buddy < self.boosted.len() {
                self.boosted[buddy] = true;
            }
        }
        fn affected(&self, obj: usize) -> Vec<usize> {
            let buddy = obj ^ 1;
            if buddy < self.boosted.len() {
                vec![buddy]
            } else {
                vec![]
            }
        }
    }

    #[test]
    fn incremental_respects_local_updates() {
        // base = [5, 1, 4, 3]; committing 2 boosts 3 to 6, overtaking 0.
        let mut oracle = LocalOracle {
            boosted: vec![false; 4],
            base: vec![5.0, 1.0, 4.0, 3.0],
        };
        // Make 2 the first pick by cost advantage: costs [4, 4, 1, 4].
        let costs = vec![4u64, 4, 1, 4];
        let sel = greedy_incremental(
            &[0, 1, 2, 3],
            &costs,
            Budget::absolute(9),
            &mut oracle,
            GreedyConfig {
                fixup: false,
                ..Default::default()
            },
        );
        // Pick order: 2 (ratio 4), then 3 (boosted to 6, ratio 1.5 >
        // 5/4), then 0 (ratio 1.25) — budget exhausted at 9.
        assert_eq!(sel.objects(), &[0, 2, 3]);
    }

    #[test]
    fn resumed_sweep_matches_independent_solves() {
        // The sweep engine must be invisible in the output: for every
        // budget in a ladder — ascending, descending, or arbitrary
        // jumps (which force trajectory rewinds) — the resumed solve
        // returns the exact selection of an independent solve, and the
        // memo replay actually fires on the shared prefixes.
        let base = vec![8.0, 3.5, 6.0, 2.0, 4.5, 1.0, 7.0, 0.5];
        let costs = vec![3u64, 2, 4, 1, 2, 1, 5, 1];
        let candidates: Vec<usize> = (0..base.len()).collect();
        let ladders: [&[u64]; 3] = [
            &[0, 2, 4, 6, 8, 10, 12, 19],
            &[19, 12, 10, 8, 6, 4, 2, 0],
            &[7, 0, 13, 4, 19, 2, 9, 5],
        ];
        for factor in [0.5, 1.5] {
            for ladder in ladders {
                let mut engine = SweepEngine::new();
                for &b in ladder {
                    let budget = Budget::absolute(b);
                    let mut plain_oracle = ScalingOracle {
                        base: base.clone(),
                        factor,
                        committed: 0,
                    };
                    let plain = greedy_incremental(
                        &candidates,
                        &costs,
                        budget,
                        &mut plain_oracle,
                        GreedyConfig::default(),
                    );
                    let mut oracle = ScalingOracle {
                        base: base.clone(),
                        factor,
                        committed: 0,
                    };
                    let resumed = greedy_incremental_resumed(
                        &candidates,
                        &costs,
                        budget,
                        &mut oracle,
                        GreedyConfig::default(),
                        &mut engine,
                    );
                    assert_eq!(plain, resumed, "factor {factor}, budget {b}");
                }
                assert!(engine.memo_hits() > 0, "memo replay never fired");
            }
        }
    }

    #[test]
    fn resumed_sweep_handles_local_updates_and_rewinds() {
        // Local (neighbour-boost) benefit updates with a ladder that
        // repeats and rewinds budgets; repeated budgets must replay
        // entirely from the memo.
        let base = vec![5.0, 1.0, 4.0, 3.0, 2.5, 0.5];
        let costs = vec![4u64, 4, 1, 4, 2, 1];
        let candidates: Vec<usize> = (0..base.len()).collect();
        let cfg = GreedyConfig {
            fixup: false,
            ..Default::default()
        };
        let mut engine = SweepEngine::new();
        for &b in &[9u64, 3, 16, 0, 12, 5, 9, 16] {
            let budget = Budget::absolute(b);
            let mut plain_oracle = LocalOracle {
                boosted: vec![false; base.len()],
                base: base.clone(),
            };
            let plain = greedy_incremental(&candidates, &costs, budget, &mut plain_oracle, cfg);
            let mut oracle = LocalOracle {
                boosted: vec![false; base.len()],
                base: base.clone(),
            };
            let resumed = greedy_incremental_resumed(
                &candidates,
                &costs,
                budget,
                &mut oracle,
                cfg,
                &mut engine,
            );
            assert_eq!(plain, resumed, "budget {b}");
        }
        assert!(engine.recorded_commits() > 0);
        assert!(engine.live_evals() > 0);
    }

    #[test]
    fn exhaustive_stops_on_nonpositive() {
        // Second pick would have negative benefit.
        let costs = vec![1u64, 1];
        let sel = greedy_exhaustive(
            &[0, 1],
            &costs,
            Budget::absolute(2),
            |sel, i| {
                if sel.is_empty() {
                    [5.0, 1.0][i]
                } else {
                    -1.0
                }
            },
            GreedyConfig {
                stop_when_nonpositive: true,
                fixup: false,
            },
        );
        assert_eq!(sel.objects(), &[0]);
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let sel = greedy_static(
            &[1.0, 2.0],
            &[1, 1],
            Budget::absolute(0),
            GreedyConfig::default(),
        );
        assert!(sel.is_empty());
    }

    #[test]
    fn skips_unaffordable_items_and_continues() {
        // Item 1 never fits; greedy should still take 0 and 2.
        let sel = greedy_static(
            &[3.0, 100.0, 2.0],
            &[2, 50, 2],
            Budget::absolute(5),
            GreedyConfig {
                fixup: false,
                ..Default::default()
            },
        );
        assert_eq!(sel.objects(), &[0, 2]);
    }
}
