//! Exhaustive subset search — the §4.5 `OPT` yardstick.

use crate::budget::Budget;
use crate::selection::Selection;
use crate::{CoreError, Result};

/// Hard cap on brute-force instance size (2^25 subsets ≈ 33M).
pub const BRUTE_FORCE_MAX_N: usize = 25;

/// Enumerates every subset within budget and returns the one optimizing
/// `objective` (`minimize = true` for MinVar-style objectives, `false`
/// for MaxPr). Ties break toward cheaper selections.
pub fn brute_force_best(
    costs: &[u64],
    budget: Budget,
    mut objective: impl FnMut(&Selection) -> f64,
    minimize: bool,
    max_n: usize,
) -> Result<Selection> {
    let n = costs.len();
    let cap = max_n.min(BRUTE_FORCE_MAX_N);
    if n > cap {
        return Err(CoreError::TooLargeForBruteForce { n, max: cap });
    }
    let mut best: Option<(Selection, f64)> = None;
    for mask in 0u64..(1u64 << n) {
        let cost: u64 = (0..n)
            .filter(|&i| mask >> i & 1 == 1)
            .map(|i| costs[i])
            .sum();
        if cost > budget.get() {
            continue;
        }
        let sel = Selection::from_objects((0..n).filter(|&i| mask >> i & 1 == 1), costs);
        let v = objective(&sel);
        let better = match &best {
            None => true,
            Some((bsel, bv)) => {
                let improved = if minimize {
                    v < *bv - 1e-15
                } else {
                    v > *bv + 1e-15
                };
                let tied = (v - *bv).abs() <= 1e-15;
                improved || (tied && sel.cost() < bsel.cost())
            }
        };
        if better {
            best = Some((sel, v));
        }
    }
    Ok(best.map(|(s, _)| s).unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_knapsack_optimum() {
        let costs = [10u64, 20, 30];
        let values = [60.0, 100.0, 120.0];
        let sel = brute_force_best(
            &costs,
            Budget::absolute(50),
            |s| s.objects().iter().map(|&i| values[i]).sum(),
            false,
            10,
        )
        .unwrap();
        assert_eq!(sel.objects(), &[1, 2]);
    }

    #[test]
    fn minimization_prefers_cheap_ties() {
        let costs = [1u64, 2];
        let sel = brute_force_best(&costs, Budget::absolute(3), |_| 0.0, true, 10).unwrap();
        assert!(sel.is_empty(), "all-tied objective must pick ∅ (cheapest)");
    }

    #[test]
    fn too_large_is_rejected() {
        let costs = vec![1u64; 30];
        assert!(matches!(
            brute_force_best(&costs, Budget::absolute(1), |_| 0.0, true, 25),
            Err(CoreError::TooLargeForBruteForce { .. })
        ));
    }
}
