//! The long-lived worker pool underneath the batch executor and the
//! [`service`](super::service) layer.
//!
//! PR 2's executor spun up scoped threads per call and tore them down
//! again — fine for one-shot figure binaries, wasteful for a serving
//! process that fields a stream of requests. This module owns the
//! threads instead: a [`WorkerPool`] holds `n` std threads fed by an
//! `mpsc` job queue (no external dependencies), and everything above it
//! — [`exec::solve_batch`](super::exec::solve_batch),
//! [`exec::sweep`](super::exec::sweep), the
//! [`PlannerService`](super::service::PlannerService) — is a thin
//! client that *submits* work rather than spawning.
//!
//! Two submission shapes:
//!
//! * [`WorkerPool::submit`] — a `'static` fire-and-forget job (the
//!   service layer's token path);
//! * [`WorkerPool::scope`] — structured borrowing like
//!   [`std::thread::scope`]: jobs may borrow from the caller's stack,
//!   and `scope` does not return until every spawned job has finished
//!   (even if the closure panics), which is what makes the borrow
//!   sound. The batch executor runs its work units through this.
//!
//! **Re-entrancy:** a job running *on* a pool worker must never block
//! waiting for other jobs of the same pool — with every worker parked
//! in such a wait the queue would deadlock. [`WorkerPool::on_worker_thread`]
//! detects this; the executor checks it and degrades to inline
//! execution on the worker thread (identical plans, no nested waiting).
//!
//! Plans stay byte-identical to sequential execution because solvers
//! are pure functions of (problem, budget, engine tables); the pool
//! only changes *where* they run, never *what* they compute.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Whether the current thread is a pool worker (any pool).
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A persistent pool of `std` worker threads fed by an `mpsc` job
/// queue. Construct one per process scale-unit (or use
/// [`WorkerPool::global`]) and share it via `Arc`; dropping the pool
/// drains every queued job, then joins the workers.
pub struct WorkerPool {
    /// `None` only during drop (taking the sender disconnects the
    /// channel, which is the workers' shutdown signal).
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// A pool with `threads` workers (`0` is treated as `1`).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("fc-pool-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        Self {
            sender: Some(sender),
            handles,
            threads,
        }
    }

    /// The process-wide pool, sized by `available_parallelism`, created
    /// on first use. The executor and the service default to this so a
    /// process hosts one set of compute threads, not one per call site.
    pub fn global() -> Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| {
            let threads = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            Arc::new(WorkerPool::new(threads))
        }))
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the *current* thread is a pool worker. Code that would
    /// block on other jobs of the pool (like the executor's scope wait)
    /// must check this and run inline instead — every worker parked in
    /// such a wait would deadlock the queue.
    pub fn on_worker_thread() -> bool {
        IN_POOL_WORKER.with(Cell::get)
    }

    /// Enqueues a `'static` job. Falls back to running the job on the
    /// caller thread if the pool is shutting down (so work is never
    /// silently dropped).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let job: Job = Box::new(job);
        match &self.sender {
            Some(sender) => {
                if let Err(mpsc::SendError(job)) = sender.send(job) {
                    job();
                }
            }
            None => job(),
        }
    }

    /// Runs `f` with a [`PoolScope`] through which jobs borrowing from
    /// the caller's environment may be spawned onto the pool. Does not
    /// return until every spawned job has finished — the same
    /// structured-concurrency contract as [`std::thread::scope`], which
    /// is what makes the borrows sound. The first job panic is
    /// propagated to the caller after all jobs complete.
    ///
    /// Must not be called from a pool worker thread (the wait could
    /// deadlock the queue); check [`WorkerPool::on_worker_thread`] and
    /// run inline there instead. Debug builds assert this.
    pub fn scope<'env, T>(&self, f: impl FnOnce(&PoolScope<'_, 'env>) -> T) -> T {
        debug_assert!(
            !Self::on_worker_thread(),
            "WorkerPool::scope called from a pool worker; \
             callers must degrade to inline execution (see on_worker_thread)"
        );
        let scope = PoolScope {
            pool: self,
            state: Arc::new(ScopeState::default()),
            _env: PhantomData,
        };
        // Even if `f` panics we must wait for the spawned jobs before
        // unwinding: they may still hold borrows into `'env`.
        let out = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.state.wait_all();
        if let Some(payload) = scope.state.take_panic() {
            resume_unwind(payload);
        }
        match out {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the channel; workers drain the remaining queue
        // (mpsc delivers buffered messages before reporting disconnect)
        // and exit.
        drop(self.sender.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    IN_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        let job = {
            let guard = receiver.lock().expect("pool job queue poisoned");
            guard.recv()
        };
        match job {
            // Jobs are already panic-wrapped by their submitters
            // (scope / service); this outer catch keeps a stray panic
            // from killing the worker and shrinking the pool.
            Ok(job) => {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            Err(_) => break, // channel disconnected: shutdown
        }
    }
}

/// Book-keeping shared between a [`PoolScope`] and its in-flight jobs.
#[derive(Default)]
struct ScopeState {
    /// Spawned-but-not-finished job count.
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by a job, if any.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn add_job(&self) {
        *self.pending.lock().expect("scope state poisoned") += 1;
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send + 'static>>) {
        if let Some(payload) = panic {
            self.panic
                .lock()
                .expect("scope panic slot poisoned")
                .get_or_insert(payload);
        }
        let mut pending = self.pending.lock().expect("scope state poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut pending = self.pending.lock().expect("scope state poisoned");
        while *pending > 0 {
            pending = self
                .done
                .wait(pending)
                .expect("scope state poisoned while waiting");
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
        self.panic.lock().expect("scope panic slot poisoned").take()
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`]; jobs
/// spawned through it may borrow from the enclosing `'env`.
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like [`std::thread::Scope`].
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'_, 'env> {
    /// Spawns a job onto the pool. The job may borrow from `'env`;
    /// the enclosing [`WorkerPool::scope`] call waits for it before
    /// returning, so the borrow never outlives its referent.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'env) {
        self.state.add_job();
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the job is only ever run once, and `scope` does not
        // return (or unwind) until `state.pending` reaches zero — i.e.
        // until this job has finished — so the `'env` borrows inside
        // the closure are live for every instant the job can run. The
        // pool's drop path drains the queue before joining, so a job
        // is never leaked un-run with `pending` still counted.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.submit(move || {
            let result = catch_unwind(AssertUnwindSafe(job));
            state.complete(result.err());
        });
    }
}

impl std::fmt::Debug for PoolScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolScope")
            .field("pool", self.pool)
            .finish()
    }
}

/// A minimal two-lane run queue for cooperatively-scheduled tasks: pool
/// workers execute *tokens* (one per queued task) that each run the
/// highest-priority task available at that moment, so an interactive
/// task enqueued behind a pile of bulk work is picked up by the very
/// next token instead of waiting its turn. Used by the service layer;
/// lives here so the pool and its scheduling idiom stay together.
///
/// Tasks may carry a [`CancelToken`](super::exec::CancelToken):
/// cancelled tasks are *dropped at dispatch* — the token that would
/// have run them moves on to the next live task — so abandoned work
/// never occupies a worker, not even to discover it was abandoned.
#[derive(Default)]
pub(crate) struct TwoLaneQueue {
    lanes: Mutex<Lanes>,
}

/// A queued task with its (optional) cancellation flag.
struct QueuedTask {
    cancel: Option<super::exec::CancelToken>,
    job: Job,
}

impl QueuedTask {
    fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(super::exec::CancelToken::is_cancelled)
    }
}

#[derive(Default)]
struct Lanes {
    interactive: VecDeque<QueuedTask>,
    bulk: VecDeque<QueuedTask>,
}

impl TwoLaneQueue {
    /// Enqueues `task` on the given lane; the caller must pair this
    /// with exactly one pool token that calls [`TwoLaneQueue::run_next`].
    /// When `cancel` is supplied and cancelled before dispatch, the
    /// task is dropped un-run (the submitter is responsible for
    /// resolving whatever was waiting on it — see the service layer's
    /// cancel path, which resolves handles and releases quota at
    /// cancel time, not at dispatch time).
    pub(crate) fn push(
        &self,
        interactive: bool,
        cancel: Option<super::exec::CancelToken>,
        job: Job,
    ) {
        let mut lanes = self.lanes.lock().expect("lane queue poisoned");
        let task = QueuedTask { cancel, job };
        if interactive {
            lanes.interactive.push_back(task);
        } else {
            lanes.bulk.push_back(task);
        }
    }

    /// Pops and runs the highest-priority pending *live* task, if any;
    /// cancelled tasks are discarded without running.
    pub(crate) fn run_next(&self) {
        loop {
            let task = {
                let mut lanes = self.lanes.lock().expect("lane queue poisoned");
                lanes
                    .interactive
                    .pop_front()
                    .or_else(|| lanes.bulk.pop_front())
            };
            match task {
                Some(task) if task.is_cancelled() => continue,
                Some(task) => return (task.job)(),
                None => return,
            }
        }
    }

    /// (interactive, bulk) tasks currently waiting (cancelled-but-not-
    /// yet-discarded tasks included).
    pub(crate) fn depths(&self) -> (usize, usize) {
        let lanes = self.lanes.lock().expect("lane queue poisoned");
        (lanes.interactive.len(), lanes.bulk.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_every_job_and_waits() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..64 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // `scope` returned, so every job has finished.
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_jobs_may_borrow_from_the_stack() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..100).collect();
        let slots: Vec<Mutex<u64>> = data.iter().map(|_| Mutex::new(0)).collect();
        pool.scope(|scope| {
            for (i, slot) in slots.iter().enumerate() {
                let data = &data;
                scope.spawn(move || {
                    *slot.lock().unwrap() = data[i] * 2;
                });
            }
        });
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(*slot.lock().unwrap(), data[i] * 2);
        }
    }

    #[test]
    fn scope_propagates_job_panics_after_waiting() {
        let pool = WorkerPool::new(2);
        let finished = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("job panic"));
                for _ in 0..8 {
                    scope.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(caught.is_err(), "the job panic reaches the caller");
        // ...but only after every sibling job ran to completion.
        assert_eq!(finished.load(Ordering::Relaxed), 8);
        // The pool survives the panic and keeps serving.
        let ok = AtomicUsize::new(0);
        pool.scope(|scope| {
            scope.spawn(|| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn submit_runs_static_jobs() {
        let pool = WorkerPool::new(2);
        let state: Arc<(Mutex<usize>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));
        for _ in 0..16 {
            let state = Arc::clone(&state);
            pool.submit(move || {
                let (count, cv) = &*state;
                *count.lock().unwrap() += 1;
                cv.notify_all();
            });
        }
        let (count, cv) = &*state;
        let mut n = count.lock().unwrap();
        while *n < 16 {
            n = cv.wait(n).unwrap();
        }
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..32 {
                let ran = Arc::clone(&ran);
                pool.submit(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Dropping joins only after the queue is drained.
        }
        assert_eq!(ran.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn worker_threads_self_identify() {
        assert!(!WorkerPool::on_worker_thread());
        let pool = WorkerPool::new(1);
        let seen = Arc::new(Mutex::new(None));
        {
            let seen = Arc::clone(&seen);
            pool.submit(move || {
                *seen.lock().unwrap() = Some(WorkerPool::on_worker_thread());
            });
        }
        drop(pool); // join ⇒ the job has run
        assert_eq!(*seen.lock().unwrap(), Some(true));
    }

    #[test]
    fn two_lane_queue_prefers_interactive() {
        let q = TwoLaneQueue::default();
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..3 {
            let order = Arc::clone(&order);
            q.push(
                false,
                None,
                Box::new(move || order.lock().unwrap().push("bulk")),
            );
        }
        let o = Arc::clone(&order);
        q.push(
            true,
            None,
            Box::new(move || o.lock().unwrap().push("interactive")),
        );
        assert_eq!(q.depths(), (1, 3));
        // The next token runs the interactive task even though three
        // bulk tasks were queued first.
        q.run_next();
        assert_eq!(order.lock().unwrap().as_slice(), &["interactive"]);
        for _ in 0..3 {
            q.run_next();
        }
        assert_eq!(
            order.lock().unwrap().as_slice(),
            &["interactive", "bulk", "bulk", "bulk"]
        );
        assert_eq!(q.depths(), (0, 0));
    }

    #[test]
    fn two_lane_queue_drops_cancelled_tasks_at_dispatch() {
        use super::super::exec::CancelToken;
        let q = TwoLaneQueue::default();
        let ran: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let doomed = CancelToken::new();
        for _ in 0..2 {
            let ran = Arc::clone(&ran);
            q.push(
                false,
                Some(doomed.clone()),
                Box::new(move || ran.lock().unwrap().push("cancelled")),
            );
        }
        let live = CancelToken::new();
        let r = Arc::clone(&ran);
        q.push(
            false,
            Some(live.clone()),
            Box::new(move || r.lock().unwrap().push("live")),
        );
        doomed.cancel();
        // One token: skips both cancelled tasks and runs the live one.
        q.run_next();
        assert_eq!(ran.lock().unwrap().as_slice(), &["live"]);
        assert_eq!(q.depths(), (0, 0), "cancelled tasks were discarded");
        // Further tokens find an empty queue and return quietly.
        q.run_next();
        assert_eq!(ran.lock().unwrap().as_slice(), &["live"]);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.threads() >= 1);
    }
}
