//! The long-lived serving front: [`PlannerService`].
//!
//! The paper frames cleaning-selection as an *interactive loop* — a
//! fact-checker streams claims against a dataset whose values keep
//! getting cleaned — but `solve_batch`/`sweep` are one-shot: the caller
//! blocks until the whole batch returns. This module adds the
//! request/response front the ROADMAP calls for, with no async runtime
//! (none is available offline): a [`PlannerService`] owns an
//! `Arc<SolverRegistry>`, a [`CacheStore`], and a [`WorkerPool`], and
//! callers hand it work via [`PlannerService::submit`] /
//! [`PlannerService::submit_sweep`], getting back a [`RequestHandle`] —
//! a hand-rolled future: poll with [`RequestHandle::is_ready`], take
//! with [`RequestHandle::try_wait`], or block on
//! [`RequestHandle::wait`].
//!
//! ## Admission control and fair scheduling
//!
//! Every request is costed by [`Problem::estimated_engine_evals`]
//! (times the number of budget points, for sweeps) and routed to a
//! [`Lane`]:
//!
//! * **Inline** — below [`ServiceOptions::inline_threshold`] the
//!   request is solved synchronously at `submit`; queueing a pool job
//!   would cost more than the solve (the same admission rule as the
//!   batch executor).
//! * **Interactive** — below
//!   [`ServiceOptions::interactive_threshold`]: the latency-sensitive
//!   lane.
//! * **Bulk** — everything else (big sweeps, audits).
//!
//! Pool workers always drain the interactive lane before the bulk
//! lane, and a sweep is decomposed into one task *per budget point* —
//! so even on a single worker, an interactive claim waits for at most
//! one budget point of a running sweep, never for the whole thing.
//! That is what keeps a huge sweep from starving interactive claims.
//!
//! ## Determinism
//!
//! Service plans are byte-identical to their synchronous counterparts
//! ([`SolverRegistry::solve`]/[`SolverRegistry::sweep`]): solvers are
//! pure functions of (problem, budget, engine tables), and the tables
//! are shared through the same fingerprint-keyed [`CacheStore`]. The
//! only fields that may differ are the store-observability counters in
//! [`PlanDiagnostics`](super::PlanDiagnostics), which
//! [`Plan::divergence`] deliberately ignores.
//!
//! Panics inside a request are contained: the worker survives and the
//! handle resolves to [`CoreError::WorkerPanicked`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use super::cache::{CacheKey, CacheStore};
use super::exec::ExecOptions;
use super::pool::{TwoLaneQueue, WorkerPool};
use super::{EngineCache, Plan, Problem, Solver, SolverRegistry};
use crate::budget::Budget;
use crate::{CoreError, Result};

/// Which path a request took through the service (see the module
/// docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Solved synchronously at `submit` (admission control).
    Inline,
    /// Queued on the latency-sensitive lane.
    Interactive,
    /// Queued on the throughput lane.
    Bulk,
}

/// Configuration for a [`PlannerService`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceOptions {
    /// Requests whose total estimated engine evaluations fall below
    /// this are solved synchronously at `submit` (default:
    /// [`ExecOptions::DEFAULT_INLINE_THRESHOLD`]).
    pub inline_threshold: u64,
    /// Queued requests below this estimate ride the interactive lane;
    /// the rest ride bulk (default:
    /// [`ServiceOptions::DEFAULT_INTERACTIVE_THRESHOLD`]).
    pub interactive_threshold: u64,
    /// Capacity of the service-owned [`CacheStore`] when none is
    /// supplied (default:
    /// [`ServiceOptions::DEFAULT_STORE_CAPACITY`]).
    pub store_capacity: usize,
    /// The worker pool requests run on (`None` — the default — uses
    /// [`WorkerPool::global`]).
    pub pool: Option<Arc<WorkerPool>>,
}

impl ServiceOptions {
    /// Default [`ServiceOptions::interactive_threshold`]: requests
    /// estimated under ~1M engine evaluations are treated as
    /// latency-sensitive.
    pub const DEFAULT_INTERACTIVE_THRESHOLD: u64 = 1 << 20;

    /// Default [`ServiceOptions::store_capacity`].
    pub const DEFAULT_STORE_CAPACITY: usize = 256;

    /// The default configuration.
    pub fn new() -> Self {
        Self {
            inline_threshold: ExecOptions::DEFAULT_INLINE_THRESHOLD,
            interactive_threshold: Self::DEFAULT_INTERACTIVE_THRESHOLD,
            store_capacity: Self::DEFAULT_STORE_CAPACITY,
            pool: None,
        }
    }

    /// Sets the inline-admission threshold.
    pub fn with_inline_threshold(mut self, evals: u64) -> Self {
        self.inline_threshold = evals;
        self
    }

    /// Sets the interactive/bulk lane boundary.
    pub fn with_interactive_threshold(mut self, evals: u64) -> Self {
        self.interactive_threshold = evals;
        self
    }

    /// Sets the capacity of the service-owned store.
    pub fn with_store_capacity(mut self, entries: usize) -> Self {
        self.store_capacity = entries;
        self
    }

    /// Runs requests on a dedicated pool instead of the global one.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }
}

impl Default for ServiceOptions {
    /// Hand-written so `default()` agrees with `new()` on the
    /// thresholds (a derived Default would zero them and disable
    /// admission control entirely).
    fn default() -> Self {
        Self::new()
    }
}

/// One solve request: `strategy` on `problem` under `budget`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SolveRequest {
    /// Registry strategy name (`"auto"`, `"greedy"`, …).
    pub strategy: String,
    /// The lowered problem, shared so queued tasks can outlive the
    /// submitting stack frame.
    pub problem: Arc<Problem>,
    /// The cleaning budget.
    pub budget: Budget,
    /// Persistence identity for store lookups (see
    /// [`cache`](super::cache)'s fingerprint contract); `None` opts the
    /// request out of the persistent store.
    pub key: Option<CacheKey>,
}

impl SolveRequest {
    /// A request with no store key.
    pub fn new(strategy: impl Into<String>, problem: Arc<Problem>, budget: Budget) -> Self {
        Self {
            strategy: strategy.into(),
            problem,
            budget,
            key: None,
        }
    }

    /// Attaches the persistence identity.
    pub fn with_key(mut self, key: CacheKey) -> Self {
        self.key = Some(key);
        self
    }
}

/// One budget-sweep request: `strategy` on `problem` across `budgets`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SweepRequest {
    /// Registry strategy name.
    pub strategy: String,
    /// The lowered problem.
    pub problem: Arc<Problem>,
    /// The budget grid; plans come back in this order.
    pub budgets: Vec<Budget>,
    /// Persistence identity (as in [`SolveRequest::key`]). Without a
    /// key the sweep still shares its prefix work internally, through
    /// a store private to the request.
    pub key: Option<CacheKey>,
}

impl SweepRequest {
    /// A request with no store key.
    pub fn new(strategy: impl Into<String>, problem: Arc<Problem>, budgets: Vec<Budget>) -> Self {
        Self {
            strategy: strategy.into(),
            problem,
            budgets,
            key: None,
        }
    }

    /// Attaches the persistence identity.
    pub fn with_key(mut self, key: CacheKey) -> Self {
        self.key = Some(key);
        self
    }
}

/// Counter snapshot from [`PlannerService::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceStats {
    /// Requests accepted (a sweep counts once).
    pub submitted: u64,
    /// Requests whose handle has resolved.
    pub completed: u64,
    /// Requests solved synchronously at `submit`.
    pub inline: u64,
    /// Requests queued on the interactive lane.
    pub interactive: u64,
    /// Requests queued on the bulk lane.
    pub bulk: u64,
    /// Requests that panicked (resolved to
    /// [`CoreError::WorkerPanicked`]).
    pub panics: u64,
    /// Tasks waiting on the interactive lane right now.
    pub queued_interactive: usize,
    /// Tasks waiting on the bulk lane right now.
    pub queued_bulk: usize,
}

/// Result slot shared between a [`RequestHandle`] and the worker that
/// completes it.
enum Slot<T> {
    Pending,
    Ready(Result<T>),
    Taken,
}

struct HandleShared<T> {
    slot: Mutex<Slot<T>>,
    ready: Condvar,
}

impl<T> HandleShared<T> {
    fn new() -> Self {
        Self {
            slot: Mutex::new(Slot::Pending),
            ready: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<T>) {
        let mut slot = self.slot.lock().expect("request slot poisoned");
        debug_assert!(
            matches!(*slot, Slot::Pending),
            "a request must be completed exactly once"
        );
        *slot = Slot::Ready(result);
        self.ready.notify_all();
    }
}

/// A hand-rolled future for an in-flight request (no async runtime is
/// available offline): poll with [`RequestHandle::is_ready`], take the
/// result with [`RequestHandle::try_wait`], or block on
/// [`RequestHandle::wait`]. `T` is [`Plan`] for solves and `Vec<Plan>`
/// for sweeps.
#[must_use = "a RequestHandle is the only way to observe the request's result"]
pub struct RequestHandle<T> {
    shared: Arc<HandleShared<T>>,
    lane: Lane,
    estimate: u64,
}

impl<T> RequestHandle<T> {
    /// Which lane the request was routed to ([`Lane::Inline`] handles
    /// are ready immediately).
    pub fn lane(&self) -> Lane {
        self.lane
    }

    /// The admission-control estimate the routing was keyed on.
    pub fn estimate(&self) -> u64 {
        self.estimate
    }

    /// Whether the result is available (or was already taken).
    pub fn is_ready(&self) -> bool {
        !matches!(
            *self.shared.slot.lock().expect("request slot poisoned"),
            Slot::Pending
        )
    }

    /// Takes the result if it is ready; `None` while pending or after
    /// the result was already taken.
    pub fn try_wait(&self) -> Option<Result<T>> {
        let mut slot = self.shared.slot.lock().expect("request slot poisoned");
        match std::mem::replace(&mut *slot, Slot::Taken) {
            Slot::Ready(r) => Some(r),
            Slot::Pending => {
                *slot = Slot::Pending;
                None
            }
            Slot::Taken => None,
        }
    }

    /// Blocks until the result is ready, waiting at most `timeout`;
    /// `None` on timeout or if the result was already taken.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<T>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.shared.slot.lock().expect("request slot poisoned");
        loop {
            match std::mem::replace(&mut *slot, Slot::Taken) {
                Slot::Ready(r) => return Some(r),
                Slot::Taken => return None,
                Slot::Pending => {
                    *slot = Slot::Pending;
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let (guard, _) = self
                        .shared
                        .ready
                        .wait_timeout(slot, deadline - now)
                        .expect("request slot poisoned while waiting");
                    slot = guard;
                }
            }
        }
    }

    /// Blocks until the result is ready and returns it.
    ///
    /// # Panics
    /// If the result was already taken via [`RequestHandle::try_wait`].
    pub fn wait(self) -> Result<T> {
        let mut slot = self.shared.slot.lock().expect("request slot poisoned");
        loop {
            match std::mem::replace(&mut *slot, Slot::Taken) {
                Slot::Ready(r) => return r,
                Slot::Taken => panic!("RequestHandle result already taken by try_wait"),
                Slot::Pending => {
                    *slot = Slot::Pending;
                    slot = self
                        .shared
                        .ready
                        .wait(slot)
                        .expect("request slot poisoned while waiting");
                }
            }
        }
    }
}

impl<T> std::fmt::Debug for RequestHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestHandle")
            .field("lane", &self.lane)
            .field("estimate", &self.estimate)
            .field("ready", &self.is_ready())
            .finish()
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    inline: AtomicU64,
    interactive: AtomicU64,
    bulk: AtomicU64,
    panics: AtomicU64,
}

struct ServiceInner {
    registry: Arc<SolverRegistry>,
    store: Arc<CacheStore>,
    pool: Arc<WorkerPool>,
    queue: Arc<TwoLaneQueue>,
    inline_threshold: u64,
    interactive_threshold: u64,
    stats: Counters,
}

impl ServiceInner {
    fn lane_for(&self, estimate: u64) -> Lane {
        if estimate < self.inline_threshold {
            Lane::Inline
        } else if estimate < self.interactive_threshold {
            Lane::Interactive
        } else {
            Lane::Bulk
        }
    }

    /// Queues `task` on `lane` and hands the pool one token for it.
    /// Tokens execute the highest-priority task available when they
    /// run, so interactive work overtakes queued bulk work.
    fn enqueue(self: &Arc<Self>, lane: Lane, task: impl FnOnce() + Send + 'static) {
        debug_assert!(lane != Lane::Inline);
        self.queue.push(lane == Lane::Interactive, Box::new(task));
        let queue = Arc::clone(&self.queue);
        self.pool.submit(move || queue.run_next());
    }
}

/// Renders a panic payload for [`CoreError::WorkerPanicked`].
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Solves one (solver, problem, budget) with a cache wired to `store`
/// under `key`, containing panics.
fn solve_contained(
    stats: &Counters,
    store: &Arc<CacheStore>,
    key: Option<CacheKey>,
    solver: &Arc<dyn Solver>,
    problem: &Problem,
    budget: Budget,
) -> Result<Plan> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let cache = match key {
            Some(key) => EngineCache::with_store(Arc::clone(store), key),
            None => EngineCache::new(),
        };
        solver.solve_with_cache(problem, budget, &cache)
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            stats.panics.fetch_add(1, Ordering::Relaxed);
            Err(CoreError::WorkerPanicked {
                detail: panic_detail(payload.as_ref()),
            })
        }
    }
}

/// Shared state of an in-flight sweep: per-point slots plus a
/// completion counter; the task that finishes last folds the slots (in
/// budget order, first error by index — the sequential semantics) and
/// resolves the handle.
struct SweepState {
    slots: Vec<Mutex<Option<Result<Plan>>>>,
    remaining: AtomicUsize,
    shared: Arc<HandleShared<Vec<Plan>>>,
    stats_completed: Arc<ServiceInner>,
}

impl SweepState {
    fn finish_point(&self, index: usize, result: Result<Plan>) {
        *self.slots[index].lock().expect("sweep slot poisoned") = Some(result);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut plans = Vec::with_capacity(self.slots.len());
            let mut first_err: Option<Result<Vec<Plan>>> = None;
            for slot in &self.slots {
                match slot
                    .lock()
                    .expect("sweep slot poisoned")
                    .take()
                    .expect("every budget point completed")
                {
                    Ok(plan) => plans.push(plan),
                    Err(e) => {
                        first_err = Some(Err(e));
                        break;
                    }
                }
            }
            // Count before resolving the handle (see `submit`).
            self.stats_completed
                .stats
                .completed
                .fetch_add(1, Ordering::Relaxed);
            self.shared.complete(first_err.unwrap_or(Ok(plans)));
        }
    }
}

/// The long-lived serving front over a [`SolverRegistry`]: owns the
/// registry, a fingerprint-keyed [`CacheStore`], and a [`WorkerPool`],
/// and serves [`SolveRequest`]s / [`SweepRequest`]s asynchronously
/// through [`RequestHandle`]s. Cheap to clone (all state is shared);
/// share one service per process or tenant.
///
/// See the [module docs](self) for admission control, fairness, and
/// determinism.
#[derive(Clone)]
pub struct PlannerService {
    inner: Arc<ServiceInner>,
}

impl PlannerService {
    /// A service with its own [`CacheStore`] (capacity
    /// [`ServiceOptions::store_capacity`]).
    pub fn new(registry: Arc<SolverRegistry>, opts: ServiceOptions) -> Self {
        let store = Arc::new(CacheStore::new(opts.store_capacity));
        Self::with_store(registry, store, opts)
    }

    /// A service sharing an existing store (e.g. one warmed by batch
    /// jobs, or shared across services).
    pub fn with_store(
        registry: Arc<SolverRegistry>,
        store: Arc<CacheStore>,
        opts: ServiceOptions,
    ) -> Self {
        let pool = opts.pool.unwrap_or_else(WorkerPool::global);
        Self {
            inner: Arc::new(ServiceInner {
                registry,
                store,
                pool,
                queue: Arc::new(TwoLaneQueue::default()),
                inline_threshold: opts.inline_threshold,
                interactive_threshold: opts.interactive_threshold,
                stats: Counters::default(),
            }),
        }
    }

    /// The registry serving this service.
    pub fn registry(&self) -> &Arc<SolverRegistry> {
        &self.inner.registry
    }

    /// The persistent engine store (inspect
    /// [`CacheStore::stats`] for warm/cold behavior, or invalidate
    /// entries after cleaning steps).
    pub fn store(&self) -> &Arc<CacheStore> {
        &self.inner.store
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let (queued_interactive, queued_bulk) = self.inner.queue.depths();
        let c = &self.inner.stats;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            inline: c.inline.load(Ordering::Relaxed),
            interactive: c.interactive.load(Ordering::Relaxed),
            bulk: c.bulk.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            queued_interactive,
            queued_bulk,
        }
    }

    /// Submits one solve. Unknown strategies resolve the handle
    /// immediately with [`CoreError::UnknownStrategy`]; small requests
    /// (see the module docs) are solved inline before `submit` returns.
    pub fn submit(&self, request: SolveRequest) -> RequestHandle<Plan> {
        let inner = &self.inner;
        inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let estimate = request.problem.estimated_engine_evals();
        let shared = Arc::new(HandleShared::new());

        let solver = match inner.registry.get(&request.strategy) {
            Ok(solver) => solver,
            Err(e) => {
                shared.complete(Err(e));
                // Error-resolved requests count as inline so the lane
                // counters always sum to `submitted`.
                inner.stats.inline.fetch_add(1, Ordering::Relaxed);
                inner.stats.completed.fetch_add(1, Ordering::Relaxed);
                return RequestHandle {
                    shared,
                    lane: Lane::Inline,
                    estimate,
                };
            }
        };

        let lane = inner.lane_for(estimate);
        match lane {
            Lane::Inline => {
                let result = solve_contained(
                    &inner.stats,
                    &inner.store,
                    request.key,
                    &solver,
                    &request.problem,
                    request.budget,
                );
                shared.complete(result);
                inner.stats.inline.fetch_add(1, Ordering::Relaxed);
                inner.stats.completed.fetch_add(1, Ordering::Relaxed);
            }
            Lane::Interactive | Lane::Bulk => {
                let counter = if lane == Lane::Interactive {
                    &inner.stats.interactive
                } else {
                    &inner.stats.bulk
                };
                counter.fetch_add(1, Ordering::Relaxed);
                let task_inner = Arc::clone(inner);
                let task_shared = Arc::clone(&shared);
                inner.enqueue(lane, move || {
                    let result = solve_contained(
                        &task_inner.stats,
                        &task_inner.store,
                        request.key,
                        &solver,
                        &request.problem,
                        request.budget,
                    );
                    // Count before resolving the handle, so a waiter
                    // that wakes immediately already sees the request
                    // as completed in `stats`.
                    task_inner.stats.completed.fetch_add(1, Ordering::Relaxed);
                    task_shared.complete(result);
                });
            }
        }
        RequestHandle {
            shared,
            lane,
            estimate,
        }
    }

    /// Submits a budget sweep. The request is costed by its *total*
    /// estimate (points × per-point), but executed as one task per
    /// budget point, so interactive work interleaves between points.
    /// Prefix work is shared across points through the service store
    /// when a key is supplied, or a request-private store otherwise —
    /// plans are byte-identical to [`SolverRegistry::sweep`] either
    /// way.
    pub fn submit_sweep(&self, request: SweepRequest) -> RequestHandle<Vec<Plan>> {
        let inner = &self.inner;
        inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let estimate = request
            .problem
            .estimated_engine_evals()
            .saturating_mul(request.budgets.len() as u64);
        let shared = Arc::new(HandleShared::new());
        // Every `done` caller resolves at submit time (error, empty
        // grid, or inline solve), so the request counts as inline —
        // the lane counters always sum to `submitted`.
        let done = |result: Result<Vec<Plan>>, lane: Lane| {
            shared.complete(result);
            inner.stats.inline.fetch_add(1, Ordering::Relaxed);
            inner.stats.completed.fetch_add(1, Ordering::Relaxed);
            RequestHandle {
                shared: Arc::clone(&shared),
                lane,
                estimate,
            }
        };

        let solver = match inner.registry.get(&request.strategy) {
            Ok(solver) => solver,
            Err(e) => return done(Err(e), Lane::Inline),
        };
        if request.budgets.is_empty() {
            return done(Ok(Vec::new()), Lane::Inline);
        }

        // Without a trustworthy identity, share prefix work through a
        // store private to this request (mirroring `exec::sweep`).
        let (store, key) = match request.key {
            Some(key) => (Arc::clone(&inner.store), key),
            None => (Arc::new(CacheStore::new(1)), CacheKey::new(0, 0)),
        };

        let lane = inner.lane_for(estimate);
        if lane == Lane::Inline {
            // One shared cache, sequential — the sequential sweep path.
            let result = catch_unwind(AssertUnwindSafe(|| {
                let cache = EngineCache::with_store(store, key);
                request
                    .budgets
                    .iter()
                    .map(|&b| solver.solve_with_cache(&request.problem, b, &cache))
                    .collect::<Result<Vec<Plan>>>()
            }))
            .unwrap_or_else(|payload| {
                inner.stats.panics.fetch_add(1, Ordering::Relaxed);
                Err(CoreError::WorkerPanicked {
                    detail: panic_detail(payload.as_ref()),
                })
            });
            return done(result, Lane::Inline);
        }

        let counter = if lane == Lane::Interactive {
            &inner.stats.interactive
        } else {
            &inner.stats.bulk
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(SweepState {
            slots: request.budgets.iter().map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(request.budgets.len()),
            shared: Arc::clone(&shared),
            stats_completed: Arc::clone(inner),
        });
        for (index, &budget) in request.budgets.iter().enumerate() {
            let state = Arc::clone(&state);
            let solver = Arc::clone(&solver);
            let problem = Arc::clone(&request.problem);
            let store = Arc::clone(&store);
            let task_inner = Arc::clone(inner);
            inner.enqueue(lane, move || {
                let result = solve_contained(
                    &task_inner.stats,
                    &store,
                    Some(key),
                    &solver,
                    &problem,
                    budget,
                );
                state.finish_point(index, result);
            });
        }
        RequestHandle {
            shared,
            lane,
            estimate,
        }
    }
}

impl std::fmt::Debug for PlannerService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannerService")
            .field("strategies", &self.inner.registry.names().len())
            .field("pool_threads", &self.inner.pool.threads())
            .field("inline_threshold", &self.inner.inline_threshold)
            .field("interactive_threshold", &self.inner.interactive_threshold)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use fc_claims::{BiasQuery, ClaimSet, Direction, DupQuery, LinearClaim};
    use fc_uncertain::{rng_from_seed, DiscreteDist};
    use rand::Rng;

    fn claims(n: usize) -> ClaimSet {
        let perturbations: Vec<LinearClaim> = (0..n - 1)
            .map(|i| LinearClaim::window_sum(i, 2).unwrap())
            .collect();
        let weights = vec![1.0; perturbations.len()];
        ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            perturbations,
            weights,
            Direction::HigherIsStronger,
        )
        .unwrap()
    }

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = rng_from_seed(seed);
        let dists = (0..n)
            .map(|_| {
                let k = rng.gen_range(2..=3);
                let vals: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..10.0)).collect();
                DiscreteDist::uniform_over(&vals).unwrap()
            })
            .collect::<Vec<_>>();
        let current = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        let costs = (0..n).map(|_| rng.gen_range(1..5)).collect();
        Instance::new(dists, current, costs).unwrap()
    }

    fn dup_problem(n: usize, seed: u64) -> Arc<Problem> {
        Arc::new(
            Problem::discrete_min_var(
                random_instance(n, seed),
                Arc::new(DupQuery::new(claims(n), 6.0)),
            )
            .unwrap(),
        )
    }

    fn service(opts: ServiceOptions) -> PlannerService {
        PlannerService::new(Arc::new(SolverRegistry::with_defaults()), opts)
    }

    #[test]
    fn tiny_request_is_solved_inline_at_submit() {
        let svc = service(ServiceOptions::new());
        let problem = dup_problem(6, 1);
        let expected = svc
            .registry()
            .solve("greedy", &problem, Budget::absolute(2))
            .unwrap();
        let handle = svc.submit(SolveRequest::new(
            "greedy",
            Arc::clone(&problem),
            Budget::absolute(2),
        ));
        assert_eq!(handle.lane(), Lane::Inline);
        assert!(
            handle.is_ready(),
            "inline handles resolve before submit returns"
        );
        let plan = handle.wait().unwrap();
        assert_eq!(plan.divergence(&expected), None);
        let stats = svc.stats();
        assert_eq!(stats.inline, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn queued_request_matches_synchronous_solve() {
        // Threshold 0 forces the queue even for a small problem.
        let svc = service(ServiceOptions::new().with_inline_threshold(0));
        let problem = dup_problem(10, 2);
        let expected = svc
            .registry()
            .solve("auto", &problem, Budget::absolute(3))
            .unwrap();
        let handle = svc.submit(SolveRequest::new(
            "auto",
            Arc::clone(&problem),
            Budget::absolute(3),
        ));
        assert_eq!(handle.lane(), Lane::Interactive);
        let plan = handle.wait().unwrap();
        assert_eq!(plan.divergence(&expected), None);
    }

    #[test]
    fn sweep_matches_registry_sweep_bytes() {
        let svc = service(ServiceOptions::new().with_inline_threshold(0));
        let problem = dup_problem(12, 3);
        let budgets: Vec<Budget> = (0..8).map(Budget::absolute).collect();
        let expected = svc.registry().sweep("greedy", &problem, &budgets).unwrap();
        let handle = svc.submit_sweep(SweepRequest::new(
            "greedy",
            Arc::clone(&problem),
            budgets.clone(),
        ));
        let plans = handle.wait().unwrap();
        assert_eq!(plans.len(), expected.len());
        for (i, (a, b)) in plans.iter().zip(&expected).enumerate() {
            assert_eq!(a.divergence(b), None, "budget point {i}");
        }
    }

    #[test]
    fn lane_routing_follows_estimates() {
        let svc = service(
            ServiceOptions::new()
                .with_inline_threshold(0)
                .with_interactive_threshold(0),
        );
        let handle = svc.submit(SolveRequest::new(
            "greedy",
            dup_problem(10, 4),
            Budget::absolute(2),
        ));
        assert_eq!(handle.lane(), Lane::Bulk);
        handle.wait().unwrap();
        let stats = svc.stats();
        assert_eq!(stats.bulk, 1);
        assert_eq!(stats.interactive, 0);
    }

    #[test]
    fn unknown_strategy_resolves_immediately() {
        let svc = service(ServiceOptions::new());
        let handle = svc.submit(SolveRequest::new(
            "nope",
            dup_problem(6, 5),
            Budget::absolute(1),
        ));
        assert!(handle.is_ready());
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, CoreError::UnknownStrategy { name } if name == "nope"));
        // Error-resolved requests still keep the lane accounting
        // consistent: inline + interactive + bulk == submitted.
        let stats = svc.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.inline, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn strategy_refusal_is_a_typed_error_not_a_hang() {
        // "best" refuses MaxPr problems; the handle must resolve to the
        // typed refusal.
        let svc = service(ServiceOptions::new().with_inline_threshold(0));
        let inst = random_instance(8, 6);
        let problem = Arc::new(
            Problem::discrete_max_pr(inst, Arc::new(BiasQuery::new(claims(8), 4.0)), 0.5).unwrap(),
        );
        let handle = svc.submit(SolveRequest::new("best", problem, Budget::absolute(2)));
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, CoreError::StrategyUnsupported { .. }));
    }

    #[test]
    fn panicking_solver_is_contained() {
        #[derive(Debug)]
        struct PanickySolver;
        impl Solver for PanickySolver {
            fn name(&self) -> &'static str {
                "panicky"
            }
            fn solve_with_cache<'p>(
                &self,
                _problem: &'p Problem,
                _budget: Budget,
                _cache: &EngineCache<'p>,
            ) -> Result<Plan> {
                panic!("solver exploded");
            }
        }
        let mut registry = SolverRegistry::with_defaults();
        registry.register_solver(Arc::new(PanickySolver));
        let svc = PlannerService::new(
            Arc::new(registry),
            ServiceOptions::new().with_inline_threshold(0),
        );
        let err = svc
            .submit(SolveRequest::new(
                "panicky",
                dup_problem(6, 7),
                Budget::absolute(1),
            ))
            .wait()
            .unwrap_err();
        assert!(
            matches!(&err, CoreError::WorkerPanicked { detail } if detail.contains("exploded")),
            "got {err}"
        );
        assert_eq!(svc.stats().panics, 1);
        // The service (and its pool) keep serving after the panic.
        let problem = dup_problem(6, 8);
        let ok = svc
            .submit(SolveRequest::new(
                "greedy",
                Arc::clone(&problem),
                Budget::absolute(1),
            ))
            .wait();
        assert!(ok.is_ok());
    }

    #[test]
    fn try_wait_takes_exactly_once() {
        let svc = service(ServiceOptions::new());
        let handle = svc.submit(SolveRequest::new(
            "greedy",
            dup_problem(6, 9),
            Budget::absolute(1),
        ));
        assert!(handle.try_wait().expect("inline: ready").is_ok());
        assert!(handle.try_wait().is_none(), "second take yields nothing");
        assert!(handle.is_ready(), "taken still reads as ready");
    }

    #[test]
    fn concurrent_submitters_get_identical_plans() {
        let svc = service(ServiceOptions::new().with_inline_threshold(0));
        let problem = dup_problem(14, 10);
        let budget = Budget::absolute(4);
        let expected = svc.registry().solve("auto", &problem, budget).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let svc = svc.clone();
                let problem = Arc::clone(&problem);
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..3 {
                        let plan = svc
                            .submit(SolveRequest::new("auto", Arc::clone(&problem), budget))
                            .wait()
                            .unwrap();
                        assert_eq!(plan.divergence(expected), None);
                    }
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.submitted, 12);
        assert_eq!(stats.completed, 12);
    }

    #[test]
    fn keyed_requests_share_the_store() {
        let svc = service(ServiceOptions::new().with_inline_threshold(0));
        let problem = dup_problem(12, 11);
        let key = CacheKey::new(problem.instance_fingerprint(), 99);
        for _ in 0..3 {
            svc.submit(
                SolveRequest::new("greedy", Arc::clone(&problem), Budget::absolute(3))
                    .with_key(key),
            )
            .wait()
            .unwrap();
        }
        assert_eq!(
            svc.store().stats().scoped_builds,
            1,
            "repeat keyed requests reuse one table build"
        );
    }
}
